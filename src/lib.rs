//! # focus-repro
//!
//! Root package of the reproduction workspace for *"Distributed Hypertext
//! Resource Discovery Through Examples"* (Chakrabarti, van den Berg, Dom;
//! VLDB 1999). It exists to host the workspace-spanning artifacts:
//!
//! * `examples/` — runnable binaries exercising the public API
//!   (`quickstart`, `focused_vs_unfocused`, `crawl_monitor`,
//!   `citation_sociology`, `sql_console`);
//! * `tests/` — cross-crate integration and property tests (end-to-end
//!   discovery, classifier-path agreement, distiller consistency, SQL
//!   reference checks, web evolution + crawl maintenance).
//!
//! The library surface itself lives in the `focus` crate (re-exported
//! here as [`system`]); see the workspace `README.md` for the map.

pub use focus as system;
