//! The paper's opening example query (§1):
//!
//! > **Citation sociology**: Find a topic (other than bicycling) within
//! > one link of bicycling pages that is much more frequent than on the
//! > web at large. The answer found by the system described in this
//! > paper is *first aid*.
//!
//! ```sh
//! cargo run --release --example citation_sociology [tiny|small|full]
//! ```
//!
//! This is the kind of question that needs *topical* selection (no
//! keyword can find "pages about first aid"), which is why the system
//! learns topics from examples instead of matching keywords.

use focus_eval::citation_sociology;
use focus_eval::common::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("crawling cycling, then measuring 1-link topic lifts at {scale:?} scale...\n");
    let lifts = citation_sociology::run(scale);
    citation_sociology::print(&lifts);
    if let Some(top) = lifts.first() {
        println!(
            "\nanswer: {} (lift {:.1}x over its base rate)",
            top.topic, top.lift
        );
    }
}
