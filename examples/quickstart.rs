//! Quickstart: discover cycling resources by example.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic web, marks `recreation/cycling` good, trains the
//! classifier from example documents, runs a focused crawl, and prints
//! the harvest plus the top hubs/authorities the distiller found.

use focus::prelude::*;
use focus::ClassId;
use std::sync::Arc;

fn main() {
    // 1. A web to crawl (the paper used the 1999 Web; we simulate one
    //    with the same radius-1/radius-2 link statistics).
    let graph = Arc::new(WebGraph::generate(WebConfig {
        seed: 7,
        pages_per_topic: 150,
        ..WebConfig::default()
    }));
    let fetcher = Arc::new(SimFetcher::new(Arc::clone(&graph), None));

    // 2. Administration: mark the good topic and attach examples D(c).
    let mut builder = FocusBuilder::new(graph.taxonomy().clone());
    let cycling = builder
        .mark_good_by_name("recreation/cycling")
        .expect("topic exists");
    for topic in builder.taxonomy().all().collect::<Vec<_>>() {
        if topic != ClassId::ROOT {
            builder.add_examples(topic, graph.example_docs(topic, 10, 1));
        }
    }

    // 3. Train + crawl.
    let system = builder
        .crawl_config(CrawlConfig {
            policy: CrawlPolicy::SoftFocus,
            threads: 4,
            max_fetches: 600,
            distill_every: Some(200),
            ..CrawlConfig::default()
        })
        .build(fetcher)
        .expect("system builds");

    let seeds = focus::search::topic_start_set(&graph, cycling, 15);
    println!(
        "seeding with {} keyword-search results for 'cycling'...",
        seeds.len()
    );

    // Start a controllable background run, watch its event stream live,
    // then join for the classic batch outcome. (`discover(&seeds)` still
    // works and is exactly `start(&seeds)?.join()`.)
    let mut run = system.start(&seeds).expect("crawl starts");
    let events = run.take_events().expect("event stream");
    let mut ticks = 0u64;
    for ev in events {
        if let focus::DiscoveryEvent::PageClassified { relevance, .. } = ev {
            ticks += 1;
            if ticks.is_multiple_of(100) {
                println!("  [live] {ticks} pages classified (last R = {relevance:.3})");
            }
        }
    }
    let outcome = run.join().expect("crawl runs");

    // 4. Results.
    println!(
        "\ncrawled {} pages ({} attempts, {} failures); mean harvest = {:.3}",
        outcome.stats.successes,
        outcome.stats.attempts,
        outcome.stats.failures,
        outcome.stats.mean_harvest()
    );
    println!("\ntop authorities:");
    for &(oid, score) in outcome.distill.top_auths(5) {
        let url = graph.page(oid).map(|p| p.url.clone()).unwrap_or_default();
        println!("  {score:.5}  {url}");
    }
    println!("\ntop hubs (resource lists worth revisiting):");
    for &(oid, score) in outcome.distill.top_hubs(5) {
        let url = graph.page(oid).map(|p| p.url.clone()).unwrap_or_default();
        println!("  {score:.5}  {url}");
    }

    // 5. The crawl state is a real database: ask it anything.
    let harvest = system.with_db_read(|db| {
        db.query("select count(*) from crawl where visited = 1 and relevance > -1")
            .expect("sql runs")
            .scalar_i64()
            .unwrap_or(0)
    });
    println!("\npages with log R > -1 (the paper's relevance cut): {harvest}");
}
