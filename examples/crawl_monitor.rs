//! §3.7 re-enacted **live**: monitor a running crawl through its event
//! stream and ad-hoc SQL, diagnose the paper's stagnation anecdote, and
//! fix it *without stopping the run* — pause, mark a second topic good,
//! resume, and watch the harvest recover.
//!
//! ```sh
//! cargo run --release --example crawl_monitor
//! ```
//!
//! The paper's anecdote: a crawl on *mutual funds* dropped in relevance;
//! a census by class showed the neighborhood full of pages about
//! *investing in general*. "One update statement marking the ancestor
//! good fixed this stagnation problem." Here the update statement is
//! [`focus_crawler::CrawlRun::mark_topic`], applied to a paused live run
//! and followed by an automatic frontier re-prioritization.

use focus::prelude::*;
use focus::Durability;
use focus_crawler::monitor;
use focus_crawler::RunState;
use focus_eval::common::{train_model, Scale};
use std::sync::Arc;
use std::time::Duration;

const PHASE1_ATTEMPTS: u64 = 500;
const PHASE2_ATTEMPTS: u64 = 1000;

fn main() {
    let graph = Arc::new(WebGraph::generate(Scale::Small.web_config(99)));
    let mut taxonomy = graph.taxonomy().clone();
    let funds = taxonomy
        .find("business/investing/mutual-funds")
        .expect("topic");
    taxonomy.mark_good(funds).expect("markable");
    let model = train_model(&graph, &taxonomy, Scale::Small, 5);
    let fetcher = Arc::new(SimFetcher::new(Arc::clone(&graph), None));
    let session = Arc::new(
        focus::CrawlSession::new(
            fetcher,
            model,
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 4,
                // The run is steered and stopped by hand; the budget only
                // backstops a forgotten console.
                max_fetches: 100_000,
                distill_every: Some(250),
                // WAL-backed store: lets the monitoring queries below
                // run against a read replica instead of the
                // authoritative database the workers are writing.
                durability: Durability::Wal { group_commit: 8 },
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session
        .seed(&focus::search::topic_start_set(&graph, funds, 15))
        .expect("seed");
    // The §3.7 monitoring console reads a WAL-shipping follower: ad-hoc
    // SQL never touches the crawl's store lock (the paper's DBA would
    // point the applets at a DB2 read replica for the same reason).
    let replica = session.replica().expect("durable session has replicas");

    println!("=== phase 1: crawl good = {{business/investing/mutual-funds}} ===");
    let mut run = session.start().expect("no other run active");
    let events = run.take_events().expect("first take");

    // Live monitoring: drain events while the crawl runs, printing a
    // harvest tick every 100 classified pages.
    let relevance_cut = (-1.0f64).exp();
    let mut classified = 0u64;
    let mut relevant = 0u64;
    while run.stats().attempts < PHASE1_ATTEMPTS && !run.is_finished() {
        while let Some(ev) = events.try_next() {
            match ev {
                CrawlEvent::PageClassified { relevance, .. } => {
                    classified += 1;
                    if relevance > relevance_cut {
                        relevant += 1;
                    }
                    if classified.is_multiple_of(100) {
                        println!(
                            "  [live] {classified} pages, running harvest {:.3}",
                            relevant as f64 / classified as f64
                        );
                    }
                }
                CrawlEvent::DistillCompleted { distillation, .. } => {
                    println!("  [live] distillation #{distillation} republished HUBS/AUTH");
                }
                CrawlEvent::FrontierStagnated { attempts } => {
                    println!("  [live] frontier stagnated after {attempts} attempts");
                }
                _ => {}
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    run.pause();
    while run.state() != RunState::Paused && !run.is_finished() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let phase1 = run.stats();
    println!("phase-1 mean harvest: {:.3}\n", phase1.mean_harvest());

    // Catch the replica up to the leader's last commit so the paused
    // snapshot below is exact, then monitor the *follower*.
    session.with_db_read(|db| {
        let lsn = db.wal().expect("durable").last_commit_lsn();
        replica.wait_for_lsn(lsn, Duration::from_secs(5));
    });
    println!("-- monitoring query 1: harvest per minute (the live applet, on the replica) --");
    replica.with_db(|db| {
        let rs = monitor::harvest_per_minute(db).expect("query");
        print!("{}", rs.to_table());
    });

    println!("-- monitoring query 2: census by class (the diagnosis, on the replica) --");
    replica.with_db(|db| {
        let rs = monitor::census_by_class(db).expect("query");
        print!("{}", rs.to_table());
    });
    println!(
        "\nThe census shows the neighborhood dominated by broader investing/\
         business pages — the sibling/ancestor topics, the paper's diagnosis.\n"
    );

    println!("-- monitoring query 3: frontier health (on the replica) --");
    replica.with_db(|db| {
        let rs = monitor::frontier_by_numtries(db).expect("query");
        print!("{}", rs.to_table());
    });

    println!("\n=== phase 2: live re-steering of the *paused* run ===");
    println!("mark business/investing/stocks good -> re-prioritize -> resume");
    let stocks = run
        .find_topic("business/investing/stocks")
        .expect("sibling topic");
    run.mark_topic(stocks, true);
    run.add_seeds(&focus::search::topic_start_set(&graph, stocks, 5));
    run.resume();

    let mut steered_classified = 0u64;
    let mut steered_relevant = 0u64;
    loop {
        while let Some(ev) = events.try_next() {
            match ev {
                CrawlEvent::TopicMarked {
                    class,
                    good,
                    applied,
                } => {
                    println!("  [live] TopicMarked {class} good={good} applied={applied}");
                }
                CrawlEvent::FrontierResteered { boosted, .. } => {
                    println!("  [live] frontier re-prioritized: {boosted} entries boosted");
                }
                CrawlEvent::Paused => println!("  [live] paused"),
                CrawlEvent::Resumed => println!("  [live] resumed"),
                CrawlEvent::SeedsAdded { count } => {
                    println!("  [live] {count} stocks seeds injected");
                }
                CrawlEvent::PageClassified { relevance, .. } => {
                    steered_classified += 1;
                    if relevance > relevance_cut {
                        steered_relevant += 1;
                    }
                }
                _ => {}
            }
        }
        if run.stats().attempts >= PHASE2_ATTEMPTS || run.is_finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    run.stop();
    let total = run.join().expect("run completes");

    let steered_harvest = if steered_classified > 0 {
        steered_relevant as f64 / steered_classified as f64
    } else {
        0.0
    };
    let phase1_harvest = if classified > 0 {
        relevant as f64 / classified as f64
    } else {
        0.0
    };
    println!(
        "\nphase-2 harvest (post-steering pages only): {steered_harvest:.3}  \
         (phase 1 was {phase1_harvest:.3})"
    );
    println!(
        "{}",
        if steered_harvest > phase1_harvest {
            "harvest recovered — one administrative command re-steered the live crawl."
        } else {
            "harvest did not improve at this scale; try --release / larger budget."
        }
    );

    println!("\n-- missed neighbors of great hubs (priority tweak query) --");
    session.with_db_read(|db| {
        let psi = db
            .query("select max(score) from hubs")
            .ok()
            .and_then(|rs| rs.scalar_f64())
            .unwrap_or(0.0)
            * 0.5;
        let rs = monitor::missed_hub_neighbors(db, psi).expect("query");
        println!(
            "{} unvisited pages cited by top hubs (showing 5):",
            rs.rows.len()
        );
        for row in rs.rows.iter().take(5) {
            println!("  {}", row[0]);
        }
    });

    // The planner's work is inspectable: EXPLAIN returns the logical
    // and physical plans as rows. The hub-revisit lookup probes the
    // link_src B+tree instead of scanning the link table.
    println!("\n-- explain: the hub-revisit lookup --");
    session.with_db_read(|db| {
        let rs = db
            .query("explain select oid_dst from link where oid_src = 42")
            .expect("explain");
        for row in &rs.rows {
            println!("  {}", row[0]);
        }
        let (hits, misses) = db.plan_cache_stats();
        println!("  (plan cache this session: {hits} hits, {misses} misses)");
    });

    println!(
        "\nfinal stats: {} attempts, {} successes, {} distillations",
        total.attempts, total.successes, total.distillations
    );
}
