//! §3.7 re-enacted: monitor a live crawl with ad-hoc SQL, diagnose the
//! paper's mutual-funds stagnation, and fix it with one administrative
//! update.
//!
//! ```sh
//! cargo run --release --example crawl_monitor
//! ```
//!
//! The paper's anecdote: a crawl on *mutual funds* dropped in relevance;
//! a census by class showed the neighborhood full of pages about
//! *investing in general* — an **ancestor** of mutual-funds. "One update
//! statement marking the ancestor good fixed this stagnation problem."

use focus_crawler::monitor;
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::CrawlPolicy;
use focus_eval::common::{train_model, Scale};
use focus_webgraph::{SimFetcher, WebGraph};
use std::sync::Arc;

fn crawl_with_goods(
    graph: &Arc<WebGraph>,
    goods: &[&str],
    budget: u64,
) -> (CrawlSession, f64) {
    let mut taxonomy = graph.taxonomy().clone();
    for g in goods {
        let c = taxonomy.find(g).expect("topic");
        taxonomy.mark_good(c).expect("markable");
    }
    let model = train_model(graph, &taxonomy, Scale::Small, 5);
    let fetcher = Arc::new(SimFetcher::new(Arc::clone(graph), None));
    let session = CrawlSession::new(
        fetcher,
        model,
        CrawlConfig {
            policy: CrawlPolicy::SoftFocus,
            threads: 4,
            max_fetches: budget,
            distill_every: Some(250),
            ..CrawlConfig::default()
        },
    )
    .expect("session");
    let topic = graph.taxonomy().find(goods[0]).expect("topic");
    session.seed(&focus_webgraph::search::topic_start_set(graph, topic, 15)).expect("seed");
    let stats = session.run().expect("crawl");
    (session, stats.mean_harvest())
}

fn main() {
    let graph = Arc::new(WebGraph::generate(Scale::Small.web_config(99)));

    println!("=== crawl 1: good = {{business/investing/mutual-funds}} ===");
    let (session, harvest1) =
        crawl_with_goods(&graph, &["business/investing/mutual-funds"], 500);
    println!("mean harvest: {harvest1:.3}\n");

    println!("-- monitoring query 1: harvest per minute (the live applet) --");
    session.with_db(|db| {
        let rs = monitor::harvest_per_minute(db).expect("query");
        print!("{}", rs.to_table());
    });

    println!("-- monitoring query 2: census by class (the diagnosis) --");
    session.with_db(|db| {
        let rs = monitor::census_by_class(db).expect("query");
        print!("{}", rs.to_table());
    });
    println!(
        "\nThe census shows the neighborhood dominated by broader investing/\
         business pages — the ancestor topic, exactly the paper's diagnosis.\n"
    );

    println!("-- monitoring query 3: frontier health --");
    session.with_db(|db| {
        let rs = monitor::frontier_by_numtries(db).expect("query");
        print!("{}", rs.to_table());
    });

    println!("\n=== crawl 2: ancestor business/investing ALSO marked good ===");
    let (session2, harvest2) = crawl_with_goods(
        &graph,
        &["business/investing/mutual-funds", "business/investing/stocks"],
        500,
    );
    println!("mean harvest: {harvest2:.3}  (was {harvest1:.3})");
    println!(
        "{}",
        if harvest2 > harvest1 {
            "harvest recovered — one administrative change re-steered the crawl."
        } else {
            "harvest did not improve at this scale; try --release / larger budget."
        }
    );

    println!("\n-- missed neighbors of great hubs (priority tweak query) --");
    session2.with_db(|db| {
        let psi = db
            .execute("select max(score) from hubs")
            .ok()
            .and_then(|rs| rs.scalar_f64())
            .unwrap_or(0.0)
            * 0.5;
        let rs = monitor::missed_hub_neighbors(db, psi).expect("query");
        println!("{} unvisited pages cited by top hubs (showing 5):", rs.rows.len());
        for row in rs.rows.iter().take(5) {
            println!("  {}", row[0]);
        }
    });
}
