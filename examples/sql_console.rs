//! A tiny interactive SQL console over a finished crawl's database —
//! demonstrates that the crawl state really is an ad-hoc-queryable
//! relational store (§3.1: "In most cases, the queries we asked were not
//! planned ahead of time").
//!
//! ```sh
//! cargo run --release --example sql_console
//! ```
//!
//! Then type SQL (e.g. `select count(*) from crawl where relevance > -1`)
//! or `quit`. Tables: crawl, link, hubs, auth, taxonomy.

use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::CrawlPolicy;
use focus_eval::common::{Scale, World};
use std::io::{BufRead, Write};

fn main() {
    println!("running a short focused crawl to populate the database...");
    let world = World::cycling(Scale::Tiny, 3);
    let session = std::sync::Arc::new(
        CrawlSession::new(
            world.fetcher(),
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 2,
                max_fetches: 250,
                distill_every: Some(100),
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(10)).expect("seed");
    let stats = session.run().expect("crawl");
    println!(
        "done: {} pages crawled. Tables: crawl, link, hubs, auth, taxonomy.",
        stats.successes
    );
    println!("example: select kcid, count(*) from crawl where visited = 1 group by kcid");
    println!("type SQL, or 'quit' to exit.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("focus-sql> ");
        out.flush().expect("stdout flush");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF (also what a piped run hits)
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            break;
        }
        match session.sql(line) {
            Ok(rs) if rs.columns.is_empty() => {
                println!("ok ({} rows affected)", rs.affected)
            }
            Ok(rs) => {
                print!("{}", rs.to_table());
                println!("({} rows)", rs.rows.len());
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye");
}
