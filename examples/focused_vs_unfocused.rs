//! Figure 5 live: run the same start set under the unfocused baseline and
//! the soft-focus policy, and watch the harvest curves diverge.
//!
//! ```sh
//! cargo run --release --example focused_vs_unfocused [tiny|small|full]
//! ```

use focus_eval::common::Scale;
use focus_eval::fig5_harvest;

fn main() {
    let scale = Scale::from_args();
    println!("running Figure 5 at {scale:?} scale (same start set, two policies)\n");
    let f = fig5_harvest::run(scale);
    fig5_harvest::print(&f);
    println!(
        "\nThe unfocused crawler 'is completely lost within the next hundred page \
         fetches' (§3.4); the focused crawler keeps acquiring relevant pages. \
         Relevance here is judged by the classifier on pages *after* they were \
         chosen, so the curves evaluate the architecture, not the classifier."
    );
}
