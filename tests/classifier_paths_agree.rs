//! Property tests pinning the classifier's four evaluation paths to the
//! same probabilities: in-memory, SingleProbe(SQL), SingleProbe(BLOB),
//! BulkProbe(direct) — and the verbatim Figure 3 SQL.

use focus_classifier::bulk_probe::{bulk_posterior, bulk_posterior_sql, bulk_relevance};
use focus_classifier::single_probe::{SingleProbeBlob, SingleProbeSql};
use focus_classifier::train::{train, TrainConfig};
use focus_classifier::ClassifierTables;
use focus_types::{ClassId, DocId, Document, Taxonomy, TermId, TermVec};
use minirel::Database;
use proptest::prelude::*;

/// A 3-level taxonomy with 2+2 leaves.
fn taxonomy() -> Taxonomy {
    let mut t = Taxonomy::new("root");
    let a = t.add_child(ClassId::ROOT, "a").unwrap();
    t.add_child(a, "a/x").unwrap();
    t.add_child(a, "a/y").unwrap();
    let b = t.add_child(ClassId::ROOT, "b").unwrap();
    t.add_child(b, "b/u").unwrap();
    t.add_child(b, "b/v").unwrap();
    t.mark_good(ClassId(2)).unwrap(); // a/x good
    t
}

/// Training set with distinct signature terms per leaf (10,20,30,40) and
/// shared noise term 1.
fn trained() -> focus_classifier::TrainedModel {
    let t = taxonomy();
    let mut ex = Vec::new();
    for (leaf, term) in [(2u16, 10u32), (3, 20), (5, 30), (6, 40)] {
        for i in 0..8u64 {
            ex.push((
                ClassId(leaf),
                Document::new(
                    DocId(leaf as u64 * 100 + i),
                    TermVec::from_counts([(TermId(term), 4 + (i % 3) as u32), (TermId(1), 2)]),
                ),
            ));
        }
    }
    train(&t, &ex, &TrainConfig::default())
}

fn doc_strategy() -> impl Strategy<Value = TermVec> {
    // Random docs over the known vocabulary plus unknown terms.
    proptest::collection::vec(
        (
            prop_oneof![
                Just(1u32),
                Just(10),
                Just(20),
                Just(30),
                Just(40),
                50..60u32
            ],
            1..6u32,
        ),
        0..8,
    )
    .prop_map(|pairs| TermVec::from_counts(pairs.into_iter().map(|(t, f)| (TermId(t), f))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_paths_agree_on_relevance(docs in proptest::collection::vec(doc_strategy(), 1..5)) {
        let model = trained();
        let mut db = Database::in_memory();
        let tables = ClassifierTables::create_and_load(&mut db, &model).unwrap();
        let batch: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, terms)| Document::new(DocId(1000 + i as u64), terms.clone()))
            .collect();
        tables.load_documents(&mut db, &batch).unwrap();

        let bulk = bulk_relevance(&mut db, &tables).unwrap();
        let sql = SingleProbeSql { tables: &tables };
        let blob = SingleProbeBlob { tables: &tables };
        for d in &batch {
            let mem = model.evaluate(&d.terms).relevance;
            let s = sql.evaluate(&mut db, &d.terms).unwrap().relevance;
            let b = blob.evaluate(&mut db, &d.terms).unwrap().relevance;
            let k = bulk[&d.id];
            prop_assert!((mem - s).abs() < 1e-9, "mem {mem} vs sql {s}");
            prop_assert!((mem - b).abs() < 1e-9, "mem {mem} vs blob {b}");
            prop_assert!((mem - k).abs() < 1e-9, "mem {mem} vs bulk {k}");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&mem));
        }
    }

    #[test]
    fn figure3_sql_matches_direct_plan(docs in proptest::collection::vec(doc_strategy(), 1..4)) {
        let model = trained();
        let mut db = Database::in_memory();
        let tables = ClassifierTables::create_and_load(&mut db, &model).unwrap();
        let batch: Vec<Document> = docs
            .iter()
            .enumerate()
            .map(|(i, terms)| Document::new(DocId(2000 + i as u64), terms.clone()))
            .collect();
        tables.load_documents(&mut db, &batch).unwrap();
        for c0 in [ClassId::ROOT, ClassId(1), ClassId(4)] {
            let direct = bulk_posterior(&mut db, &tables, c0).unwrap();
            let via_sql = bulk_posterior_sql(&mut db, &tables, c0).unwrap();
            prop_assert_eq!(direct.len(), via_sql.len());
            for (did, ci, p) in &direct {
                let q = via_sql
                    .iter()
                    .find(|(d, c, _)| d == did && c == ci)
                    .map(|(_, _, q)| *q)
                    .expect("row present in SQL result");
                prop_assert!((p - q).abs() < 1e-9, "{did:?}/{ci}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn posteriors_sum_to_one(doc in doc_strategy()) {
        let model = trained();
        for (c0, node) in &model.nodes {
            let post = node.posterior(&model.taxonomy, &doc);
            let sum: f64 = post.iter().map(|&(_, p)| p).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "node {c0}: sum {sum}");
            for (_, p) in post {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            }
        }
    }
}

#[test]
fn relevance_monotone_in_good_set() {
    // Adding a good topic can only increase R(d) (it is a sum of
    // disjoint-class probabilities).
    let mut t = taxonomy();
    let model1 = trained();
    let doc = TermVec::from_counts([(TermId(20), 3), (TermId(1), 1)]);
    let r1 = model1.evaluate(&doc).relevance;
    t.mark_good(ClassId(3)).unwrap(); // also mark a/y good
    let mut model2 = model1.clone();
    model2.taxonomy = t;
    let r2 = model2.evaluate(&doc).relevance;
    assert!(r2 >= r1 - 1e-12, "R must not decrease: {r1} -> {r2}");
    assert!(
        r2 > r1 + 0.1,
        "doc about a/y should gain a lot: {r1} -> {r2}"
    );
}
