//! Cross-crate integration: the full discover pipeline on a small world.

use focus::prelude::*;
use focus::ClassId;
use std::sync::Arc;

fn build_system(
    graph: &Arc<WebGraph>,
    good: &str,
    policy: CrawlPolicy,
    budget: u64,
) -> (focus::FocusSystem, ClassId) {
    let fetcher = Arc::new(SimFetcher::new(Arc::clone(graph), None));
    let mut builder = FocusBuilder::new(graph.taxonomy().clone());
    let topic = builder.mark_good_by_name(good).expect("topic exists");
    for c in builder.taxonomy().all().collect::<Vec<_>>() {
        if c != ClassId::ROOT {
            builder.add_examples(c, graph.example_docs(c, 12, 11));
        }
    }
    let system = builder
        .crawl_config(CrawlConfig {
            policy,
            threads: 3,
            max_fetches: budget,
            distill_every: Some(120),
            ..CrawlConfig::default()
        })
        .build(fetcher)
        .expect("system builds");
    (system, topic)
}

#[test]
fn discovery_produces_topical_subgraph_with_hubs() {
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(31)));
    let (system, topic) = build_system(&graph, "recreation/cycling", CrawlPolicy::SoftFocus, 300);
    let seeds = focus::search::topic_start_set(&graph, topic, 12);
    let outcome = system
        .start(&seeds)
        .expect("run starts")
        .join()
        .expect("discovery runs");

    assert!(
        outcome.stats.successes > 80,
        "successes {}",
        outcome.stats.successes
    );
    assert!(
        outcome.stats.mean_harvest() > 0.25,
        "harvest {}",
        outcome.stats.mean_harvest()
    );

    // Ground-truth check: the majority of confidently-relevant discovered
    // pages really are cycling pages.
    let confident: Vec<_> = outcome
        .visited
        .iter()
        .filter(|(_, r, _)| *r > 0.85)
        .collect();
    assert!(!confident.is_empty());
    let truly = confident
        .iter()
        .filter(|(o, _, _)| graph.topic_of(*o) == Some(topic))
        .count();
    // (Retuned for the vendored RNG's worlds: confidence cut 0.7 -> 0.85
    // and 12 training docs per topic. Small training sets tilt the
    // parent-node discriminator toward one arbitrary child, which rates
    // parent-topic pages confidently relevant; more examples shrink the
    // tilt ~ 1/sqrt(n).)
    assert!(
        truly * 10 >= confident.len() * 7,
        "{truly}/{} confident pages are truly on-topic",
        confident.len()
    );

    // Distillation surfaces true hub pages.
    let hub_kinds: Vec<_> = outcome
        .distill
        .top_hubs(5)
        .iter()
        .filter_map(|&(o, _)| graph.page(o))
        .map(|p| p.kind)
        .collect();
    assert!(
        hub_kinds.contains(&focus_webgraph::PageKind::Hub),
        "no true hub among the top-5: {hub_kinds:?}"
    );
}

#[test]
fn hard_focus_can_stagnate_where_soft_does_not() {
    // §2.1.2: "crawls controlled by this rule may stagnate". With a
    // narrow deep topic, hard focus throws away every off-best-leaf page;
    // soft focus keeps crawling. We assert soft fetches strictly more.
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(57)));
    let budget = 300;
    let run = |policy| {
        let (system, topic) =
            build_system(&graph, "business/investing/mutual-funds", policy, budget);
        let seeds = focus::search::topic_start_set(&graph, topic, 8);
        system
            .start(&seeds)
            .expect("starts")
            .join()
            .expect("runs")
            .stats
    };
    let soft = run(CrawlPolicy::SoftFocus);
    let hard = run(CrawlPolicy::HardFocus);
    assert!(
        hard.attempts < soft.attempts || hard.successes < soft.successes,
        "hard focus should fetch less: hard {}/{} vs soft {}/{}",
        hard.attempts,
        hard.successes,
        soft.attempts,
        soft.successes
    );
    // Soft focus consumes its whole budget.
    assert_eq!(soft.attempts, budget);
}

#[test]
fn monitoring_queries_run_against_live_session() {
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(73)));
    let (system, topic) = build_system(&graph, "health/hiv", CrawlPolicy::SoftFocus, 250);
    let seeds = focus::search::topic_start_set(&graph, topic, 10);
    system.start(&seeds).expect("starts").join().expect("runs");
    system.with_db_read(|db| {
        let census = focus_crawler::monitor::census_by_class(db).expect("census");
        assert!(!census.rows.is_empty(), "census empty");
        let harvest = focus_crawler::monitor::harvest_per_minute(db).expect("harvest");
        assert!(!harvest.rows.is_empty(), "harvest-per-minute empty");
        let frontier = focus_crawler::monitor::frontier_by_numtries(db).expect("frontier");
        // May be empty if the crawl drained everything, but must not error.
        let _ = frontier;
        // The hub-neighbor tweak query runs after a distillation.
        let rs = focus_crawler::monitor::missed_hub_neighbors(db, 0.0).expect("hub query");
        let _ = rs;
    });
}

#[test]
fn discovery_is_robust_to_bad_seeds() {
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(91)));
    let (system, topic) = build_system(&graph, "home/gardening", CrawlPolicy::SoftFocus, 150);
    // Seeds include unknown oids (dead URLs) mixed with real ones.
    let mut seeds = focus::search::topic_start_set(&graph, topic, 5);
    seeds.push(focus::Oid(0xDEAD_BEEF));
    seeds.push(focus::Oid(0xBAD_F00D));
    // The deprecated batch API must stay source-compatible: this test
    // intentionally goes through discover() (= start()?.join()).
    #[allow(deprecated)]
    let outcome = system.discover(&seeds).expect("runs despite dead seeds");
    assert!(outcome.stats.successes > 10);
    assert!(
        outcome.stats.failures >= 2,
        "dead seeds must be counted as failures"
    );
}

#[test]
fn backlink_expansion_reaches_citers() {
    // §3.2's backward device: with backlink metadata served, a crawl can
    // enqueue pages that *point to* a relevant page.
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(101)));
    let mut taxonomy = graph.taxonomy().clone();
    let cycling = taxonomy.find("recreation/cycling").unwrap();
    taxonomy.mark_good(cycling).unwrap();
    let model = {
        let mut examples = Vec::new();
        for c in taxonomy.all().collect::<Vec<_>>() {
            if c != ClassId::ROOT {
                for d in graph.example_docs(c, 12, 11) {
                    examples.push((c, d));
                }
            }
        }
        focus_classifier::train::train(
            &taxonomy,
            &examples,
            &focus_classifier::train::TrainConfig::default(),
        )
    };
    let run = |backlinks: bool| {
        let fetcher: Arc<dyn focus::Fetcher> = if backlinks {
            Arc::new(SimFetcher::new(Arc::clone(&graph), None).with_backlinks())
        } else {
            Arc::new(SimFetcher::new(Arc::clone(&graph), None))
        };
        let session = Arc::new(
            focus_crawler::session::CrawlSession::new(
                fetcher,
                model.clone(),
                CrawlConfig {
                    policy: CrawlPolicy::SoftFocus,
                    threads: 1,
                    max_fetches: 120,
                    distill_every: None,
                    backlink_expansion_above: if backlinks { Some(0.5) } else { None },
                    ..CrawlConfig::default()
                },
            )
            .unwrap(),
        );
        session
            .seed(&focus::search::topic_start_set(&graph, cycling, 8))
            .unwrap();
        session.run().unwrap();
        session
            .visited()
            .iter()
            .map(|&(o, _, _)| o)
            .collect::<std::collections::HashSet<_>>()
    };
    let plain = run(false);
    let with_back = run(true);
    assert!(!with_back.is_empty());
    // The backlink crawl reaches at least one page the forward crawl did
    // not (a citer pulled in backwards).
    let only_backward: Vec<_> = with_back.difference(&plain).collect();
    assert!(
        !only_backward.is_empty(),
        "backlink expansion changed nothing over {} visited pages",
        with_back.len()
    );
}
