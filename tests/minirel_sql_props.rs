//! Property tests: the SQL engine against in-memory reference
//! computations on randomized data.

use minirel::{Database, Value};
use proptest::prelude::*;

fn table_rows() -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    proptest::collection::vec((0..40i64, 0..8i64, -10.0..10.0f64), 1..60)
}

fn load(db: &mut Database, rows: &[(i64, i64, f64)]) {
    db.execute("create table t (a int, b int, x float)")
        .unwrap();
    let tid = db.table_id("t").unwrap();
    for &(a, b, x) in rows {
        db.insert(tid, vec![Value::Int(a), Value::Int(b), Value::Float(x)])
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filters_match_reference(rows in table_rows(), cut in -10.0..10.0f64) {
        let mut db = Database::in_memory();
        load(&mut db, &rows);
        let rs = db
            .execute(&format!("select count(*) from t where x > {cut}"))
            .unwrap();
        let expect = rows.iter().filter(|&&(_, _, x)| x > cut).count() as i64;
        prop_assert_eq!(rs.scalar_i64(), Some(expect));
    }

    #[test]
    fn group_by_sums_match_reference(rows in table_rows()) {
        let mut db = Database::in_memory();
        load(&mut db, &rows);
        let rs = db
            .execute("select b, sum(x), count(*) from t group by b order by b")
            .unwrap();
        let mut expect: std::collections::BTreeMap<i64, (f64, i64)> = Default::default();
        for &(_, b, x) in &rows {
            let e = expect.entry(b).or_insert((0.0, 0));
            e.0 += x;
            e.1 += 1;
        }
        prop_assert_eq!(rs.rows.len(), expect.len());
        for row in &rs.rows {
            let b = row[0].as_i64().unwrap();
            let (sum, cnt) = expect[&b];
            prop_assert!((row[1].as_f64().unwrap() - sum).abs() < 1e-6);
            prop_assert_eq!(row[2].as_i64(), Some(cnt));
        }
    }

    #[test]
    fn order_by_is_sorted(rows in table_rows()) {
        let mut db = Database::in_memory();
        load(&mut db, &rows);
        let rs = db.execute("select x from t order by x desc").unwrap();
        let xs: Vec<f64> = rs.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        for w in xs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert_eq!(xs.len(), rows.len());
    }

    #[test]
    fn join_matches_reference(
        left in proptest::collection::vec((0..12i64, -5.0..5.0f64), 1..30),
        right in proptest::collection::vec((0..12i64, 0..100i64), 1..30),
    ) {
        let mut db = Database::in_memory();
        db.execute("create table l (k int, x float)").unwrap();
        db.execute("create table r (k int, y int)").unwrap();
        let lt = db.table_id("l").unwrap();
        let rt = db.table_id("r").unwrap();
        for &(k, x) in &left {
            db.insert(lt, vec![Value::Int(k), Value::Float(x)]).unwrap();
        }
        for &(k, y) in &right {
            db.insert(rt, vec![Value::Int(k), Value::Int(y)]).unwrap();
        }
        let rs = db
            .execute("select count(*) from l, r where l.k = r.k")
            .unwrap();
        let expect: i64 = left
            .iter()
            .map(|&(k, _)| right.iter().filter(|&&(rk, _)| rk == k).count() as i64)
            .sum();
        prop_assert_eq!(rs.scalar_i64(), Some(expect));
        // Left outer join: every left row appears at least once.
        let rs = db
            .execute("select count(*) from l left outer join r on l.k = r.k")
            .unwrap();
        let unmatched = left
            .iter()
            .filter(|&&(k, _)| !right.iter().any(|&(rk, _)| rk == k))
            .count() as i64;
        prop_assert_eq!(rs.scalar_i64(), Some(expect + unmatched));
    }

    #[test]
    fn update_then_read_back(rows in table_rows(), delta in -5.0..5.0f64) {
        let mut db = Database::in_memory();
        load(&mut db, &rows);
        db.execute(&format!("update t set x = x + {delta}")).unwrap();
        let rs = db.execute("select sum(x) from t").unwrap();
        let expect: f64 = rows.iter().map(|&(_, _, x)| x + delta).sum();
        let got = rs.scalar_f64().unwrap();
        prop_assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
    }

    #[test]
    fn delete_with_predicate(rows in table_rows(), cut in -10.0..10.0f64) {
        let mut db = Database::in_memory();
        load(&mut db, &rows);
        db.execute(&format!("delete from t where x <= {cut}")).unwrap();
        let rs = db.execute("select count(*) from t").unwrap();
        let expect = rows.iter().filter(|&&(_, _, x)| x > cut).count() as i64;
        prop_assert_eq!(rs.scalar_i64(), Some(expect));
    }

    #[test]
    fn index_does_not_change_answers(rows in table_rows(), probe in 0..40i64) {
        // Same query with and without a secondary index must agree.
        let mut db1 = Database::in_memory();
        load(&mut db1, &rows);
        let mut db2 = Database::in_memory();
        load(&mut db2, &rows);
        db2.execute("create index t_a on t (a)").unwrap();
        let q = format!("select count(*), sum(x) from t where a = {probe}");
        let r1 = db1.execute(&q).unwrap();
        let r2 = db2.execute(&q).unwrap();
        prop_assert_eq!(r1.rows[0][0].as_i64(), r2.rows[0][0].as_i64());
        let (s1, s2) = (r1.rows[0][1].as_f64(), r2.rows[0][1].as_f64());
        match (s1, s2) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}
