//! Randomized consistency between the three distiller implementations,
//! and topical-quality properties of the weighting scheme.

use focus_distiller::db::{create_crawl_stub, create_tables, load_links, run, run_naive};
use focus_distiller::memory::{edges_from_links, WeightedHits};
use focus_distiller::DistillConfig;
use focus_types::hash::FxHashMap;
use focus_types::Oid;
use minirel::Database;
use proptest::prelude::*;

type RawGraph = (Vec<(Oid, u32, Oid, u32)>, FxHashMap<Oid, f64>);

fn graph_strategy() -> impl Strategy<Value = RawGraph> {
    // Up to 12 nodes on up to 5 servers; relevances in [0, 1].
    (
        proptest::collection::vec((0..12u64, 0..12u64), 1..40),
        proptest::collection::vec(0.0..1.0f64, 12),
    )
        .prop_map(|(pairs, rels)| {
            let server_of = |n: u64| (n % 5) as u32;
            let links: Vec<(Oid, u32, Oid, u32)> = pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (Oid(a), server_of(a), Oid(b), server_of(b)))
                .collect();
            let mut rel: FxHashMap<Oid, f64> = FxHashMap::default();
            for (i, r) in rels.into_iter().enumerate() {
                rel.insert(Oid(i as u64), r);
            }
            (links, rel)
        })
        .prop_filter("need at least one edge", |(l, _)| !l.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn memory_join_and_naive_agree((links, rel) in graph_strategy()) {
        let edges = edges_from_links(&links, &rel);
        let cfg = DistillConfig { iterations: 3, ..DistillConfig::default() };
        let mem = WeightedHits::new(&edges, &rel, cfg.clone()).run();

        let mut db = Database::in_memory();
        create_tables(&mut db).unwrap();
        create_crawl_stub(&mut db, &rel).unwrap();
        load_links(&mut db, &edges).unwrap();
        let join = run(&mut db, &cfg).unwrap();

        let mut db2 = Database::in_memory();
        create_tables(&mut db2).unwrap();
        create_crawl_stub(&mut db2, &rel).unwrap();
        load_links(&mut db2, &edges).unwrap();
        let (naive, _) = run_naive(&mut db2, &cfg).unwrap();

        prop_assert_eq!(mem.hubs.len(), join.hubs.len());
        prop_assert_eq!(mem.auths.len(), naive.auths.len());
        for (o, s) in &mem.hubs {
            let j = join.hub_score(*o);
            let n = naive.hub_score(*o);
            prop_assert!((s - j).abs() < 1e-9, "hub {o}: mem {s} join {j}");
            prop_assert!((s - n).abs() < 1e-9, "hub {o}: mem {s} naive {n}");
        }
        // Scores normalized (or empty).
        let hub_sum: f64 = mem.hubs.iter().map(|&(_, s)| s).sum();
        prop_assert!(mem.hubs.is_empty() || (hub_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nepotism_filter_never_scores_single_server_graphs(
        pairs in proptest::collection::vec((0..8u64, 0..8u64), 1..20)
    ) {
        // All nodes on one server: every edge is nepotistic.
        let links: Vec<(Oid, u32, Oid, u32)> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (Oid(a), 1, Oid(b), 1))
            .collect();
        prop_assume!(!links.is_empty());
        let mut rel: FxHashMap<Oid, f64> = FxHashMap::default();
        for i in 0..8u64 {
            rel.insert(Oid(i), 0.9);
        }
        let edges = edges_from_links(&links, &rel);
        let r = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        for (_, s) in &r.hubs {
            prop_assert!(*s == 0.0 || !s.is_nan() && *s < 1e-12);
        }
    }
}
