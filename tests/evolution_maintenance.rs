//! Crawl maintenance on an evolving web (§2.2 "good hubs should be
//! checked frequently for new resource links"; §3.2 crawl maintenance)
//! and the §1 community-evolution query over `LINK.discovered`.

use focus_crawler::monitor;
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::CrawlPolicy;
use focus_eval::common::train_model;
use focus_eval::Scale;
use focus_webgraph::{evolve, EvolutionConfig, EvolvingFetcher, WebConfig, WebGraph};
use std::sync::Arc;

#[test]
fn maintenance_discovers_new_resources_after_evolution() {
    let base = Arc::new(WebGraph::generate(WebConfig::tiny(47)));
    let mut taxonomy = base.taxonomy().clone();
    let cycling = taxonomy.find("recreation/cycling").unwrap();
    taxonomy.mark_good(cycling).unwrap();
    let model = train_model(&base, &taxonomy, Scale::Tiny, 47);
    let fetcher = Arc::new(EvolvingFetcher::new(Arc::clone(&base)));

    let session = Arc::new(
        CrawlSession::new(
            Arc::clone(&fetcher) as Arc<dyn focus_webgraph::Fetcher>,
            model,
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 2,
                max_fetches: 160,
                distill_every: Some(80),
                ..CrawlConfig::default()
            },
        )
        .unwrap(),
    );
    session
        .seed(&focus_webgraph::search::topic_start_set(&base, cycling, 10))
        .unwrap();
    let stats1 = session.run().unwrap();
    assert!(stats1.successes > 50);
    let visited_before: std::collections::HashSet<_> =
        session.visited().iter().map(|&(o, _, _)| o).collect();

    // The web evolves: new cycling resources appear and hubs list them.
    let gen1 = Arc::new(evolve(
        &base,
        1,
        &EvolutionConfig {
            new_pages_per_topic: 12,
            hub_update_fraction: 1.0,
            new_links_per_hub: 8,
            content_update_fraction: 0.6,
            seed: 5,
        },
    ));
    fetcher.swap(Arc::clone(&gen1));

    // Maintenance: revisit top hubs, find the new links.
    let (revisited, new_links) = session.maintenance_pass(10).unwrap();
    assert!(revisited > 0, "no hubs revisited");
    assert!(new_links > 0, "maintenance found no new links");

    // Resume crawling: the new resources get fetched.
    session.add_budget(80);
    let stats2 = session.run().unwrap();
    assert!(
        stats2.successes > stats1.successes,
        "no new fetches after maintenance"
    );
    let newly_fetched: Vec<_> = session
        .visited()
        .iter()
        .filter(|&&(o, _, _)| !visited_before.contains(&o))
        .map(|&(o, _, _)| o)
        .collect();
    assert!(!newly_fetched.is_empty(), "nothing new was visited");
    // At least one genuinely *new-generation* page was discovered.
    let gen1_pages = newly_fetched
        .iter()
        .filter(|&&o| base.page(o).is_none() && gen1.page(o).is_some())
        .count();
    assert!(
        gen1_pages > 0,
        "no generation-1 page discovered via maintenance"
    );
}

#[test]
fn community_evolution_query_counts_new_cross_topic_links() {
    // Build a session whose LINK table carries `discovered` timestamps,
    // then count cross-topic links in time windows.
    let base = Arc::new(WebGraph::generate(WebConfig::tiny(61)));
    let mut taxonomy = base.taxonomy().clone();
    let cycling = taxonomy.find("recreation/cycling").unwrap();
    taxonomy.mark_good(cycling).unwrap();
    let model = train_model(&base, &taxonomy, Scale::Tiny, 61);
    let fetcher = Arc::new(EvolvingFetcher::new(Arc::clone(&base)));
    let session = Arc::new(
        CrawlSession::new(
            Arc::clone(&fetcher) as Arc<dyn focus_webgraph::Fetcher>,
            model,
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 1,
                max_fetches: 120,
                distill_every: Some(60),
                ..CrawlConfig::default()
            },
        )
        .unwrap(),
    );
    session
        .seed(&focus_webgraph::search::topic_start_set(&base, cycling, 8))
        .unwrap();
    session.run().unwrap();

    // The best-populated class pair: cycling pages to first-aid pages
    // (the affinity the generator builds in).
    let first_aid = base.taxonomy().find("health/first-aid").unwrap();
    let all_time = session.with_db_read(|db| {
        monitor::community_evolution(db, cycling.raw() as i64, first_aid.raw() as i64, 0).unwrap()
    });
    // Window starting "after the crawl" must contain no links.
    let future = session.with_db_read(|db| {
        monitor::community_evolution(
            db,
            cycling.raw() as i64,
            first_aid.raw() as i64,
            i64::MAX / 2,
        )
        .unwrap()
    });
    assert!(all_time > 0, "no cycling->first-aid links recorded at all");
    assert_eq!(future, 0);

    // The spam-filter query class also runs on live data.
    let rs = session.with_db_read(|db| {
        monitor::cross_topic_citations(db, first_aid.raw() as i64, cycling.raw() as i64, 1).unwrap()
    });
    assert!(
        !rs.rows.is_empty(),
        "expected at least one first-aid page cited by cycling pages"
    );
}
