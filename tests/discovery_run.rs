//! The paper's §3.7 admin-in-the-loop scenario as an integration test:
//! a running crawl is paused, a sibling topic is marked good, the run
//! resumes, and the harvest series shows the crawler acquiring pages of
//! the newly-marked topic — without restarting anything.

use focus::prelude::*;
use focus::{ClassId, FocusSystem};
use std::sync::Arc;
use std::time::Duration;

fn cycling_system(graph: &Arc<WebGraph>) -> (FocusSystem, ClassId) {
    let fetcher = Arc::new(SimFetcher::new(Arc::clone(graph), None));
    let mut builder = FocusBuilder::new(graph.taxonomy().clone());
    let cycling = builder.mark_good_by_name("recreation/cycling").unwrap();
    for c in builder.taxonomy().all().collect::<Vec<_>>() {
        if c != ClassId::ROOT {
            builder.add_examples(c, graph.example_docs(c, 8, 11));
        }
    }
    let system = builder
        .crawl_config(CrawlConfig {
            policy: CrawlPolicy::SoftFocus,
            threads: 2,
            // Steered and stopped by hand; the budget is a backstop.
            max_fetches: 100_000,
            distill_every: Some(150),
            ..CrawlConfig::default()
        })
        .build(fetcher)
        .expect("system builds");
    (system, cycling)
}

fn wait_until(run: &focus::DiscoveryRun, pred: impl Fn(&focus::CrawlStats) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while !pred(&run.stats()) && !run.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "crawl made no progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn mid_crawl_resteering_reaches_newly_marked_topic() {
    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(13)));
    let (system, cycling) = cycling_system(&graph);
    let running = graph.taxonomy().find("recreation/running").unwrap();

    // Phase 1: crawl toward cycling only.
    let seeds = focus::search::topic_start_set(&graph, cycling, 12);
    let mut run = system.start(&seeds).expect("starts");
    let events = run.take_events().expect("stream");
    wait_until(&run, |s| s.attempts >= 150);
    run.pause();
    while run.state() != RunState::Paused && !run.is_finished() {
        std::thread::sleep(Duration::from_millis(1));
    }
    let at_pause = run.stats();
    let fetched_before = at_pause.completion_order.len();
    // Under good = {cycling}, no running-topic page can classify as
    // confidently relevant.
    let confident_running_before = at_pause
        .completion_order
        .iter()
        .filter(|(o, r)| graph.topic_of(*o) == Some(running) && *r > 0.5)
        .count();
    assert_eq!(
        confident_running_before, 0,
        "running pages were already relevant before the re-mark"
    );

    // Phase 2: one administrative command against the *paused* run.
    let marked = run
        .mark_topic_by_name("recreation/running", true)
        .expect("sibling topic exists");
    assert_eq!(marked, running);
    run.resume();
    wait_until(&run, |s| s.attempts >= at_pause.attempts + 300);
    run.stop();
    let outcome = run.join().expect("run completes");

    // The harvest series after the resume point contains pages of the
    // newly-marked topic, classified as relevant under the new marking.
    let confident_running_after = outcome.stats.completion_order[fetched_before..]
        .iter()
        .filter(|(o, r)| graph.topic_of(*o) == Some(running) && *r > 0.5)
        .count();
    assert!(
        confident_running_after >= 3,
        "expected the re-steered crawl to harvest running pages, got {confident_running_after}"
    );

    // The control trail is on the event stream, in causal order.
    let all: Vec<CrawlEvent> = events.collect();
    let pos = |pred: &dyn Fn(&CrawlEvent) -> bool| {
        all.iter()
            .position(pred)
            .unwrap_or_else(|| panic!("missing event in {all:?}"))
    };
    let paused = pos(&|e| matches!(e, CrawlEvent::Paused));
    let marked_ev = pos(
        &|e| matches!(e, CrawlEvent::TopicMarked { class, good: true, applied: true } if *class == running),
    );
    let resteered = pos(&|e| matches!(e, CrawlEvent::FrontierResteered { .. }));
    let resumed = pos(&|e| matches!(e, CrawlEvent::Resumed));
    let stopped = pos(&|e| matches!(e, CrawlEvent::Stopped { .. }));
    assert!(paused < marked_ev, "mark arrived before pause: {all:?}");
    assert!(marked_ev < resteered, "resteer must follow the mark");
    assert!(resteered < resumed, "resume must follow the resteer");
    assert!(resumed < stopped, "stop is last");
}

#[test]
fn observer_sees_every_classification() {
    use std::sync::Mutex;

    struct Counter(Mutex<u64>);
    impl CrawlObserver for Counter {
        fn on_event(&self, event: &CrawlEvent) {
            if matches!(event, CrawlEvent::PageClassified { .. }) {
                *self.0.lock().unwrap() += 1;
            }
        }
    }

    let graph = Arc::new(WebGraph::generate(WebConfig::tiny(57)));
    let (system, cycling) = cycling_system(&graph);
    let seeds = focus::search::topic_start_set(&graph, cycling, 10);
    let counter = Arc::new(Counter(Mutex::new(0)));
    let run = system
        .start_with(
            &seeds,
            focus::RunOptions {
                observers: vec![counter.clone()],
                ..Default::default()
            },
        )
        .expect("starts");
    wait_until(&run, |s| s.attempts >= 120);
    run.stop();
    let outcome = run.join().expect("completes");
    // Observers are synchronous: no classification is ever dropped, even
    // if the bounded channel overflows.
    assert_eq!(*counter.0.lock().unwrap(), outcome.stats.successes);
}
