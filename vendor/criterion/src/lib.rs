//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the workspace's benches compiling and runnable offline. Each
//! benchmark is timed with a short fixed schedule (warmup + median of a
//! handful of samples) and printed as one line — no statistics, HTML
//! reports, or baseline comparisons. Numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for the one function benches commonly use.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Workload size declaration; printed next to the timing when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label a parameterized benchmark.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    measured: Duration,
}

impl Bencher {
    /// Run `f` on the stand-in's fixed schedule and record the median
    /// per-iteration time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup, then a few timed samples of several iterations each.
        black_box(f());
        let iters_per_sample = 3u32;
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                start.elapsed() / iters_per_sample
            })
            .collect();
        times.sort();
        self.measured = times[times.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in's schedule is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare the workload size of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: 5,
            measured: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.name, b.measured);
        self
    }

    /// Time one benchmark over an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: 5,
            measured: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.name, b.measured);
        self
    }

    /// End the group (printing already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, t: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if t > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / t.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if t > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / t.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {t:?}/iter{rate}", self.name);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Time one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_owned(),
            throughput: None,
        };
        g.bench_function(name, f);
        self
    }
}

/// Declare the benchmark functions a target runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("t");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
