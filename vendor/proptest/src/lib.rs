//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the API subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_filter`, range/tuple/`Just`/`any`/char-class-string strategies,
//! [`collection::vec`], `prop_oneof!`, and the `proptest!`/`prop_assert*`
//! macros. Cases are generated from a seed derived from the test's module
//! path and name, so failures reproduce across runs. **No shrinking**: a
//! failing case reports its inputs via the assertion message only.

/// Deterministic split-mix style generator driving all strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seeded construction; equal seeds give equal streams.
    pub fn new(seed: u64) -> Gen {
        Gen {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a over bytes; seeds per-test generators from the test's name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped, not failed.
    Reject(String),
    /// `prop_assert*!` failed — the test fails.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration (`cases` is the only knob this workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use super::Gen;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, g: &mut Gen) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from a strategy built on it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Reject values failing `keep` (retries up to an internal cap).
        fn prop_filter<F>(self, whence: impl Into<String>, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence: whence.into(),
                keep,
            }
        }

        /// Type-erase for heterogeneous unions (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, g: &mut Gen) -> V {
            (**self).generate(g)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, g: &mut Gen) -> O {
            (self.f)(self.base.generate(g))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, g: &mut Gen) -> S2::Value {
            (self.f)(self.base.generate(g)).generate(g)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: String,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, g: &mut Gen) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(g);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _g: &mut Gen) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, g: &mut Gen) -> V {
            let i = g.below(self.options.len() as u64) as usize;
            self.options[i].generate(g)
        }
    }

    /// Full-domain generation for `any::<T>()`.
    pub trait Arbitrary {
        fn arbitrary(g: &mut Gen) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(g: &mut Gen) -> $t {
                    g.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(g: &mut Gen) -> bool {
            g.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Any bit pattern: includes subnormals, infinities, and NaN,
        /// like real proptest's `any::<f64>()`.
        fn arbitrary(g: &mut Gen) -> f64 {
            f64::from_bits(g.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(g: &mut Gen) -> f32 {
            f32::from_bits(g.next_u64() as u32)
        }
    }

    /// Strategy over a type's full domain.
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — generate arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, g: &mut Gen) -> T {
            T::arbitrary(g)
        }
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + g.below(span) as i128) as $t
                }
            }
        )*};
    }

    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, g: &mut Gen) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + g.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, g: &mut Gen) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (g.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! strategy_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, g: &mut Gen) -> Self::Value {
                    ($(self.$idx.generate(g),)+)
                }
            }
        };
    }

    strategy_tuple!(A.0);
    strategy_tuple!(A.0, B.1);
    strategy_tuple!(A.0, B.1, C.2);
    strategy_tuple!(A.0, B.1, C.2, D.3);

    /// Char-class string patterns (`"[a-z0-9 ]{0,12}"`): the only regex
    /// shape this workspace's tests use. Anything else is a panic naming
    /// the unsupported pattern.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, g: &mut Gen) -> String {
            let (alphabet, lo, hi) = parse_charclass_pattern(self);
            let len = lo + g.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[g.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn unsupported_pattern(pat: &str) -> ! {
        panic!(
            "proptest stand-in supports only \"[chars]{{lo,hi}}\" string \
             patterns, got {pat:?}; extend vendor/proptest"
        )
    }

    fn parse_charclass_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let Some(rest) = pat.strip_prefix('[') else {
            unsupported_pattern(pat);
        };
        let Some(close) = rest.find(']') else {
            unsupported_pattern(pat);
        };
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` is a range unless `-` is first or last in the class.
            if i + 2 < class.len() && class[i + 1] == '-' {
                for c in class[i]..=class[i + 2] {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            unsupported_pattern(pat);
        }
        let Some(counts) = rest[close + 1..]
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
        else {
            unsupported_pattern(pat);
        };
        let Some((lo, hi)) = counts.split_once(',') else {
            unsupported_pattern(pat);
        };
        let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) else {
            unsupported_pattern(pat);
        };
        assert!(lo <= hi, "bad repetition bounds in {pat:?}");
        (alphabet, lo, hi)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::Gen;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + g.below(span) as usize;
            (0..len).map(|_| self.element.generate(g)).collect()
        }
    }
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// The property-test declaration macro. Each `fn name(pat in strategy)`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::fnv1a(
                    concat!(module_path!(), "::", stringify!($name)).as_bytes(),
                );
                for case in 0..cfg.cases {
                    let mut gen = $crate::Gen::new(
                        base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let ( $($pat,)+ ) =
                        ( $($crate::strategy::Strategy::generate(&$strat, &mut gen),)+ );
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match result {
                        ::core::result::Result::Ok(()) => {}
                        // Rejected cases are skipped without a retry; the
                        // budgets in this workspace tolerate the loss.
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}: {}",
                                stringify!($name), case, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case when its inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::Gen::new(1);
        let mut b = crate::Gen::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn charclass_pattern_shapes() {
        let mut g = crate::Gen::new(3);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-c9]{2,4}", &mut g);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| "abc9".contains(c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies(v in crate::collection::vec(0..10u32, 1..5), x in 3..9i64) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!((3..9).contains(&x), "x = {}", x);
        }

        #[test]
        fn combinators_compose((n, v) in (1usize..4).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(prop_oneof![Just(7u32), 100..110u32], n))
        })) {
            prop_assert_eq!(v.len(), n);
            for e in v {
                prop_assert!(e == 7 || (100..110).contains(&e));
            }
        }

        #[test]
        fn assume_skips(x in 0..10i32) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }
}
