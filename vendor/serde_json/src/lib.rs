//! Offline stand-in for `serde_json` (see `vendor/README.md`): renders the
//! stand-in serde's [`JsonValue`] tree as JSON text. Only the entry points
//! this workspace calls are provided.

use serde::{JsonValue, Serialize};
use std::fmt;

/// Serialization error. The tree renderer is total, so this is only a
/// placeholder to keep call sites' `Result` handling source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// `serde_json`-shaped result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Render compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Render two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>, depth: usize) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::UInt(u) => out.push_str(&u.to_string()),
        JsonValue::Float(f) => {
            // JSON has no NaN/Infinity; serde_json emits null for them.
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats round-trippable as floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Array(items) => {
            write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            });
        }
        JsonValue::Object(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = vec![(1i64, "a".to_string())];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1,\n    \"a\"\n  ]\n]");
        assert_eq!(to_string(&v).unwrap(), "[[1,\"a\"]]");
    }

    #[test]
    fn escapes_and_specials() {
        let s = to_string(&"a\"b\n").unwrap();
        assert_eq!(s, "\"a\\\"b\\n\"");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
