//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the API subset this workspace uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — on a
//! xoshiro256** core seeded through splitmix64, exactly the construction
//! real `SmallRng` documents. Streams are deterministic per seed, which
//! the synthetic web generator's reproducibility tests rely on; they are
//! **not** bit-identical to upstream `rand` (regenerated worlds differ in
//! content, not in statistical shape).

pub mod rngs {
    /// A small, fast, non-cryptographic RNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::SmallRng;

/// Seedable construction (API subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed (via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate xoshiro orbit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

/// Types samplable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample_standard(rng: &mut SmallRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> u64 {
        rng.next_u64_impl()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> u32 {
        (rng.next_u64_impl() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> f64 {
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> bool {
        rng.next_u64_impl() & 1 == 1
    }
}

/// Ranges usable with `rng.gen_range(..)`. The type parameter is the
/// produced value, so the caller's expected type drives inference of
/// unsuffixed literals, as in upstream rand.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans this
                // workspace draws (all far below 2^64).
                let v = (rng.next_u64_impl() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64_impl() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) as f32 * (self.end - self.start)
    }
}

/// The user-facing sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Uniform sample over a type's full domain.
    fn gen<T: Standard>(&mut self) -> T;
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for SmallRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn covers_full_int_span() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
