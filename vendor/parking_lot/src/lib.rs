//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning surface:
//! `lock()`/`read()`/`write()` return guards directly rather than
//! `LockResult`s, and a poisoned lock (a thread panicked while holding it)
//! is recovered instead of propagating the poison, which matches
//! parking_lot's "no poisoning" semantics closely enough for this
//! workspace's use (the crawler handles worker panics explicitly).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create an unlocked rwlock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
