//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! Provides the [`Buf`]/[`BufMut`] codec methods minirel's value codecs
//! use, for the two concrete carriers they use them with: reading
//! advances a `&[u8]` slice in place, writing appends to a `Vec<u8>`.
//! Reads past the end panic, as upstream documents.

/// Sequential reader over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy out exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Any bytes left?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential writer appending to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Big-endian, as upstream: the key codec relies on this for
    /// memcomparable ordering.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"ab");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"b");
    }

    #[test]
    fn put_u64_is_big_endian() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u64(1);
        assert_eq!(buf, [0, 0, 0, 0, 0, 0, 0, 1]);
    }
}
