//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` without `syn`/`quote` by walking the
//! raw token stream. Supported shapes — the only ones this workspace
//! derives on — are non-generic named structs, tuple structs, and enums
//! of unit variants; anything else is a compile error naming the gap.
//! `#[derive(Deserialize)]` expands to nothing: no workspace code
//! deserializes, so the derive only needs to satisfy the attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by materializing a `JsonValue` tree.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::JsonValue::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::JsonValue::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::JsonValue::Null".to_owned(),
        Shape::UnitEnum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::JsonValue::Str(\
                         ::std::string::String::from(\"{v}\")),",
                        name = item.name
                    )
                })
                .collect::<String>();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::JsonValue {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive stand-in emitted invalid Rust")
}

/// No-op: satisfies `#[derive(Deserialize)]` attributes; nothing in this
/// workspace calls a deserializer.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive stand-in: generic type {name} is not supported; \
                 implement serde::Serialize by hand or extend vendor/serde_derive"
            );
        }
    }
    let shape = match (kind.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        (k, t) => panic!("serde_derive stand-in: unsupported item {k} {name}: {t:?}"),
    };
    Item { name, shape }
}

/// Field names of a braced struct body. Types are skipped by consuming
/// tokens until a comma at angle-bracket depth zero (delimited groups are
/// single tokens, so only `<`/`>` need tracking).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive stand-in: expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stand-in: expected ':', got {other:?}"),
        }
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break;
    }
    fields
}

/// Number of fields in a tuple-struct body (top-level comma count).
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in body {
        saw_token = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => {}
        }
    }
    // A trailing comma and a separator comma are indistinguishable here;
    // tuple structs in this workspace never use trailing commas.
    if saw_token {
        fields + 1
    } else {
        0
    }
}

/// Variant names of a unit-variant-only enum body.
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                match toks.peek() {
                    None => break,
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        toks.next();
                    }
                    Some(other) => panic!(
                        "serde_derive stand-in: enum {enum_name} has a non-unit \
                         variant near {other:?}; extend vendor/serde_derive"
                    ),
                }
            }
            None => break,
            other => panic!("serde_derive stand-in: unexpected token {other:?}"),
        }
    }
    variants
}
