//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Real serde serializes through a visitor; this stand-in materializes a
//! [`JsonValue`] tree instead, which is all `serde_json::to_string_pretty`
//! (the only serializer this workspace uses) needs. `#[derive(Serialize)]`
//! is a real proc-macro (re-exported from `serde_derive`) that walks
//! struct fields; `#[derive(Deserialize)]` compiles to nothing because no
//! code in this workspace deserializes.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON document tree — the stand-in's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

/// Types renderable as JSON. The derive macro implements this for structs
/// (objects), newtype structs (transparent), and unit-variant enums
/// (variant-name strings), mirroring serde's default representations.
pub trait Serialize {
    /// Materialize this value as a JSON tree.
    fn to_json_value(&self) -> JsonValue;
}

/// Marker for the `Deserialize` derive import; no workspace code
/// deserializes, so the trait has no surface.
pub trait DeserializeOwned {}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::UInt(*self)
    }
}

impl Serialize for usize {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::UInt(*self as u64)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! ser_tuple {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    };
}

ser_tuple!(A.0);
ser_tuple!(A.0, B.1);
ser_tuple!(A.0, B.1, C.2);
ser_tuple!(A.0, B.1, C.2, D.3);

impl<K: std::fmt::Display, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> JsonValue {
        let mut entries: Vec<(String, JsonValue)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Object(entries)
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_nodes() {
        assert_eq!(3i32.to_json_value(), JsonValue::Int(3));
        assert_eq!(3u64.to_json_value(), JsonValue::UInt(3));
        assert_eq!(true.to_json_value(), JsonValue::Bool(true));
        assert_eq!("x".to_json_value(), JsonValue::Str("x".into()));
        assert_eq!(None::<i32>.to_json_value(), JsonValue::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1i64, 2.0f64)];
        assert_eq!(
            v.to_json_value(),
            JsonValue::Array(vec![JsonValue::Array(vec![
                JsonValue::Int(1),
                JsonValue::Float(2.0)
            ])])
        );
    }
}
