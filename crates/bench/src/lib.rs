//! Bench-only crate; real content lives in benches/.
