//! Bench for Figure 5: one focused and one unfocused crawl per iteration
//! (tiny scale). Regenerate the full figure with
//! `cargo run -p focus-eval --bin fig5 --release -- full`.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_crawler::CrawlPolicy;
use focus_eval::common::{Scale, World};
use focus_eval::fig5_harvest::run_crawl;

fn bench(c: &mut Criterion) {
    let world = World::cycling(Scale::Tiny, 42);
    let mut g = c.benchmark_group("fig5_harvest");
    g.sample_size(10);
    g.bench_function("soft_focus_crawl_150", |b| {
        b.iter(|| run_crawl(&world, CrawlPolicy::SoftFocus, 150))
    });
    g.bench_function("unfocused_crawl_150", |b| {
        b.iter(|| run_crawl(&world, CrawlPolicy::Unfocused, 150))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
