//! Bench for Figure 8(d): naive edge-walk vs join-based distillation.
//! The paper's result: join is ~3x faster. Regenerate with
//! `cargo run -p focus-eval --bin fig8d --release -- full`.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_distiller::db::{
    create_crawl_stub, create_tables, init_auth_uniform, join_iteration, load_links,
    naive_iteration,
};
use focus_distiller::DistillConfig;
use focus_eval::common::Scale;
use focus_eval::fig8d_distiller::build_graph;
use minirel::Database;

fn bench(c: &mut Criterion) {
    let (edges, relevance) = build_graph(Scale::Tiny);
    let cfg = DistillConfig::default();
    let mk = || {
        let mut db = Database::in_memory_with_frames(192);
        create_tables(&mut db).unwrap();
        create_crawl_stub(&mut db, &relevance).unwrap();
        load_links(&mut db, &edges).unwrap();
        init_auth_uniform(&mut db).unwrap();
        db
    };
    let mut g = c.benchmark_group("fig8d_distiller");
    g.sample_size(10);
    let mut db = mk();
    g.bench_function("naive_iteration", |b| {
        b.iter(|| naive_iteration(&mut db, &cfg).unwrap())
    });
    let mut db2 = mk();
    g.bench_function("join_iteration", |b| {
        b.iter(|| join_iteration(&mut db2, &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
