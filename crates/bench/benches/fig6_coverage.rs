//! Bench for Figure 6: the full reference+test coverage experiment at
//! tiny scale. Regenerate the figure with
//! `cargo run -p focus-eval --bin fig6 --release -- full`.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_eval::common::Scale;
use focus_eval::fig6_coverage;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_coverage");
    g.sample_size(10);
    g.bench_function("reference_plus_test_crawl", |b| {
        b.iter(|| fig6_coverage::run(Scale::Tiny))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
