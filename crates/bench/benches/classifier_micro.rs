//! Classifier hot-path microbenchmark: documents/second for the
//! reference `TrainedModel` path (hash probes + per-node allocations)
//! versus the compiled CSR engine (`CompiledModel` + per-worker
//! `Scratch`, zero allocations per document) on the Figure 8(a)
//! workload — real generated pages evaluated end to end (path-node
//! posteriors, soft relevance, best-first descent).
//!
//! Wall-clock numbers are the **median of [`REPS`] runs** per variant,
//! with reps interleaved across variants (rep 0 of each, then rep 1, …)
//! exactly like `frontier_throughput`: machine drift between
//! measurement blocks otherwise fabricates cross-variant regressions.
//!
//! Appends one trajectory point to `BENCH_classifier.json` at the repo
//! root. The PR acceptance bar is compiled ≥ 3× reference docs/sec.
//!
//! Run with `cargo bench --bench classifier_micro`.

use focus_eval::common::{Scale, World};
use focus_types::Document;
use serde::Serialize;
use std::time::Instant;

/// Timed repetitions per variant (median reported, interleaved).
const REPS: usize = 5;
/// Evaluation sweeps per rep, so one rep is long enough (tens of ms)
/// that timer resolution and scheduler jitter stay in the noise.
const SWEEPS: usize = 20;

#[derive(Debug, Serialize)]
struct BenchPoint {
    bench: &'static str,
    unix_time: u64,
    docs: usize,
    reps: usize,
    sweeps: usize,
    /// Mean distinct terms per document (workload shape, for trend
    /// comparability across PRs).
    mean_terms_per_doc: f64,
    reference_docs_per_sec: f64,
    compiled_docs_per_sec: f64,
    /// compiled ÷ reference; the PR acceptance bar is ≥ 3.0.
    speedup: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Append `point` to the JSON array in BENCH_classifier.json (created
/// on first run). The vendored serde_json only serializes, so appending
/// is done textually, mirroring `frontier_throughput`.
fn append_point(point: &BenchPoint) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_classifier.json");
    let rendered = serde_json::to_string_pretty(point).expect("serialize");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => format!("[\n{rendered}\n]"),
                Some(head) => format!("{},\n{rendered}\n]", head.trim_end()),
                None => format!("[\n{rendered}\n]"),
            }
        }
        Err(_) => format!("[\n{rendered}\n]"),
    };
    std::fs::write(path, body + "\n").expect("write BENCH_classifier.json");
    println!("wrote trajectory point to {path}");
}

fn main() {
    // The Fig 8(a) workload: generated pages with non-empty content,
    // same world seed as the figure.
    let world = World::cycling(Scale::Tiny, 11);
    let docs: Vec<Document> = world
        .graph
        .pages()
        .iter()
        .filter(|p| !p.terms.is_empty())
        .enumerate()
        .map(|(i, p)| Document::new(focus_types::DocId(i as u64), p.terms.clone()))
        .collect();
    let mean_terms =
        docs.iter().map(|d| d.terms.num_terms()).sum::<usize>() as f64 / docs.len() as f64;
    println!(
        "--- classifier hot path: {} docs ({:.0} distinct terms each), {} sweeps/rep, median of {} ---",
        docs.len(),
        mean_terms,
        SWEEPS,
        REPS
    );

    let compiled = &world.compiled;
    let mut scratch = compiled.scratch();
    // Sanity + warm-up: both paths agree before we time anything.
    for d in &docs {
        let want = world.model.evaluate(&d.terms);
        let got = compiled.evaluate_into(&d.terms, &mut scratch);
        assert_eq!(want.best_leaf, got.best_leaf);
        assert!((want.relevance - got.relevance).abs() < 1e-9);
    }

    let evals_per_rep = (docs.len() * SWEEPS) as f64;
    let mut ref_rates = Vec::with_capacity(REPS);
    let mut comp_rates = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        // Reference path: fresh maps and vectors per node per document.
        let t = Instant::now();
        for _ in 0..SWEEPS {
            for d in &docs {
                std::hint::black_box(world.model.evaluate(&d.terms));
            }
        }
        ref_rates.push(evals_per_rep / t.elapsed().as_secs_f64());

        // Compiled path: CSR merge join into the warm scratch.
        let t = Instant::now();
        for _ in 0..SWEEPS {
            for d in &docs {
                std::hint::black_box(compiled.evaluate_into(&d.terms, &mut scratch));
            }
        }
        comp_rates.push(evals_per_rep / t.elapsed().as_secs_f64());
    }

    let reference = median(ref_rates);
    let compiled_rate = median(comp_rates);
    let speedup = compiled_rate / reference;
    println!("reference (TrainedModel::evaluate): {reference:>12.0} docs/sec");
    println!("compiled  (CompiledModel, scratch): {compiled_rate:>12.0} docs/sec");
    println!(
        "speedup:                            {speedup:>12.2}x  ({})",
        if speedup >= 3.0 {
            "PASS: >= 3x"
        } else {
            "FAIL: < 3x"
        }
    );

    let point = BenchPoint {
        bench: "classifier",
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        docs: docs.len(),
        reps: REPS,
        sweeps: SWEEPS,
        mean_terms_per_doc: mean_terms,
        reference_docs_per_sec: reference,
        compiled_docs_per_sec: compiled_rate,
        speedup,
    };
    append_point(&point);
}
