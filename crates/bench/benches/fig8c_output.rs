//! Bench for Figure 8(c): BulkProbe cost vs output size (children x docs).
//! Regenerate the scatter with
//! `cargo run -p focus-eval --bin fig8c --release -- full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_classifier::bulk_probe::bulk_posterior;
use focus_classifier::ClassifierTables;
use focus_eval::common::{Scale, World};
use focus_types::{ClassId, DocId, Document};
use minirel::Database;

fn bench(c: &mut Criterion) {
    let world = World::cycling(Scale::Tiny, 23);
    let mut g = c.benchmark_group("fig8c_output");
    g.sample_size(10);
    for n_docs in [20usize, 80, 160] {
        let mut db = Database::in_memory_with_frames(256);
        let tables = ClassifierTables::create_and_load(&mut db, &world.model).unwrap();
        let batch: Vec<Document> = world
            .graph
            .pages()
            .iter()
            .filter(|p| !p.terms.is_empty())
            .take(n_docs)
            .enumerate()
            .map(|(i, p)| Document::new(DocId(i as u64), p.terms.clone()))
            .collect();
        tables.load_documents(&mut db, &batch).unwrap();
        let kids = world.taxonomy.children(ClassId::ROOT).len();
        g.throughput(Throughput::Elements((kids * batch.len()) as u64));
        g.bench_with_input(BenchmarkId::new("bulk_probe", n_docs), &n_docs, |b, _| {
            b.iter(|| bulk_posterior(&mut db, &tables, ClassId::ROOT).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
