//! Durability overhead benchmark: end-to-end crawl throughput with the
//! session store's write-ahead log off versus on — in memory at the
//! default group-commit quota, file-backed at the default quota, and
//! file-backed with a forced fsync per batch commit — plus the
//! replication scenario: a WAL-shipping read replica tailing the leader
//! while monitor threads hammer the *replica* with §3.7 queries.
//!
//! Acceptance bars:
//! * WAL on (default group commit) keeps ≥ 0.90× the WAL-off
//!   throughput (≤ 10% overhead);
//! * the leader with a replica serving monitors keeps ≥ 0.95× its solo
//!   throughput (monitors on a follower cost the crawl nothing but the
//!   log-shipping itself).
//!
//! Wall-clock numbers are the median of [`REPS`] runs, reps interleaved
//! across configurations (same discipline as `frontier_throughput`).
//! Appends one trajectory point to `BENCH_frontier.json`.
//!
//! Run with `cargo bench --bench wal_overhead`.

use focus_crawler::session::{CrawlConfig, CrawlSession, Durability};
use focus_crawler::{monitor, CrawlPolicy};
use focus_eval::common::{Scale, World};
use minirel::DEFAULT_GROUP_COMMIT;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fetch budget per timed crawl.
const CRAWL_BUDGET: u64 = 2000;
/// Simulated network latency per fetch (the paper's latency-bound
/// regime; see `frontier_throughput` for the rationale).
const FETCH_LATENCY_US: u64 = 500;
/// Workers per crawl.
const WORKERS: usize = 4;
/// Claim-batch size (also the WAL commit cadence).
const BATCH: usize = 8;
/// Timed repetitions per configuration (median reported).
const REPS: usize = 5;
/// Monitor threads querying the replica in the replication scenario.
/// Each tick runs the §3.7 *dashboard* queries — harvest-per-minute
/// (the live applet), the class census, and frontier health; the
/// heavier one-off sociology joins are exercised for correctness by
/// the `durability` integration test, not polled here. The replica
/// shares no lock with the leader, so the only coupling left is
/// log-shipping plus the monitors' CPU share — pacing keeps that share
/// to a couple percent of a core so the ≥ 0.95 bar measures shipping
/// rather than core starvation on small boxes.
const MONITORS: usize = 2;
/// Poll interval per monitor thread (aggregate ~4 dashboard
/// refreshes/sec — brisker than any human-watched applet).
const MONITOR_POLL_MS: u64 = 500;

#[derive(Debug, Serialize)]
struct WalPoint {
    bench: &'static str,
    unix_time: u64,
    budget: u64,
    workers: usize,
    batch_size: usize,
    group_commit: usize,
    /// No WAL: the in-memory baseline every other series is read against.
    wal_off_pages_per_sec: f64,
    /// In-memory WAL, default group commit.
    wal_mem_pages_per_sec: f64,
    /// File-backed data + WAL, default group commit.
    wal_file_pages_per_sec: f64,
    /// File-backed, fsync on every batch commit (group_commit = 1).
    wal_file_sync_every_pages_per_sec: f64,
    /// wal_mem ÷ wal_off; the acceptance bar is ≥ 0.90.
    wal_overhead_ratio: f64,
    /// Leader throughput with a replica + monitor threads attached,
    /// in-memory WAL.
    replicated_pages_per_sec: f64,
    /// replicated ÷ wal_mem; the acceptance bar is ≥ 0.95.
    replica_ratio: f64,
    /// Monitor queries the replica served during the replicated crawls
    /// (max over reps).
    replica_queries: u64,
}

fn bench_db_path(rep: usize) -> PathBuf {
    std::env::temp_dir().join(format!("wal-overhead-{}-{rep}.db", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(minirel::wal_path_for(path));
}

fn make_session(world: &World, durability: Durability) -> Arc<CrawlSession> {
    let fetcher = Arc::new(focus_webgraph::SimFetcher::new(
        Arc::clone(&world.graph),
        Some(std::time::Duration::from_micros(FETCH_LATENCY_US)),
    ));
    let session = Arc::new(
        CrawlSession::new(
            fetcher,
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::Unfocused,
                threads: WORKERS,
                max_fetches: CRAWL_BUDGET,
                distill_every: None,
                batch_size: BATCH,
                durability,
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(10)).expect("seed");
    session
}

/// One timed crawl; returns pages/sec.
fn one_crawl(world: &World, durability: Durability) -> f64 {
    let session = make_session(world, durability);
    let t = Instant::now();
    let stats = session.run().expect("crawl");
    stats.attempts as f64 / t.elapsed().as_secs_f64()
}

/// One timed crawl with a replica spawned before the run and
/// [`MONITORS`] threads querying the *replica* throughout; returns
/// `(pages/sec, monitor queries served)`.
fn one_replicated_crawl(world: &World) -> (f64, u64) {
    let session = make_session(
        world,
        Durability::Wal {
            group_commit: DEFAULT_GROUP_COMMIT,
        },
    );
    let replica = Arc::new(session.replica().expect("replica"));
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let mut monitors = Vec::new();
    for _ in 0..MONITORS {
        let replica = Arc::clone(&replica);
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        monitors.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                replica.with_db(|db| {
                    std::hint::black_box(monitor::harvest_per_minute(db).expect("monitor"));
                    std::hint::black_box(monitor::census_by_class(db).expect("monitor"));
                    std::hint::black_box(monitor::frontier_by_numtries(db).expect("monitor"));
                });
                served.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(MONITOR_POLL_MS));
            }
        }));
    }
    let t = Instant::now();
    let stats = session.run().expect("crawl");
    let secs = t.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    for m in monitors {
        m.join().expect("monitor thread");
    }
    (stats.attempts as f64 / secs, served.load(Ordering::Relaxed))
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Append `point` to the JSON array in BENCH_frontier.json (created on
/// first run). The vendored serde_json only serializes, so appending is
/// done textually.
fn append_point(point: &WalPoint) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    let rendered = serde_json::to_string_pretty(point).expect("serialize");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => format!("[\n{rendered}\n]"),
                Some(head) => format!("{},\n{rendered}\n]", head.trim_end()),
                None => format!("[\n{rendered}\n]"),
            }
        }
        Err(_) => format!("[\n{rendered}\n]"),
    };
    std::fs::write(path, body + "\n").expect("write BENCH_frontier.json");
    println!("wrote trajectory point to {path}");
}

fn main() {
    let world = World::cycling(Scale::Tiny, 23);
    println!(
        "--- WAL overhead: {CRAWL_BUDGET}-fetch crawls, {WORKERS} workers, \
         batch {BATCH}, median of {REPS} ---"
    );
    let mut off = Vec::with_capacity(REPS);
    let mut mem = Vec::with_capacity(REPS);
    let mut file = Vec::with_capacity(REPS);
    let mut file_sync = Vec::with_capacity(REPS);
    let mut replicated = Vec::with_capacity(REPS);
    let mut replica_queries = 0u64;
    for rep in 0..REPS {
        off.push(one_crawl(&world, Durability::None));
        mem.push(one_crawl(
            &world,
            Durability::Wal {
                group_commit: DEFAULT_GROUP_COMMIT,
            },
        ));
        let path = bench_db_path(rep);
        cleanup(&path);
        file.push(one_crawl(
            &world,
            Durability::File {
                path: path.clone(),
                group_commit: DEFAULT_GROUP_COMMIT,
            },
        ));
        cleanup(&path);
        file_sync.push(one_crawl(
            &world,
            Durability::File {
                path: path.clone(),
                group_commit: 1,
            },
        ));
        cleanup(&path);
        let (pps, q) = one_replicated_crawl(&world);
        replicated.push(pps);
        replica_queries = replica_queries.max(q);
    }
    let wal_off = median(off);
    let wal_mem = median(mem);
    let wal_file = median(file);
    let wal_file_sync = median(file_sync);
    let repl = median(replicated);
    let overhead_ratio = wal_mem / wal_off;
    let replica_ratio = repl / wal_mem;

    println!("wal off:               {wal_off:>9.0} pages/sec");
    println!(
        "wal mem  (group {DEFAULT_GROUP_COMMIT}):    {wal_mem:>9.0} pages/sec  ratio {:.3} ({})",
        overhead_ratio,
        if overhead_ratio >= 0.90 {
            "PASS: <= 10% overhead"
        } else {
            "FAIL: > 10% overhead"
        }
    );
    println!("wal file (group {DEFAULT_GROUP_COMMIT}):    {wal_file:>9.0} pages/sec");
    println!("wal file (sync every): {wal_file_sync:>9.0} pages/sec");
    println!(
        "replicated + monitors: {repl:>9.0} pages/sec  ratio {:.3} ({}) | {} replica queries",
        replica_ratio,
        if replica_ratio >= 0.95 {
            "PASS: >= 0.95x solo"
        } else {
            "FAIL: < 0.95x solo"
        },
        replica_queries
    );

    append_point(&WalPoint {
        bench: "wal_overhead",
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        budget: CRAWL_BUDGET,
        workers: WORKERS,
        batch_size: BATCH,
        group_commit: DEFAULT_GROUP_COMMIT,
        wal_off_pages_per_sec: wal_off,
        wal_mem_pages_per_sec: wal_mem,
        wal_file_pages_per_sec: wal_file,
        wal_file_sync_every_pages_per_sec: wal_file_sync,
        wal_overhead_ratio: overhead_ratio,
        replicated_pages_per_sec: repl,
        replica_ratio,
        replica_queries,
    });
}
