//! Micro-benchmarks of the relational substrate: B+tree probes, external
//! sort, and merge vs hash join — the primitives whose relative costs
//! drive every Figure 8 result.

use criterion::{criterion_group, criterion_main, Criterion};
use minirel::btree::BTree;
use minirel::buffer::{BufferPool, EvictionPolicy};
use minirel::disk::DiskManager;
use minirel::exec::{external_sort, hash_join, merge_join_inner, sort_rows, SortKey};
use minirel::value::{encode_composite_key, Row, Value};

fn pool(frames: usize) -> BufferPool {
    BufferPool::new(DiskManager::in_memory(), frames, EvictionPolicy::Lru)
}

fn btree_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("minirel_btree");
    g.sample_size(20);
    let bp = pool(256);
    let mut bt = BTree::create(&bp).unwrap();
    for i in 0..20_000i64 {
        let k = encode_composite_key(&[Value::Int((i * 7919) % 100_000)]);
        bt.insert(
            &bp,
            &k,
            minirel::Rid {
                page: i as u32,
                slot: 0,
            },
        )
        .unwrap();
    }
    g.bench_function("probe_hot", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            let k = encode_composite_key(&[Value::Int(i)]);
            bt.lookup(&bp, &k).unwrap()
        })
    });
    let cold = pool(4);
    let mut bt_cold = BTree::create(&cold).unwrap();
    for i in 0..20_000i64 {
        let k = encode_composite_key(&[Value::Int((i * 104729) % 1_000_000)]);
        bt_cold
            .insert(
                &cold,
                &k,
                minirel::Rid {
                    page: i as u32,
                    slot: 0,
                },
            )
            .unwrap();
    }
    g.bench_function("probe_cold_4_frames", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 104729) % 1_000_000;
            let k = encode_composite_key(&[Value::Int(i)]);
            bt_cold.lookup(&cold, &k).unwrap()
        })
    });
    g.finish();
}

fn sort_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("minirel_sort");
    g.sample_size(10);
    let rows: Vec<Row> = (0..20_000i64)
        .map(|i| vec![Value::Int((i * 7919) % 100_000), Value::Float(i as f64)])
        .collect();
    g.bench_function("in_memory_20k", |b| {
        b.iter(|| sort_rows(rows.clone(), &[SortKey::asc(0)]).unwrap())
    });
    g.bench_function("external_spilling_20k", |b| {
        let bp = pool(64);
        b.iter(|| external_sort(&bp, rows.clone(), &[SortKey::asc(0)], 1000).unwrap())
    });
    g.finish();
}

fn join_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("minirel_join");
    g.sample_size(10);
    let left: Vec<Row> = (0..10_000i64)
        .map(|i| vec![Value::Int(i % 2000), Value::Int(i)])
        .collect();
    let right: Vec<Row> = (0..5_000i64)
        .map(|i| vec![Value::Int(i % 2000), Value::Float(0.5)])
        .collect();
    let ls = sort_rows(left.clone(), &[SortKey::asc(0)]).unwrap();
    let rs = sort_rows(right.clone(), &[SortKey::asc(0)]).unwrap();
    g.bench_function("merge_join_presorted", |b| {
        b.iter(|| merge_join_inner(&ls, &rs, &[0], &[0]).unwrap())
    });
    g.bench_function("hash_join", |b| {
        b.iter(|| hash_join(&left, &right, &[0], &[0], false).unwrap())
    });
    g.finish();
}

criterion_group!(benches, btree_bench, sort_bench, join_bench);
criterion_main!(benches);
