//! Bench for Figure 7: crawl + final distillation + BFS distances.
//! Regenerate with `cargo run -p focus-eval --bin fig7 --release -- full`.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_eval::common::Scale;
use focus_eval::fig7_distance;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_distance");
    g.sample_size(10);
    g.bench_function("crawl_distill_bfs", |b| {
        b.iter(|| fig7_distance::run(Scale::Tiny))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
