//! Bench for Figure 8(b): classifier paths under different buffer-pool
//! sizes. Regenerate the sweep with
//! `cargo run -p focus-eval --bin fig8b --release -- full`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_classifier::bulk_probe::bulk_posterior;
use focus_classifier::single_probe::SingleProbeBlob;
use focus_eval::common::Scale;
use focus_eval::fig8a_classifier::setup;
use focus_types::ClassId;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8b_memory");
    g.sample_size(10);
    for frames in [16usize, 64, 256] {
        let (mut db, tables, batch) = setup(Scale::Tiny, frames);
        g.bench_with_input(BenchmarkId::new("single_probe", frames), &frames, |b, _| {
            b.iter(|| {
                let sp = SingleProbeBlob { tables: &tables };
                for d in batch.iter().take(10) {
                    sp.posterior(&mut db, ClassId::ROOT, &d.terms).unwrap();
                }
            })
        });
        let (mut db2, tables2, _) = setup(Scale::Tiny, frames);
        g.bench_with_input(BenchmarkId::new("bulk_probe", frames), &frames, |b, _| {
            b.iter(|| bulk_posterior(&mut db2, &tables2, ClassId::ROOT).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
