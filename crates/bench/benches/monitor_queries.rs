//! §3.7 monitor-query suite: staged planner (bind → plan → lower →
//! execute, prepared + parameterized) versus the reference interpreter
//! running the same queries with literals formatted into the text — the
//! pre-planner idiom. Measures logical page reads ([`minirel::IoStats`])
//! and queries/sec on the leader, plus queries/sec and reads on a
//! WAL-shipping read replica serving the same suite.
//!
//! The suite is one dashboard refresh plus drill-down: the six §3.7
//! monitor queries (harvest-per-minute, class census, missed hub
//! neighbours, frontier health, community evolution, cross-topic
//! citations) followed by [`DRILLDOWNS`] per-hub outlink lookups
//! (`select oid_dst from link where oid_src = ?`) — the hub-revisit
//! query the crawler itself issues. The lookups are where the planner's
//! B+tree probes pay off; the sociology joins scan either way.
//!
//! Acceptance bar (ISSUE 7): the planner runs the suite with ≥ 2×
//! fewer logical reads than the interpreter baseline.
//!
//! Wall-clock numbers are the median of [`REPS`] runs, reps interleaved
//! across configurations (same discipline as `wal_overhead`). Appends
//! one trajectory point to `BENCH_sql.json`.
//!
//! Run with `cargo bench --bench monitor_queries`.

use focus_crawler::{monitor, tables};
use minirel::sql::reference::{run_select, SqlCtx};
use minirel::sql::{parse_statement, Statement};
use minirel::{Database, Replica, Value, DEFAULT_GROUP_COMMIT};
use serde::Serialize;
use std::time::Instant;

/// Visited pages in `crawl`.
const CRAWL_VISITED: i64 = 4000;
/// Frontier (unvisited) rows in `crawl`.
const CRAWL_FRONTIER: i64 = 1000;
/// Rows in `link`.
const LINKS: i64 = 24_000;
/// Rows in `hubs`.
const HUBS: i64 = 40;
/// Hub-score threshold for `missed_hub_neighbors` (ψ).
const PSI: f64 = 0.8;
/// Per-hub outlink lookups per suite run.
const DRILLDOWNS: i64 = 20;
/// Timed repetitions per configuration (median reported).
const REPS: usize = 5;

#[derive(Debug, Serialize)]
struct SqlPoint {
    bench: &'static str,
    unix_time: u64,
    crawl_rows: i64,
    link_rows: i64,
    suite_queries: usize,
    /// Reference interpreter, literals formatted into the SQL text.
    interp_logical_reads: u64,
    /// Staged planner via prepared + parameterized statements.
    planner_logical_reads: u64,
    /// interp ÷ planner; the acceptance bar is ≥ 2.0.
    logical_reads_ratio: f64,
    interp_queries_per_sec: f64,
    planner_queries_per_sec: f64,
    /// Planner suite served by the WAL-shipping read replica.
    replica_queries_per_sec: f64,
    replica_logical_reads: u64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
}

/// Leader database with the crawler schema populated mid-crawl: visited
/// pages in two topic classes, a frontier, a link graph with ~20
/// outlinks per source, and a `hubs` score table.
fn build_leader() -> Database {
    let mut db = Database::in_memory_durable(8192, DEFAULT_GROUP_COMMIT);
    tables::create_tables(&mut db).expect("tables");
    let mut taxonomy = focus_types::Taxonomy::new("root");
    taxonomy.add_path("business/investing").expect("taxonomy");
    taxonomy
        .add_path("business/investing/mutual-funds")
        .expect("taxonomy");
    tables::create_taxonomy_dim(&mut db, &taxonomy).expect("taxonomy dim");
    db.execute("create table hubs (oid int, score float)")
        .expect("hubs");

    let crawl = db.table_id("crawl").expect("crawl id");
    for i in 0..CRAWL_VISITED {
        db.insert(
            crawl,
            vec![
                Value::Int(i),
                Value::Str(format!("http://s{}/p{i}", i % 97)),
                Value::Int(2 + i % 2),
                Value::Int(0),
                Value::Float(-0.5),
                Value::Float(0.5),
                Value::Int(0),
                Value::Int(i % 600),
                Value::Int(1),
            ],
        )
        .expect("insert crawl");
    }
    for j in 0..CRAWL_FRONTIER {
        db.insert(
            crawl,
            vec![
                Value::Int(10_000 + j),
                Value::Str(format!("http://s{}/f{j}", j % 97)),
                Value::Int(-1),
                Value::Int(j % 3),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
            ],
        )
        .expect("insert frontier");
    }
    let link = db.table_id("link").expect("link id");
    for i in 0..LINKS {
        // 1200 distinct sources, ~20 outlinks each; every fifth link
        // points into the frontier (what missed_hub_neighbors surfaces).
        let dst = if i % 5 == 0 {
            10_000 + i % CRAWL_FRONTIER
        } else {
            i % CRAWL_VISITED
        };
        db.insert(
            link,
            vec![
                Value::Int(i % 1200),
                Value::Int(1),
                Value::Int(dst),
                Value::Int(2),
                Value::Int(i % 1000),
            ],
        )
        .expect("insert link");
    }
    let hubs = db.table_id("hubs").expect("hubs id");
    for h in 0..HUBS {
        db.insert(
            hubs,
            vec![Value::Int(h * 30), Value::Float(0.5 + h as f64 * 0.01)],
        )
        .expect("insert hub");
    }
    db.set_current_timestamp(650);
    db
}

/// The suite's SQL with literals formatted in — exactly the shape the
/// monitor module used before the planner grew parameters.
fn interp_suite_sql() -> Vec<String> {
    let mut sqls = vec![
        "select minute(lastvisited), avg(exp(relevance)) from crawl \
         where lastvisited + 1 hour > current timestamp and visited = 1 \
         group by minute(lastvisited) order by minute(lastvisited)"
            .to_owned(),
        "with census(kcid, cnt) as \
           (select kcid, count(oid) from crawl where visited = 1 group by kcid) \
         select census.kcid, cnt, name from census, taxonomy \
         where census.kcid = taxonomy.kcid order by cnt"
            .to_owned(),
        format!(
            "select url, relevance from crawl where oid in \
               (select oid_dst from link \
                where oid_src in (select oid from hubs where score > {PSI}) \
                  and sid_src <> sid_dst) \
             and numtries = 0 and visited = 0"
        ),
        "select numtries, count(*) from crawl where visited = 0 \
         group by numtries order by numtries"
            .to_owned(),
        "select count(*) from link, crawl c1, crawl c2 \
         where oid_src = c1.oid and oid_dst = c2.oid \
           and c1.kcid = 2 and c2.kcid = 3 and discovered >= 0"
            .to_owned(),
        "with citers(oid_dst, cnt) as \
           (select oid_dst, count(*) from link, crawl \
            where oid_src = crawl.oid and kcid = 2 group by oid_dst) \
         select url, cnt from crawl, citers \
         where crawl.oid = citers.oid_dst and kcid = 3 and cnt >= 2 \
         order by cnt desc"
            .to_owned(),
    ];
    for h in 0..DRILLDOWNS {
        sqls.push(format!(
            "select oid_dst from link where oid_src = {}",
            h * 30
        ));
    }
    sqls
}

/// Run one SELECT through the reference interpreter; returns row count.
fn interp_run(db: &Database, sql: &str) -> usize {
    let stmt = parse_statement(sql).expect("parse");
    let Statement::Select(q) = &stmt else {
        panic!("suite entry is not a SELECT: {sql}");
    };
    let (pool, catalog) = db.parts();
    let mut ctx = SqlCtx::new(pool, catalog, db.current_timestamp(), db.sort_budget_rows());
    run_select(&mut ctx, q).expect("interpret").rows.len()
}

/// One full suite through the interpreter; returns rows touched (sanity).
fn interp_suite(db: &Database, sqls: &[String]) -> usize {
    sqls.iter().map(|sql| interp_run(db, sql)).sum()
}

/// One full suite through the planner (monitor module + prepared
/// drill-downs); returns rows touched (sanity).
fn planner_suite(db: &Database) -> usize {
    let mut rows = 0usize;
    rows += monitor::harvest_per_minute(db).expect("harvest").rows.len();
    rows += monitor::census_by_class(db).expect("census").rows.len();
    rows += monitor::missed_hub_neighbors(db, PSI)
        .expect("missed hubs")
        .rows
        .len();
    rows += monitor::frontier_by_numtries(db)
        .expect("frontier")
        .rows
        .len();
    // Scalar result: one row, like the interpreter run counts it.
    std::hint::black_box(monitor::community_evolution(db, 2, 3, 0).expect("community"));
    rows += 1;
    rows += monitor::cross_topic_citations(db, 3, 2, 2)
        .expect("citations")
        .rows
        .len();
    let lookup = db
        .prepare("select oid_dst from link where oid_src = ?")
        .expect("prepare drill-down");
    for h in 0..DRILLDOWNS {
        rows += db
            .query_prepared(&lookup, &[Value::Int(h * 30)])
            .expect("drill-down")
            .rows
            .len();
    }
    rows
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Append `point` to the JSON array in BENCH_sql.json (created on first
/// run). The vendored serde_json only serializes, so appending is done
/// textually.
fn append_point(point: &SqlPoint) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sql.json");
    let rendered = serde_json::to_string_pretty(point).expect("serialize");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => format!("[\n{rendered}\n]"),
                Some(head) => format!("{},\n{rendered}\n]", head.trim_end()),
                None => format!("[\n{rendered}\n]"),
            }
        }
        Err(_) => format!("[\n{rendered}\n]"),
    };
    std::fs::write(path, body + "\n").expect("write BENCH_sql.json");
    println!("wrote trajectory point to {path}");
}

fn main() {
    let mut db = build_leader();
    let sqls = interp_suite_sql();
    let suite_queries = sqls.len();
    // The replica inherits the leader's current timestamp via the
    // committed-state snapshot.
    let replica = Replica::spawn(&mut db).expect("replica");

    // Both engines must agree on every suite query before anything is
    // timed — the bench doubles as a release-mode equivalence check.
    let interp_rows = interp_suite(&db, &sqls);
    let planner_rows = planner_suite(&db);
    assert_eq!(
        interp_rows, planner_rows,
        "planner and interpreter disagree on the monitor suite"
    );

    // Logical reads: one deterministic suite pass per engine.
    db.reset_io_stats();
    interp_suite(&db, &sqls);
    let interp_reads = db.io_stats().logical_reads;
    db.reset_io_stats();
    planner_suite(&db);
    let planner_reads = db.io_stats().logical_reads;
    let replica_reads = replica.with_db(|r| {
        r.reset_io_stats();
        planner_suite(r);
        r.io_stats().logical_reads
    });

    println!(
        "--- monitor suite: {suite_queries} queries over {CRAWL_VISITED}+{CRAWL_FRONTIER} crawl \
         rows, {LINKS} links; median of {REPS} ---"
    );
    let mut interp_secs = Vec::with_capacity(REPS);
    let mut planner_secs = Vec::with_capacity(REPS);
    let mut replica_secs = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(interp_suite(&db, &sqls));
        interp_secs.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(planner_suite(&db));
        planner_secs.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(replica.with_db(planner_suite));
        replica_secs.push(t.elapsed().as_secs_f64());
    }
    let interp_qps = suite_queries as f64 / median(interp_secs);
    let planner_qps = suite_queries as f64 / median(planner_secs);
    let replica_qps = suite_queries as f64 / median(replica_secs);
    let reads_ratio = interp_reads as f64 / planner_reads.max(1) as f64;
    let (hits, misses) = db.plan_cache_stats();

    println!("interpreter: {interp_reads:>7} logical reads  {interp_qps:>9.0} queries/sec");
    println!(
        "planner:     {planner_reads:>7} logical reads  {planner_qps:>9.0} queries/sec  \
         reads ratio {reads_ratio:.2} ({})",
        if reads_ratio >= 2.0 {
            "PASS: >= 2x fewer reads"
        } else {
            "FAIL: < 2x fewer reads"
        }
    );
    println!("replica:     {replica_reads:>7} logical reads  {replica_qps:>9.0} queries/sec");
    println!("plan cache:  {hits} hits / {misses} misses");

    replica.stop();

    append_point(&SqlPoint {
        bench: "monitor_queries",
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        crawl_rows: CRAWL_VISITED + CRAWL_FRONTIER,
        link_rows: LINKS,
        suite_queries,
        interp_logical_reads: interp_reads,
        planner_logical_reads: planner_reads,
        logical_reads_ratio: reads_ratio,
        interp_queries_per_sec: interp_qps,
        planner_queries_per_sec: planner_qps,
        replica_queries_per_sec: replica_qps,
        replica_logical_reads: replica_reads,
        plan_cache_hits: hits,
        plan_cache_misses: misses,
    });
}
