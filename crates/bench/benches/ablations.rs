//! Ablations of the design choices DESIGN.md calls out:
//! relevance-weighted vs plain HITS edges, nepotism filter on/off,
//! LRU vs Clock eviction, and crawl policy throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_crawler::CrawlPolicy;
use focus_distiller::memory::WeightedHits;
use focus_distiller::DistillConfig;
use focus_eval::common::{Scale, World};
use focus_eval::fig5_harvest::run_crawl;
use focus_eval::fig8d_distiller::build_graph;
use minirel::buffer::{BufferPool, EvictionPolicy};
use minirel::disk::DiskManager;

fn distiller_ablations(c: &mut Criterion) {
    let (edges, relevance) = build_graph(Scale::Tiny);
    let mut g = c.benchmark_group("ablation_distiller");
    g.sample_size(10);
    for (name, weighted, nepotism) in [
        ("weighted+nepotism", true, true),
        ("unweighted", false, true),
        ("no_nepotism", true, false),
    ] {
        let cfg = DistillConfig {
            iterations: 5,
            weighted_edges: weighted,
            nepotism_filter: nepotism,
            ..DistillConfig::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| WeightedHits::new(&edges, &relevance, cfg.clone()).run())
        });
    }
    g.finish();
}

fn buffer_policy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_buffer_policy");
    g.sample_size(10);
    for (name, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("clock", EvictionPolicy::Clock),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let bp = BufferPool::new(DiskManager::in_memory(), 8, policy);
                let pages: Vec<u32> = (0..64).map(|_| bp.allocate().unwrap()).collect();
                // Skewed access: 80% hits on 20% of pages.
                for i in 0..2000usize {
                    let p = if i % 5 == 0 {
                        pages[i % 64]
                    } else {
                        pages[i % 12]
                    };
                    bp.with_page(p, |b| b[0]).unwrap();
                }
                bp.stats().physical_reads
            })
        });
    }
    g.finish();
}

fn policy_ablation(c: &mut Criterion) {
    let world = World::cycling(Scale::Tiny, 42);
    let mut g = c.benchmark_group("ablation_crawl_policy");
    g.sample_size(10);
    for (name, policy) in [
        ("soft", CrawlPolicy::SoftFocus),
        ("hard", CrawlPolicy::HardFocus),
    ] {
        g.bench_function(name, |b| b.iter(|| run_crawl(&world, policy, 100)));
    }
    g.finish();
}

criterion_group!(
    benches,
    distiller_ablations,
    buffer_policy_ablation,
    policy_ablation
);
criterion_main!(benches);
