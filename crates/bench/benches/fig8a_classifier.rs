//! Bench for Figure 8(a): the three classifier paths on one prepared
//! database. The paper's result: bulk ("CLI") is ~10x the row-store
//! ("SQL") path. Regenerate the table with
//! `cargo run -p focus-eval --bin fig8a --release -- full`.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_classifier::bulk_probe::bulk_posterior;
use focus_classifier::single_probe::{SingleProbeBlob, SingleProbeSql};
use focus_eval::common::Scale;
use focus_eval::fig8a_classifier::setup;
use focus_types::ClassId;

fn bench(c: &mut Criterion) {
    let (mut db, tables, batch) = setup(Scale::Tiny, 64);
    let mut g = c.benchmark_group("fig8a_classifier");
    g.sample_size(10);
    g.bench_function("single_probe_sql_batch", |b| {
        b.iter(|| {
            let sp = SingleProbeSql { tables: &tables };
            for d in &batch {
                sp.posterior(&mut db, ClassId::ROOT, &d.terms).unwrap();
            }
        })
    });
    g.bench_function("single_probe_blob_batch", |b| {
        b.iter(|| {
            let sp = SingleProbeBlob { tables: &tables };
            for d in &batch {
                sp.posterior(&mut db, ClassId::ROOT, &d.terms).unwrap();
            }
        })
    });
    g.bench_function("bulk_probe_batch", |b| {
        b.iter(|| bulk_posterior(&mut db, &tables, ClassId::ROOT).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
