//! Frontier hot-path benchmark: B+tree descents — counted as buffer-pool
//! logical reads, since every index node visit is one page request —
//! per crawled page for the per-link path versus the batched path, plus
//! end-to-end crawl throughput (pages/sec) at 1/2/4/8 workers.
//!
//! Appends one trajectory point to `BENCH_frontier.json` at the repo
//! root so successive PRs can chart the hot path's cost over time.
//!
//! Run with `cargo bench --bench frontier_throughput`.

use focus_crawler::frontier::{self, FrontierEntry};
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::{tables, CrawlPolicy};
use focus_eval::common::{Scale, World};
use focus_types::Oid;
use minirel::{Database, Value};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Pages to crawl in the descent-count comparison.
const PAGES: usize = 400;
/// Synthetic outlinks per page.
const OUTLINKS: u64 = 12;
/// Claim-batch size for the batched path.
const BATCH: usize = 8;
/// Fetch budget for the throughput crawls.
const CRAWL_BUDGET: u64 = 800;
/// Simulated network latency per fetch in the throughput crawls.
const FETCH_LATENCY_US: u64 = 200;

#[derive(Debug, Serialize)]
struct ThroughputPoint {
    workers: usize,
    batch_size: usize,
    attempts: u64,
    pages_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct BenchPoint {
    bench: &'static str,
    unix_time: u64,
    pages: usize,
    outlinks_per_page: u64,
    reads_per_page_per_link: f64,
    reads_per_page_batched: f64,
    /// per-link ÷ batched; the PR acceptance bar is ≥ 2.0.
    descent_reduction: f64,
    throughput: Vec<ThroughputPoint>,
}

/// Deterministic synthetic outlink set for a page: a mix of fresh
/// targets and revisits of earlier ones, so both the create and the
/// raise paths of the upsert run.
fn synth_outlinks(page: u64) -> Vec<(Oid, String)> {
    (0..OUTLINKS)
        .map(|j| {
            let x = (page
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j.wrapping_mul(1442695040888963407)))
                >> 16;
            let oid = x % 5000 + 1;
            (
                Oid(oid),
                format!("http://s{:02}.example.org/p{}.html", oid % 24, oid),
            )
        })
        .collect()
}

fn seeded_db() -> Database {
    let mut db = Database::in_memory_with_frames(512);
    tables::create_tables(&mut db).expect("tables");
    for i in 0..64u64 {
        frontier::upsert_frontier(
            &mut db,
            Oid(1_000_000 + i),
            &format!("http://seed.example.org/{i}"),
            0.0,
            0,
        )
        .expect("seed");
    }
    db
}

fn link_row(src: Oid, dst: Oid) -> Vec<Value> {
    vec![
        Value::Int(src.raw() as i64),
        Value::Int((src.raw() % 24) as i64),
        Value::Int(dst.raw() as i64),
        Value::Int((dst.raw() % 24) as i64),
        Value::Int(1),
    ]
}

/// The pre-batching hot path: one claim, one mark_done, then one full
/// B+tree descent per LINK row and per outlink upsert.
fn run_per_link() -> f64 {
    let mut db = seeded_db();
    let link_tid = db.table_id("link").expect("link");
    db.reset_io_stats();
    let mut processed = 0usize;
    while processed < PAGES {
        let Some(claim) = frontier::claim_next(&mut db).expect("claim") else {
            break;
        };
        frontier::mark_done(&mut db, claim.oid, &claim.url, -0.3, 5, 1).expect("done");
        for (dst, dst_url) in synth_outlinks(claim.oid.raw()) {
            db.insert(link_tid, link_row(claim.oid, dst)).expect("link");
            frontier::upsert_frontier(&mut db, dst, &dst_url, -0.7, 0).expect("upsert");
        }
        processed += 1;
    }
    assert_eq!(processed, PAGES, "frontier ran dry early");
    db.io_stats().logical_reads as f64 / processed as f64
}

/// The batched hot path: claims checked out [`BATCH`] at a time, LINK
/// rows inserted with one sorted pass per index, outlinks upserted with
/// one ordered oid-index pass per page.
fn run_batched() -> f64 {
    let mut db = seeded_db();
    let link_tid = db.table_id("link").expect("link");
    db.reset_io_stats();
    let mut processed = 0usize;
    while processed < PAGES {
        let claims =
            frontier::claim_batch(&mut db, BATCH.min(PAGES - processed)).expect("claim batch");
        if claims.is_empty() {
            break;
        }
        for claim in claims {
            frontier::mark_done(&mut db, claim.oid, &claim.url, -0.3, 5, 1).expect("done");
            let outlinks = synth_outlinks(claim.oid.raw());
            let rows = outlinks
                .iter()
                .map(|(dst, _)| link_row(claim.oid, *dst))
                .collect();
            db.insert_many(link_tid, rows).expect("links");
            let entries: Vec<FrontierEntry> = outlinks
                .into_iter()
                .map(|(oid, url)| FrontierEntry {
                    oid,
                    url,
                    log_relevance: -0.7,
                    serverload: 0,
                })
                .collect();
            frontier::upsert_batch(&mut db, &entries).expect("upsert batch");
            processed += 1;
        }
    }
    assert_eq!(processed, PAGES, "frontier ran dry early");
    db.io_stats().logical_reads as f64 / processed as f64
}

/// One full crawl of the tiny synthetic web; returns pages/sec. Fetches
/// carry a small simulated network latency ([`FETCH_LATENCY_US`]): with
/// free fetches the crawl is pure CPU and worker count is noise; with a
/// per-fetch cost, scaling shows whether workers add throughput or just
/// lock contention.
fn crawl_throughput(world: &World, workers: usize, batch_size: usize) -> ThroughputPoint {
    let fetcher = Arc::new(focus_webgraph::SimFetcher::new(
        Arc::clone(&world.graph),
        Some(std::time::Duration::from_micros(FETCH_LATENCY_US)),
    ));
    let session = Arc::new(
        CrawlSession::new(
            fetcher,
            world.model.clone(),
            CrawlConfig {
                // Unfocused expansion keeps the frontier saturated for
                // the whole budget: this measures the storage hot path,
                // not topical exhaustion.
                policy: CrawlPolicy::Unfocused,
                threads: workers,
                max_fetches: CRAWL_BUDGET,
                distill_every: None,
                batch_size,
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(10)).expect("seed");
    let t = Instant::now();
    let stats = session.run().expect("crawl");
    let secs = t.elapsed().as_secs_f64();
    ThroughputPoint {
        workers,
        batch_size,
        attempts: stats.attempts,
        pages_per_sec: stats.attempts as f64 / secs,
    }
}

/// Append `point` to the JSON array in BENCH_frontier.json (created on
/// first run). The vendored serde_json only serializes, so appending is
/// done textually.
fn append_point(point: &BenchPoint) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    let rendered = serde_json::to_string_pretty(point).expect("serialize");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => format!("[\n{rendered}\n]"),
                Some(head) => format!("{},\n{rendered}\n]", head.trim_end()),
                None => format!("[\n{rendered}\n]"),
            }
        }
        Err(_) => format!("[\n{rendered}\n]"),
    };
    std::fs::write(path, body + "\n").expect("write BENCH_frontier.json");
    println!("wrote trajectory point to {path}");
}

fn main() {
    println!("--- frontier hot path: B+tree descents per crawled page ---");
    let per_link = run_per_link();
    let batched = run_batched();
    let reduction = per_link / batched;
    println!("per-link path: {per_link:8.1} logical reads/page");
    println!("batched path:  {batched:8.1} logical reads/page  (claim batch {BATCH})");
    println!(
        "reduction:     {reduction:8.2}x  ({})",
        if reduction >= 2.0 {
            "PASS: >= 2x"
        } else {
            "FAIL: < 2x"
        }
    );

    println!("--- crawl throughput, {CRAWL_BUDGET}-fetch budget, tiny web ---");
    let world = World::cycling(Scale::Tiny, 23);
    let mut throughput = Vec::new();
    // Unbatched single-worker baseline, then the batched ladder.
    for &(workers, batch) in &[
        (1, 1),
        (4, 1),
        (1, BATCH),
        (2, BATCH),
        (4, BATCH),
        (8, BATCH),
    ] {
        let p = crawl_throughput(&world, workers, batch);
        println!(
            "workers {:>2}  batch {:>2}: {:>9.0} pages/sec ({} attempts)",
            p.workers, p.batch_size, p.pages_per_sec, p.attempts
        );
        throughput.push(p);
    }
    let base = throughput
        .iter()
        .find(|p| p.workers == 1 && p.batch_size == 1)
        .map(|p| p.pages_per_sec)
        .unwrap_or(0.0);
    let four = throughput
        .iter()
        .find(|p| p.workers == 4 && p.batch_size == BATCH)
        .map(|p| p.pages_per_sec)
        .unwrap_or(0.0);
    println!(
        "4 workers batched vs 1 worker unbatched: {:.2}x ({})",
        four / base,
        if four >= base {
            "PASS: no worse"
        } else {
            "FAIL: regressed"
        }
    );

    let point = BenchPoint {
        bench: "frontier",
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        pages: PAGES,
        outlinks_per_page: OUTLINKS,
        reads_per_page_per_link: per_link,
        reads_per_page_batched: batched,
        descent_reduction: reduction,
        throughput,
    };
    append_point(&point);
}
