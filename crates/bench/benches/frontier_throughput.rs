//! Frontier hot-path benchmark: B+tree descents — counted as buffer-pool
//! logical reads, since every index node visit is one page request —
//! per crawled page for the per-link path versus the batched path, plus
//! end-to-end crawl throughput (pages/sec) at 1/2/4/8/16 workers, a
//! **read-concurrency** scenario (monitor threads hammering SQL
//! snapshots while the crawl runs, exercising the reader-parallel
//! session lock), and a **fetch-pipeline latency ladder** (simulated
//! 0/5/20/50 ms fetches × pool sizes, measuring how much of the
//! zero-latency ceiling the async pipeline preserves).
//!
//! Wall-clock numbers are the **median of [`REPS`] runs** per
//! configuration: a single 400–500 ms crawl has ±5% run-to-run noise on
//! a shared box, which is larger than the effects being tracked (the
//! PR 3 "single-worker batching regression" turned out to be exactly
//! this — one noisy sample; the deterministic logical-reads comparison
//! shows the batched path doing strictly less storage work).
//!
//! Appends one trajectory point to `BENCH_frontier.json` at the repo
//! root so successive PRs can chart the hot path's cost over time.
//!
//! Run with `cargo bench --bench frontier_throughput`.

use focus_crawler::cluster::CrawlCluster;
use focus_crawler::frontier::{self, FrontierEntry};
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::{tables, CrawlPolicy};
use focus_eval::common::{Scale, World};
use focus_types::Oid;
use minirel::{Database, Value};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pages to crawl in the descent-count comparison.
const PAGES: usize = 400;
/// Synthetic outlinks per page.
const OUTLINKS: u64 = 12;
/// Claim-batch size for the batched path.
const BATCH: usize = 8;
/// Fetch budget for the throughput crawls.
const CRAWL_BUDGET: u64 = 2000;
/// Simulated network latency per fetch in the throughput crawls.
/// 500 µs (PR 2's point used 200 µs and an 800-fetch budget): with the
/// storage hot path now ~3× cheaper, 200 µs fetches let 4 workers
/// saturate a small box's CPU outright, measuring core count instead of
/// the storage layer's scaling; a longer fetch keeps workers
/// latency-bound — the paper's regime — so added workers express
/// contention, not CPU exhaustion.
const FETCH_LATENCY_US: u64 = 500;
/// Timed repetitions per configuration (median reported). Reps are
/// **interleaved across configurations** (rep 0 of every config, then
/// rep 1, …): a shared box drifts by several percent over minutes, so
/// measuring config-by-config would hand whole blocks of drift to
/// single configurations and fabricate regressions between them.
const REPS: usize = 5;
/// Monitor threads in the read-concurrency scenario.
const MONITORS: usize = 4;
/// Poll interval per monitor thread. A live dashboard refreshes a few
/// times a second; 4 threads at 25 ms is a 40 Hz aggregate of
/// full-table-scan snapshots — well past any real §3.7 applet. Pacing
/// matters on small boxes: each snapshot costs 1–2 ms of CPU, so
/// unpaced (or 5 ms) monitors own most of a single core no matter how
/// the locks behave, turning the scenario into a CPU-share measurement
/// and hiding the thing under test — whether monitor queries *stall*
/// the crawl while they run. At this cadence monitor CPU stays near
/// 10% of a core, which is what any lock design must concede; the
/// remaining gap to the baseline is lock convoy, which is the metric.
const MONITOR_POLL_MS: u64 = 25;
/// Workers in the read-concurrency scenario.
const RC_WORKERS: usize = 4;
/// Simulated fetch latencies for the fetch-pipeline ladder. 0 is the
/// ceiling row; 5–50 ms is the realistic WAN band ROADMAP's acceptance
/// bar names.
const LADDER_LATENCIES_MS: [u64; 4] = [0, 5, 20, 50];
/// Fetch-pool sizes for the ladder. 64 is deliberately undersized — at
/// 50 ms it caps in-flight work at 64 fetches (~1 300 pages/sec) and
/// shows the pool size mattering. The largest pool is the one the
/// 1.5× acceptance bar is measured against, and it must satisfy
/// `pool ≥ ceiling × latency / 1.5` or the bar is arithmetically
/// unreachable: at 50 ms hiding a ~5 000 pages/sec ceiling needs
/// several hundred fetches genuinely in flight, so 512 is the
/// shipping-scale tier. Probing showed the residual 50 ms gap is the
/// host, not the pipeline: on this box (often a single core) the
/// classify/flush CPU itself caps out near ~5 300 pages/sec and pool
/// threads compete with the CPU workers for cycles — which is also why
/// each pool size gets its *own* zero-latency ceiling below.
const LADDER_POOLS: [usize; 3] = [64, 256, 512];
/// Fetch budget for the ladder crawls. Larger than [`CRAWL_BUDGET`] to
/// amortize the pipeline-fill ramp (at 50 ms the first latency window
/// produces zero completions — a fixed tax that a short run cannot
/// absorb), but clear of the tiny web's exhaustion tail: Unfocused on
/// this world runs dry near ~3 400 attempts, and a starving frontier
/// would measure stagnation sleeps, not the pipeline.
const LADDER_BUDGET: u64 = 2500;
/// CPU workers in the ladder. Two is enough to drain completions at
/// CPU speed while keeping the ceiling low enough that the interesting
/// regime — latency-bound, not core-bound — dominates.
const LADDER_WORKERS: usize = 2;
/// Claim-batch size in the ladder: large batches keep the submission
/// queue topped up so pool threads never starve between claims.
const LADDER_BATCH: usize = 128;

#[derive(Debug, Serialize)]
struct ThroughputPoint {
    workers: usize,
    batch_size: usize,
    attempts: u64,
    pages_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct ReadConcurrencyPoint {
    workers: usize,
    monitors: usize,
    /// Crawl throughput with no monitors attached.
    baseline_pages_per_sec: f64,
    /// Crawl throughput with [`MONITORS`] threads looping SQL + stats.
    monitored_pages_per_sec: f64,
    /// monitored ÷ baseline (the acceptance bar is ≥ 0.85).
    ratio: f64,
    /// SQL snapshots served while the monitored crawl ran.
    monitor_queries: u64,
}

#[derive(Debug, Serialize)]
struct ClusterPoint {
    /// Shard count; 1 is a genuine single session (the baseline).
    shards: usize,
    /// Total workers across shards.
    workers_total: usize,
    attempts: u64,
    pages_per_sec: f64,
    /// Mean linear relevance of fetched pages (should be flat across
    /// shard counts).
    harvest: f64,
}

#[derive(Debug, Serialize)]
struct ChaosPoint {
    /// Fault profile (`clean` is the baseline row).
    profile: String,
    attempts: u64,
    successes: u64,
    harvest: f64,
    /// Mean harvest over the last third of the budget (the recovery
    /// half of the outage story).
    tail_harvest: f64,
    /// Breakers opened / closed again during the run.
    quarantines: u64,
    recoveries: u64,
}

#[derive(Debug, Serialize)]
struct LatencyPoint {
    latency_ms: u64,
    workers: usize,
    /// Fetch-pool threads (0 would be the inline path; the ladder only
    /// runs pooled configurations — inline at 50 ms would take minutes
    /// per rep, which is the point of the pipeline).
    fetch_pool: usize,
    attempts: u64,
    pages_per_sec: f64,
    /// pages/sec ÷ the same pool size's zero-latency ceiling. The
    /// acceptance bar is ≥ 1/1.5 ≈ 0.67 at the largest pool for every
    /// nonzero latency: the pipeline must hide the round-trip, not
    /// merely survive it.
    vs_ceiling: f64,
}

#[derive(Debug, Serialize)]
struct BenchPoint {
    bench: &'static str,
    unix_time: u64,
    pages: usize,
    outlinks_per_page: u64,
    reads_per_page_per_link: f64,
    reads_per_page_batched: f64,
    /// per-link ÷ batched; the PR acceptance bar is ≥ 2.0.
    descent_reduction: f64,
    throughput: Vec<ThroughputPoint>,
    /// Fetch-pipeline latency ladder (latency × pool size at fixed
    /// workers); the acceptance bar is pages/sec ≥ zero-latency
    /// ceiling ÷ 1.5 at every nonzero latency for the largest pool.
    latency_ladder: Vec<LatencyPoint>,
    read_concurrency: ReadConcurrencyPoint,
    /// Sharded-crawl ladder at equal total workers; the acceptance bar
    /// is 4-shard pages/sec ≥ the shards=1 baseline.
    cluster: Vec<ClusterPoint>,
    /// Chaos matrix (fault profile × crawl vs clean baseline); the
    /// acceptance bars are flaky yield ≥ 0.5× clean and breakers that
    /// open *and* re-close across a healing outage.
    chaos: Vec<ChaosPoint>,
}

/// Deterministic synthetic outlink set for a page: a mix of fresh
/// targets and revisits of earlier ones, so both the create and the
/// raise paths of the upsert run.
fn synth_outlinks(page: u64) -> Vec<(Oid, String)> {
    (0..OUTLINKS)
        .map(|j| {
            let x = (page
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j.wrapping_mul(1442695040888963407)))
                >> 16;
            let oid = x % 5000 + 1;
            (
                Oid(oid),
                format!("http://s{:02}.example.org/p{}.html", oid % 24, oid),
            )
        })
        .collect()
}

fn seeded_db() -> Database {
    let mut db = Database::in_memory_with_frames(512);
    tables::create_tables(&mut db).expect("tables");
    for i in 0..64u64 {
        frontier::upsert_frontier(
            &mut db,
            Oid(1_000_000 + i),
            &format!("http://seed.example.org/{i}"),
            0.0,
            0,
        )
        .expect("seed");
    }
    db
}

fn link_row(src: Oid, dst: Oid) -> Vec<Value> {
    vec![
        Value::Int(src.raw() as i64),
        Value::Int((src.raw() % 24) as i64),
        Value::Int(dst.raw() as i64),
        Value::Int((dst.raw() % 24) as i64),
        Value::Int(1),
    ]
}

/// The pre-batching hot path: one claim, one mark_done, then one full
/// B+tree descent per LINK row and per outlink upsert.
fn run_per_link() -> f64 {
    let mut db = seeded_db();
    let link_tid = db.table_id("link").expect("link");
    db.reset_io_stats();
    let mut processed = 0usize;
    while processed < PAGES {
        let Some(claim) = frontier::claim_next(&mut db).expect("claim") else {
            break;
        };
        frontier::mark_done(&mut db, claim.oid, &claim.url, -0.3, 5, 1).expect("done");
        for (dst, dst_url) in synth_outlinks(claim.oid.raw()) {
            db.insert(link_tid, link_row(claim.oid, dst)).expect("link");
            frontier::upsert_frontier(&mut db, dst, &dst_url, -0.7, 0).expect("upsert");
        }
        processed += 1;
    }
    assert_eq!(processed, PAGES, "frontier ran dry early");
    db.io_stats().logical_reads as f64 / processed as f64
}

/// The batched hot path: claims checked out [`BATCH`] at a time, LINK
/// rows inserted with one sorted pass per index, outlinks upserted with
/// one ordered oid-index pass per page.
fn run_batched() -> f64 {
    let mut db = seeded_db();
    let link_tid = db.table_id("link").expect("link");
    db.reset_io_stats();
    let mut processed = 0usize;
    while processed < PAGES {
        let claims = frontier::claim_batch(&mut db, BATCH.min(PAGES - processed), i64::MAX)
            .expect("claim batch")
            .claims;
        if claims.is_empty() {
            break;
        }
        for claim in claims {
            frontier::mark_done(&mut db, claim.oid, &claim.url, -0.3, 5, 1).expect("done");
            let outlinks = synth_outlinks(claim.oid.raw());
            let rows = outlinks
                .iter()
                .map(|(dst, _)| link_row(claim.oid, *dst))
                .collect();
            db.insert_many(link_tid, rows).expect("links");
            let entries: Vec<FrontierEntry> = outlinks
                .into_iter()
                .map(|(oid, url)| FrontierEntry {
                    oid,
                    url,
                    log_relevance: -0.7,
                    serverload: 0,
                })
                .collect();
            frontier::upsert_batch(&mut db, &entries).expect("upsert batch");
            processed += 1;
        }
    }
    assert_eq!(processed, PAGES, "frontier ran dry early");
    db.io_stats().logical_reads as f64 / processed as f64
}

/// A fresh seeded session for one timed crawl. Fetches carry a small
/// simulated network latency ([`FETCH_LATENCY_US`]): with free fetches
/// the crawl is pure CPU and worker count is noise; with a per-fetch
/// cost, scaling shows whether workers add throughput or just lock
/// contention.
fn make_session(world: &World, workers: usize, batch_size: usize) -> Arc<CrawlSession> {
    let fetcher = Arc::new(focus_webgraph::SimFetcher::new(
        Arc::clone(&world.graph),
        Some(std::time::Duration::from_micros(FETCH_LATENCY_US)),
    ));
    let session = Arc::new(
        CrawlSession::new(
            fetcher,
            world.model.clone(),
            CrawlConfig {
                // Unfocused expansion keeps the frontier saturated for
                // the whole budget: this measures the storage hot path,
                // not topical exhaustion.
                policy: CrawlPolicy::Unfocused,
                threads: workers,
                max_fetches: CRAWL_BUDGET,
                distill_every: None,
                batch_size,
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(10)).expect("seed");
    session
}

/// One timed crawl; returns `(attempts, pages/sec)`.
fn one_crawl(world: &World, workers: usize, batch_size: usize) -> (u64, f64) {
    let session = make_session(world, workers, batch_size);
    let t = Instant::now();
    let stats = session.run().expect("crawl");
    let secs = t.elapsed().as_secs_f64();
    (stats.attempts, stats.attempts as f64 / secs)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

/// Median-of-[`REPS`] crawl throughput for each configuration, with
/// reps interleaved across configurations (see [`REPS`]).
fn throughput_ladder(world: &World, configs: &[(usize, usize)]) -> Vec<ThroughputPoint> {
    let mut rates: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); configs.len()];
    let mut attempts = vec![0u64; configs.len()];
    for _ in 0..REPS {
        for (c, &(workers, batch)) in configs.iter().enumerate() {
            let (a, pps) = one_crawl(world, workers, batch);
            attempts[c] = a;
            rates[c].push(pps);
        }
    }
    configs
        .iter()
        .zip(rates)
        .zip(attempts)
        .map(|((&(workers, batch_size), r), attempts)| ThroughputPoint {
            workers,
            batch_size,
            attempts,
            pages_per_sec: median(r),
        })
        .collect()
}

/// A fresh seeded session for one fetch-pipeline ladder crawl: pooled
/// fetches at a millisecond-scale simulated latency. Everything else
/// (default per-server politeness included — ~114 servers × 8 in
/// flight leaves politeness far from binding on the tiny web) matches
/// the shipping configuration.
fn pooled_session(world: &World, latency_ms: u64, fetch_pool: usize) -> Arc<CrawlSession> {
    let fetcher = Arc::new(focus_webgraph::SimFetcher::new(
        Arc::clone(&world.graph),
        (latency_ms > 0).then(|| std::time::Duration::from_millis(latency_ms)),
    ));
    let session = Arc::new(
        CrawlSession::new(
            fetcher,
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::Unfocused,
                threads: LADDER_WORKERS,
                max_fetches: LADDER_BUDGET,
                distill_every: None,
                batch_size: LADDER_BATCH,
                fetch_pool,
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(10)).expect("seed");
    session
}

/// Median-of-[`REPS`] fetch-pipeline ladder: every latency × pool-size
/// configuration, reps interleaved like the worker ladder. Each row's
/// `vs_ceiling` is against the zero-latency row of the *same* pool
/// size, so the ratio isolates latency-hiding from pool overhead: on a
/// small box hundreds of pool threads shave the ceiling itself by
/// stealing scheduler share from the CPU workers, and comparing a
/// 50 ms run against a *different* thread count's ceiling would
/// measure that scheduler tax, not the pipeline.
fn latency_ladder(world: &World) -> Vec<LatencyPoint> {
    let configs: Vec<(u64, usize)> = LADDER_POOLS
        .iter()
        .flat_map(|&pool| LADDER_LATENCIES_MS.iter().map(move |&ms| (ms, pool)))
        .collect();
    let mut rates: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); configs.len()];
    let mut attempts = vec![0u64; configs.len()];
    for _ in 0..REPS {
        for (c, &(ms, pool)) in configs.iter().enumerate() {
            let session = pooled_session(world, ms, pool);
            let t = Instant::now();
            let stats = session.run().expect("ladder crawl");
            let secs = t.elapsed().as_secs_f64();
            attempts[c] = stats.attempts;
            rates[c].push(stats.attempts as f64 / secs);
        }
    }
    let medians: Vec<f64> = rates.into_iter().map(median).collect();
    let ceiling = |pool: usize| {
        configs
            .iter()
            .zip(&medians)
            .find(|(cfg, _)| cfg.0 == 0 && cfg.1 == pool)
            .map(|(_, &m)| m)
            .unwrap_or(f64::INFINITY)
    };
    configs
        .iter()
        .zip(&medians)
        .zip(attempts)
        .map(
            |((&(latency_ms, fetch_pool), &pps), attempts)| LatencyPoint {
                latency_ms,
                workers: LADDER_WORKERS,
                fetch_pool,
                attempts,
                pages_per_sec: pps,
                vs_ceiling: pps / ceiling(fetch_pool),
            },
        )
        .collect()
}

/// Crawl with [`MONITORS`] threads looping §3.7 monitoring against the
/// live session: a SQL snapshot (`CrawlSession::sql`, i.e. store read
/// lock + `Database::query`) plus a `stats()` call per iteration.
/// Returns `(pages/sec, monitor queries served)`. Before the session
/// lock was split, each of these queries serialized against every page
/// flush — and vice versa: monitors stalled the crawl outright.
fn monitored_crawl(world: &World) -> (f64, u64) {
    let session = make_session(world, RC_WORKERS, BATCH);
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let mut monitors = Vec::new();
    for _ in 0..MONITORS {
        let session = Arc::clone(&session);
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        monitors.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let rs = session
                    .sql("select count(*), avg(exp(relevance)) from crawl where visited = 1")
                    .expect("monitor query");
                std::hint::black_box(rs);
                std::hint::black_box(session.stats());
                served.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(MONITOR_POLL_MS));
            }
        }));
    }
    let t = Instant::now();
    let stats = session.run().expect("crawl");
    let secs = t.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    for m in monitors {
        m.join().expect("monitor thread");
    }
    (stats.attempts as f64 / secs, served.load(Ordering::Relaxed))
}

/// One timed crawl at `shards` (1 = plain session); returns
/// `(attempts, pages/sec, mean harvest)`. Sessions/clusters are rebuilt
/// per rep — budgets are spent by a run.
fn one_sharded_crawl(world: &World, shards: usize, workers: usize) -> (u64, f64, f64) {
    if shards == 1 {
        let session = make_session(world, workers, BATCH);
        let t = Instant::now();
        let stats = session.run().expect("crawl");
        let secs = t.elapsed().as_secs_f64();
        return (
            stats.attempts,
            stats.attempts as f64 / secs,
            stats.mean_harvest(),
        );
    }
    let fetcher = Arc::new(focus_webgraph::SimFetcher::new(
        Arc::clone(&world.graph),
        Some(std::time::Duration::from_micros(FETCH_LATENCY_US)),
    ));
    let cluster = CrawlCluster::new(
        shards,
        fetcher,
        world.model.clone(),
        CrawlConfig {
            policy: CrawlPolicy::Unfocused,
            threads: workers,
            max_fetches: CRAWL_BUDGET,
            distill_every: None,
            batch_size: BATCH,
            ..CrawlConfig::default()
        },
    )
    .expect("cluster");
    cluster.seed(&world.start_set(10)).expect("seed");
    let t = Instant::now();
    let stats = cluster.run().expect("cluster crawl");
    let secs = t.elapsed().as_secs_f64();
    (
        stats.attempts,
        stats.attempts as f64 / secs,
        stats.mean_harvest(),
    )
}

/// Median-of-[`REPS`] sharded ladder, reps interleaved across shard
/// counts like the worker ladder. Harvest is the *mean* over reps:
/// claim interleaving makes a single sharded run's harvest vary by a
/// few hundredths (which pages fill each shard's budget share depends
/// on routing arrival order), and a one-rep number would read as a
/// sharding regression that is really noise.
fn cluster_ladder(world: &World, configs: &[(usize, usize)]) -> Vec<ClusterPoint> {
    let mut rates: Vec<Vec<f64>> = vec![Vec::with_capacity(REPS); configs.len()];
    let mut attempts = vec![0u64; configs.len()];
    let mut harvest_sum = vec![0.0f64; configs.len()];
    for _ in 0..REPS {
        for (c, &(shards, workers)) in configs.iter().enumerate() {
            let (a, pps, h) = one_sharded_crawl(world, shards, workers);
            attempts[c] = a;
            harvest_sum[c] += h;
            rates[c].push(pps);
        }
    }
    configs
        .iter()
        .zip(rates)
        .zip(attempts)
        .zip(harvest_sum)
        .map(
            |(((&(shards, workers_total), r), attempts), harvest_sum)| ClusterPoint {
                shards,
                workers_total,
                attempts,
                pages_per_sec: median(r),
                harvest: harvest_sum / REPS as f64,
            },
        )
        .collect()
}

fn read_concurrency(world: &World, baseline: f64) -> ReadConcurrencyPoint {
    let mut rates = Vec::with_capacity(REPS);
    let mut queries = 0;
    for _ in 0..REPS {
        let (pps, q) = monitored_crawl(world);
        rates.push(pps);
        queries = queries.max(q);
    }
    let monitored = median(rates);
    ReadConcurrencyPoint {
        workers: RC_WORKERS,
        monitors: MONITORS,
        baseline_pages_per_sec: baseline,
        monitored_pages_per_sec: monitored,
        ratio: monitored / baseline,
        monitor_queries: queries,
    }
}

/// Append `point` to the JSON array in BENCH_frontier.json (created on
/// first run). The vendored serde_json only serializes, so appending is
/// done textually.
fn append_point(point: &BenchPoint) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    let rendered = serde_json::to_string_pretty(point).expect("serialize");
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) if head.trim_end().ends_with('[') => format!("[\n{rendered}\n]"),
                Some(head) => format!("{},\n{rendered}\n]", head.trim_end()),
                None => format!("[\n{rendered}\n]"),
            }
        }
        Err(_) => format!("[\n{rendered}\n]"),
    };
    std::fs::write(path, body + "\n").expect("write BENCH_frontier.json");
    println!("wrote trajectory point to {path}");
}

fn main() {
    println!("--- frontier hot path: B+tree descents per crawled page ---");
    let per_link = run_per_link();
    let batched = run_batched();
    let reduction = per_link / batched;
    println!("per-link path: {per_link:8.1} logical reads/page");
    println!("batched path:  {batched:8.1} logical reads/page  (claim batch {BATCH})");
    println!(
        "reduction:     {reduction:8.2}x  ({})",
        if reduction >= 2.0 {
            "PASS: >= 2x"
        } else {
            "FAIL: < 2x"
        }
    );

    println!("--- crawl throughput, {CRAWL_BUDGET}-fetch budget, tiny web, median of {REPS} ---");
    let world = World::cycling(Scale::Tiny, 23);
    // Unbatched baselines plus the batched ladder.
    let configs = [
        (1, 1),
        (4, 1),
        (1, BATCH),
        (2, BATCH),
        (4, BATCH),
        (8, BATCH),
        (16, BATCH),
    ];
    let throughput = throughput_ladder(&world, &configs);
    for p in &throughput {
        println!(
            "workers {:>2}  batch {:>2}: {:>9.0} pages/sec ({} attempts)",
            p.workers, p.batch_size, p.pages_per_sec, p.attempts
        );
    }
    let pps = |workers: usize, batch: usize| {
        throughput
            .iter()
            .find(|p| p.workers == workers && p.batch_size == batch)
            .map(|p| p.pages_per_sec)
            .unwrap_or(0.0)
    };
    let base = pps(1, 1);
    let four = pps(4, BATCH);
    println!(
        "4 workers batched vs 1 worker unbatched: {:.2}x ({})",
        four / base,
        if four >= base {
            "PASS: no worse"
        } else {
            "FAIL: regressed"
        }
    );
    println!(
        "1 worker batched vs 1 worker per-link:   {:.2}x ({})",
        pps(1, BATCH) / base,
        if pps(1, BATCH) >= base {
            "PASS: batching never loses uncontended"
        } else {
            "FAIL: uncontended batching regressed"
        }
    );
    println!(
        "8 workers vs 4 workers:                  {:.2}x ({})",
        pps(8, BATCH) / four,
        if pps(8, BATCH) >= four {
            "PASS: scaling continues past 4"
        } else {
            "FAIL: scaling wall at 4"
        }
    );

    println!(
        "--- fetch-pipeline latency ladder: {LADDER_WORKERS} workers, batch {LADDER_BATCH}, median of {REPS} ---"
    );
    let ladder = latency_ladder(&world);
    for p in &ladder {
        println!(
            "latency {:>2} ms  pool {:>3}: {:>9.0} pages/sec ({} attempts, {:.2}x ceiling)",
            p.latency_ms, p.fetch_pool, p.pages_per_sec, p.attempts, p.vs_ceiling
        );
    }
    let big_pool = *LADDER_POOLS.iter().max().expect("pool sizes");
    for p in ladder
        .iter()
        .filter(|p| p.fetch_pool == big_pool && p.latency_ms > 0)
    {
        println!(
            "pool {} at {:>2} ms vs zero-latency ceiling: {:.2}x ({})",
            big_pool,
            p.latency_ms,
            p.vs_ceiling,
            if p.vs_ceiling >= 1.0 / 1.5 {
                "PASS: >= 1/1.5"
            } else {
                "FAIL: latency not hidden"
            }
        );
    }

    println!("--- read concurrency: {RC_WORKERS} workers + {MONITORS} monitor threads ---");
    let rc = read_concurrency(&world, pps(RC_WORKERS, BATCH));
    println!(
        "baseline {:>9.0} pages/sec | with monitors {:>9.0} pages/sec | ratio {:.2} ({}) | {} snapshots served",
        rc.baseline_pages_per_sec,
        rc.monitored_pages_per_sec,
        rc.ratio,
        if rc.ratio >= 0.85 {
            "PASS: >= 0.85"
        } else {
            "FAIL: < 0.85"
        },
        rc.monitor_queries
    );

    println!("--- sharded crawl ladder, {CRAWL_BUDGET}-fetch budget, 4 total workers ---");
    let cluster_configs = [(1, 4), (2, 4), (4, 4)];
    let cluster = cluster_ladder(&world, &cluster_configs);
    for p in &cluster {
        println!(
            "shards {:>2}  workers {:>2}: {:>9.0} pages/sec ({} attempts, harvest {:.3})",
            p.shards, p.workers_total, p.pages_per_sec, p.attempts, p.harvest
        );
    }
    let shard_pps = |shards: usize| {
        cluster
            .iter()
            .find(|p| p.shards == shards)
            .map(|p| p.pages_per_sec)
            .unwrap_or(0.0)
    };
    println!(
        "4 shards vs single session at 4 workers:  {:.2}x ({})",
        shard_pps(4) / shard_pps(1),
        if shard_pps(4) >= shard_pps(1) {
            "PASS: sharding never loses at equal workers"
        } else {
            "FAIL: sharding regressed"
        }
    );

    println!("--- chaos matrix: fault profiles vs clean baseline ---");
    let matrix = focus_eval::chaos::run(Scale::Tiny);
    matrix.print();
    let chaos: Vec<ChaosPoint> = matrix
        .rows
        .iter()
        .map(|r| ChaosPoint {
            profile: r.profile.clone(),
            attempts: r.attempts,
            successes: r.successes,
            harvest: r.harvest,
            tail_harvest: r.tail_harvest,
            quarantines: r.quarantines,
            recoveries: r.recoveries,
        })
        .collect();
    let (clean_ok, flaky_ok) = (
        matrix.clean().successes,
        matrix.row("flaky").map(|r| r.successes).unwrap_or(0),
    );
    println!(
        "flaky yield vs clean: {:.2}x ({})",
        flaky_ok as f64 / clean_ok.max(1) as f64,
        if flaky_ok as f64 >= 0.5 * clean_ok as f64 {
            "PASS: >= 0.5x under 20% fault mass"
        } else {
            "FAIL: flaky web collapsed the crawl"
        }
    );
    let recoveries = matrix.row("outage").map(|r| r.recoveries).unwrap_or(0);
    println!(
        "outage breaker round-trips: {recoveries} ({})",
        if recoveries > 0 {
            "PASS: breakers re-closed after healing"
        } else {
            "FAIL: no recovery observed"
        }
    );

    let point = BenchPoint {
        bench: "frontier",
        unix_time: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        pages: PAGES,
        outlinks_per_page: OUTLINKS,
        reads_per_page_per_link: per_link,
        reads_per_page_batched: batched,
        descent_reduction: reduction,
        throughput,
        latency_ladder: ladder,
        read_concurrency: rc,
        cluster,
        chaos,
    };
    append_point(&point);
}
