//! Main-memory weighted HITS — the edge-walk formulation the paper used
//! before moving distillation into the database ("In past work on
//! distillation … An array of links would be traversed, reading and
//! updating the endpoints using node hashes"). The crawler calls this
//! frequently mid-crawl; semantics are identical to the Figure 4 SQL and
//! tests in [`crate::db`] pin the equality.

use crate::{DistillConfig, DistillResult, LinkEdge};
use focus_types::hash::FxHashMap;
use focus_types::Oid;

/// In-memory distiller state.
pub struct WeightedHits<'a> {
    edges: &'a [LinkEdge],
    /// `relevance(v)` for the ρ filter on authority candidates.
    relevance: &'a FxHashMap<Oid, f64>,
    cfg: DistillConfig,
}

impl<'a> WeightedHits<'a> {
    /// Bind edges + relevance map + config.
    pub fn new(
        edges: &'a [LinkEdge],
        relevance: &'a FxHashMap<Oid, f64>,
        cfg: DistillConfig,
    ) -> Self {
        WeightedHits {
            edges,
            relevance,
            cfg,
        }
    }

    /// Run `cfg.iterations` rounds of the Figure 4 mutual recursion.
    pub fn run(&self) -> DistillResult {
        let cfg = &self.cfg;
        // Initial authority scores: uniform over distinct targets.
        let mut auth: FxHashMap<Oid, f64> = FxHashMap::default();
        for e in self.edges {
            auth.entry(e.dst).or_insert(1.0);
        }
        normalize(&mut auth);
        let mut hubs: FxHashMap<Oid, f64> = FxHashMap::default();
        for _ in 0..cfg.iterations {
            // UpdateHubs: h(u) = Σ a(v)·wgt_rev over non-nepotistic edges.
            hubs.clear();
            for e in self.edges {
                if cfg.nepotism_filter && e.sid_src == e.sid_dst {
                    continue;
                }
                if let Some(&a) = auth.get(&e.dst) {
                    let w = if cfg.weighted_edges { e.wgt_rev } else { 1.0 };
                    *hubs.entry(e.src).or_insert(0.0) += a * w;
                }
            }
            normalize(&mut hubs);
            // UpdateAuth: a(v) = Σ h(u)·wgt_fwd, filtered by relevance > ρ.
            auth.clear();
            for e in self.edges {
                if cfg.nepotism_filter && e.sid_src == e.sid_dst {
                    continue;
                }
                let rel_v = self.relevance.get(&e.dst).copied().unwrap_or(0.0);
                if rel_v <= cfg.rho {
                    continue;
                }
                if let Some(&h) = hubs.get(&e.src) {
                    let w = if cfg.weighted_edges { e.wgt_fwd } else { 1.0 };
                    *auth.entry(e.dst).or_insert(0.0) += h * w;
                }
            }
            normalize(&mut auth);
        }
        let mut hubs: Vec<(Oid, f64)> = hubs.into_iter().collect();
        let mut auths: Vec<(Oid, f64)> = auth.into_iter().collect();
        hubs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        auths.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        DistillResult { hubs, auths }
    }
}

fn normalize(m: &mut FxHashMap<Oid, f64>) {
    let sum: f64 = m.values().sum();
    if sum > 0.0 {
        for v in m.values_mut() {
            *v /= sum;
        }
    }
}

/// Build `LINK` edges from raw links and a relevance map (the §2.2.2
/// weighting: `EF[u,v] = R(v)`, `EB[u,v] = R(u)`).
pub fn edges_from_links(
    links: &[(Oid, u32, Oid, u32)],
    relevance: &FxHashMap<Oid, f64>,
) -> Vec<LinkEdge> {
    links
        .iter()
        .map(|&(src, sid_src, dst, sid_dst)| LinkEdge {
            src,
            sid_src,
            dst,
            sid_dst,
            wgt_fwd: relevance.get(&dst).copied().unwrap_or(0.0),
            wgt_rev: relevance.get(&src).copied().unwrap_or(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small graph: hub 1 and hub 2 both point at authorities 10, 11.
    /// Hub 3 points only at irrelevant page 20. Page 30→31 is a
    /// same-server (nepotistic) edge.
    fn fixture() -> (Vec<LinkEdge>, FxHashMap<Oid, f64>) {
        let mut rel: FxHashMap<Oid, f64> = FxHashMap::default();
        for (o, r) in [
            (1u64, 0.8),
            (2, 0.7),
            (3, 0.6),
            (10, 0.9),
            (11, 0.85),
            (20, 0.01), // irrelevant: below ρ
            (30, 0.9),
            (31, 0.9),
        ] {
            rel.insert(Oid(o), r);
        }
        let links = vec![
            (Oid(1), 100, Oid(10), 200),
            (Oid(1), 100, Oid(11), 201),
            (Oid(2), 101, Oid(10), 200),
            (Oid(2), 101, Oid(11), 201),
            (Oid(3), 102, Oid(20), 202),
            (Oid(30), 300, Oid(31), 300), // nepotistic
        ];
        (edges_from_links(&links, &rel), rel)
    }

    #[test]
    fn hubs_and_authorities_found() {
        let (edges, rel) = fixture();
        let r = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        let top_hub = r.top_hubs(1)[0].0;
        assert!(top_hub == Oid(1) || top_hub == Oid(2));
        let top_auths: Vec<Oid> = r.top_auths(2).iter().map(|&(o, _)| o).collect();
        assert!(top_auths.contains(&Oid(10)));
        assert!(top_auths.contains(&Oid(11)));
    }

    #[test]
    fn rho_filter_excludes_irrelevant_authorities() {
        let (edges, rel) = fixture();
        let r = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        assert!(
            !r.auths.iter().any(|&(o, s)| o == Oid(20) && s > 0.0),
            "page 20 (R=0.01 < rho) must not be an authority"
        );
        // Hub 3 earns nothing: its only target is filtered.
        assert!(r.hub_score(Oid(3)) < 1e-12);
    }

    #[test]
    fn nepotism_filter_blocks_same_server_endorsement() {
        let (edges, rel) = fixture();
        let with = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        assert_eq!(with.hub_score(Oid(30)), 0.0, "nepotistic hub blocked");
        let without = WeightedHits::new(
            &edges,
            &rel,
            DistillConfig {
                nepotism_filter: false,
                ..DistillConfig::default()
            },
        )
        .run();
        assert!(without.hub_score(Oid(30)) > 0.0, "without filter it scores");
    }

    #[test]
    fn scores_are_normalized() {
        let (edges, rel) = fixture();
        let r = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        let hs: f64 = r.hubs.iter().map(|&(_, s)| s).sum();
        let as_: f64 = r.auths.iter().map(|&(_, s)| s).sum();
        assert!((hs - 1.0).abs() < 1e-9, "hub sum {hs}");
        assert!((as_ - 1.0).abs() < 1e-9, "auth sum {as_}");
    }

    #[test]
    fn weighting_protects_against_irrelevant_leakage() {
        // Universal page 50 is linked by everyone but has relevance 0.2
        // (just above rho so only the weighting defends). Authorities 10
        // and 11 have high relevance.
        let mut rel: FxHashMap<Oid, f64> = FxHashMap::default();
        for (o, r) in [
            (1u64, 0.9),
            (2, 0.9),
            (3, 0.9),
            (10, 0.9),
            (11, 0.9),
            (50, 0.2),
        ] {
            rel.insert(Oid(o), r);
        }
        let links = vec![
            (Oid(1), 1, Oid(10), 10),
            (Oid(1), 1, Oid(50), 50),
            (Oid(2), 2, Oid(11), 11),
            (Oid(2), 2, Oid(50), 50),
            (Oid(3), 3, Oid(10), 10),
            (Oid(3), 3, Oid(11), 11),
            (Oid(3), 3, Oid(50), 50),
        ];
        let edges = edges_from_links(&links, &rel);
        let weighted = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        let unweighted = WeightedHits::new(
            &edges,
            &rel,
            DistillConfig {
                weighted_edges: false,
                ..DistillConfig::default()
            },
        )
        .run();
        let rank = |r: &DistillResult, o: Oid| {
            r.auths
                .iter()
                .position(|&(x, _)| x == o)
                .unwrap_or(usize::MAX)
        };
        // With weights the universal page ranks below both topical
        // authorities; without weights it wins (3 in-links vs 2).
        assert!(rank(&weighted, Oid(50)) > rank(&weighted, Oid(10)));
        assert!(rank(&weighted, Oid(50)) > rank(&weighted, Oid(11)));
        assert_eq!(
            rank(&unweighted, Oid(50)),
            0,
            "plain HITS crowns the universal page"
        );
    }

    #[test]
    fn empty_graph() {
        let rel = FxHashMap::default();
        let edges: Vec<LinkEdge> = Vec::new();
        let r = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        assert!(r.hubs.is_empty() && r.auths.is_empty());
    }

    #[test]
    fn deterministic_ordering() {
        let (edges, rel) = fixture();
        let a = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        let b = WeightedHits::new(&edges, &rel, DistillConfig::default()).run();
        assert_eq!(a.hubs, b.hubs);
        assert_eq!(a.auths, b.auths);
    }
}
