//! # focus-distiller
//!
//! Topic distillation (§2.2): relevance-weighted HITS over the growing
//! crawl graph. Edge weights follow §2.2.2 —
//!
//! * forward weight `EF[u,v] = relevance(v)`: a hub only confers prestige
//!   through links that were (probably) made *because the target is
//!   topical*, preventing "leakage of endorsement from relevant hubs to
//!   irrelevant authorities";
//! * backward weight `EB[u,v] = relevance(u)`: an authority only reflects
//!   prestige to topical hubs.
//!
//! Plus the two hygiene rules of Figure 4: the **nepotism filter**
//! (`sid_src <> sid_dst` — same-server endorsements don't count) and the
//! **relevance threshold ρ** on authority candidates.
//!
//! Three implementations, compared by Figure 8(d):
//!
//! * [`memory::WeightedHits`] — the pre-relational main-memory edge-walk
//!   ("an array of links would be traversed, reading and updating the
//!   endpoints using node hashes");
//! * [`db::naive_iteration`] — the same edge-at-a-time plan against the
//!   `LINK`/`HUBS`/`AUTH` tables: sequential LINK scan + per-edge index
//!   lookups + per-edge score updates (the slow bar);
//! * [`db::join_iteration`] — the Figure 4 SQL (one aggregate join per
//!   direction; ≈3× faster in the paper).

#![forbid(unsafe_code)]

pub mod db;
pub mod memory;

use focus_types::Oid;

/// Distillation parameters.
#[derive(Debug, Clone)]
pub struct DistillConfig {
    /// Mutual-recursion iterations (the paper runs few; scores only steer
    /// crawl priorities).
    pub iterations: usize,
    /// Relevance threshold ρ for authority candidacy (Figure 4's
    /// `relevance > ρ` filter).
    pub rho: f64,
    /// Apply the same-server nepotism filter?
    pub nepotism_filter: bool,
    /// Use relevance-weighted edges? (`false` = plain HITS, the ablation.)
    pub weighted_edges: bool,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            iterations: 10,
            rho: 0.05,
            nepotism_filter: true,
            weighted_edges: true,
        }
    }
}

/// One hyperlink with server metadata and relevance weights — a row of the
/// `LINK` table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEdge {
    /// Source page.
    pub src: Oid,
    /// Source server.
    pub sid_src: u32,
    /// Target page.
    pub dst: Oid,
    /// Target server.
    pub sid_dst: u32,
    /// `EF[u,v] = relevance(v)`.
    pub wgt_fwd: f64,
    /// `EB[u,v] = relevance(u)`.
    pub wgt_rev: f64,
}

/// Distillation output: scores sorted descending.
#[derive(Debug, Clone, Default)]
pub struct DistillResult {
    /// `(page, hub score)`, best first.
    pub hubs: Vec<(Oid, f64)>,
    /// `(page, authority score)`, best first.
    pub auths: Vec<(Oid, f64)>,
}

impl DistillResult {
    /// Top-k hubs.
    pub fn top_hubs(&self, k: usize) -> &[(Oid, f64)] {
        &self.hubs[..k.min(self.hubs.len())]
    }

    /// Top-k authorities.
    pub fn top_auths(&self, k: usize) -> &[(Oid, f64)] {
        &self.auths[..k.min(self.auths.len())]
    }

    /// Hub score of a page (0 when absent).
    pub fn hub_score(&self, oid: Oid) -> f64 {
        self.hubs
            .iter()
            .find(|(o, _)| *o == oid)
            .map_or(0.0, |(_, s)| *s)
    }

    /// The ψ-quantile of hub scores (the §3.7 monitor uses the 90th
    /// percentile to find "possibly missed neighbors of great hubs").
    pub fn hub_quantile(&self, q: f64) -> f64 {
        if self.hubs.is_empty() {
            return 0.0;
        }
        let mut scores: Vec<f64> = self.hubs.iter().map(|(_, s)| *s).collect();
        scores.sort_by(f64::total_cmp);
        let i = ((scores.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        scores[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_helpers() {
        let r = DistillResult {
            hubs: vec![(Oid(1), 0.5), (Oid(2), 0.3), (Oid(3), 0.2)],
            auths: vec![(Oid(9), 1.0)],
        };
        assert_eq!(r.top_hubs(2).len(), 2);
        assert_eq!(r.top_auths(5).len(), 1);
        assert_eq!(r.hub_score(Oid(2)), 0.3);
        assert_eq!(r.hub_score(Oid(99)), 0.0);
        assert!(r.hub_quantile(0.9) >= r.hub_quantile(0.1));
        assert_eq!(DistillResult::default().hub_quantile(0.9), 0.0);
    }
}
