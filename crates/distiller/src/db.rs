//! Distillation inside the database: the `LINK`, `HUBS`, `AUTH` tables and
//! the two access paths Figure 8(d) compares.
//!
//! The join path is the verbatim Figure 4 SQL (including the
//! `sid_src <> sid_dst` nepotism predicate, the `relevance > ρ` filter
//! against `CRAWL`, and the scalar-subquery normalization). The naive path
//! replays the pre-relational plan against the same tables: sequential
//! edge scan, per-edge index lookups, per-edge score updates — and is
//! instrumented so the harness can report the paper's scan/lookup/update
//! breakdown.

use crate::{DistillConfig, DistillResult, LinkEdge};
use focus_types::hash::FxHashMap;
use focus_types::Oid;
use minirel::value::encode_composite_key;
use minirel::{Database, DbError, DbResult, Value};
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one naive iteration (Figure 8(d)'s stacked bar).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveTiming {
    /// Sequential `LINK` scan.
    pub scan: Duration,
    /// Index lookups on `HUBS`/`AUTH`/`CRAWL`.
    pub lookup: Duration,
    /// Score read-modify-writes.
    pub update: Duration,
}

impl NaiveTiming {
    /// Total time.
    pub fn total(&self) -> Duration {
        self.scan + self.lookup + self.update
    }
}

/// Oids are stored in `int` columns by reinterpreting the u64 bits as i64
/// (lossless round trip).
fn oid_to_i64(o: Oid) -> i64 {
    o.raw() as i64
}

fn i64_to_oid(v: i64) -> Oid {
    Oid(v as u64)
}

/// Create `LINK`, `HUBS`, `AUTH` (+ oid indexes).
pub fn create_tables(db: &mut Database) -> DbResult<()> {
    db.execute(
        "create table link (oid_src int, sid_src int, oid_dst int, sid_dst int, \
         wgt_fwd float, wgt_rev float)",
    )?;
    db.execute("create table hubs (oid int, score float)")?;
    db.execute("create index hubs_oid on hubs (oid)")?;
    db.execute("create table auth (oid int, score float)")?;
    db.execute("create index auth_oid on auth (oid)")?;
    Ok(())
}

/// Replace the `LINK` table contents.
pub fn load_links(db: &mut Database, edges: &[LinkEdge]) -> DbResult<()> {
    db.execute("delete from link")?;
    let tid = db.table_id("link")?;
    for e in edges {
        db.insert(
            tid,
            vec![
                Value::Int(oid_to_i64(e.src)),
                Value::Int(e.sid_src as i64),
                Value::Int(oid_to_i64(e.dst)),
                Value::Int(e.sid_dst as i64),
                Value::Float(e.wgt_fwd),
                Value::Float(e.wgt_rev),
            ],
        )?;
    }
    Ok(())
}

/// Minimal `CRAWL` stand-in for standalone distillation (the full system's
/// crawler owns the real `CRAWL`; the distiller only touches its `oid` and
/// `relevance` columns).
pub fn create_crawl_stub(db: &mut Database, relevance: &FxHashMap<Oid, f64>) -> DbResult<()> {
    db.execute("create table crawl (oid int, relevance float)")?;
    db.execute("create index crawl_oid on crawl (oid)")?;
    let tid = db.table_id("crawl")?;
    for (&o, &r) in relevance {
        db.insert(tid, vec![Value::Int(oid_to_i64(o)), Value::Float(r)])?;
    }
    Ok(())
}

/// Initialize `AUTH` with uniform scores over distinct link targets.
pub fn init_auth_uniform(db: &mut Database) -> DbResult<()> {
    db.execute("delete from auth")?;
    let rs = db.execute("select distinct oid_dst from link")?;
    let n = rs.rows.len().max(1) as f64;
    let tid = db.table_id("auth")?;
    for row in rs.rows {
        let oid = row[0]
            .as_i64()
            .ok_or_else(|| DbError::Eval("bad oid_dst".into()))?;
        db.insert(tid, vec![Value::Int(oid), Value::Float(1.0 / n)])?;
    }
    Ok(())
}

/// One iteration via the Figure 4 SQL (UpdateHubs then UpdateAuth).
pub fn join_iteration(db: &mut Database, cfg: &DistillConfig) -> DbResult<()> {
    let nepotism = if cfg.nepotism_filter {
        "sid_src <> sid_dst and"
    } else {
        ""
    };
    let (fwd, rev) = if cfg.weighted_edges {
        ("score * wgt_fwd", "score * wgt_rev")
    } else {
        ("score", "score")
    };
    db.execute("delete from hubs")?;
    db.execute(&format!(
        "insert into hubs(oid, score)
           (select oid_src, sum({rev})
            from auth, link
            where {nepotism} oid = oid_dst
            group by oid_src)"
    ))?;
    db.execute("update hubs set (score) = score / (select sum(score) from hubs)")?;
    db.execute("delete from auth")?;
    db.execute(&format!(
        "insert into auth(oid, score)
           (select oid_dst, sum({fwd})
            from hubs, link, crawl
            where {nepotism} hubs.oid = oid_src
              and oid_dst = crawl.oid
              and relevance > {rho}
            group by oid_dst)",
        rho = cfg.rho
    ))?;
    db.execute("update auth set (score) = score / (select sum(score) from auth)")?;
    Ok(())
}

/// Index lookup of a score row by oid; returns (rid, score).
fn lookup_score(db: &mut Database, table: &str, oid: i64) -> DbResult<Option<(minirel::Rid, f64)>> {
    let tid = db.table_id(table)?;
    let (pool, catalog) = db.parts_mut();
    let idx = catalog
        .find_index(tid, &[0])
        .ok_or_else(|| DbError::Catalog(format!("{table} lacks oid index")))?;
    let key = encode_composite_key(&[Value::Int(oid)]);
    let rids = catalog.table(tid).indexes[idx].btree.lookup(pool, &key)?;
    match rids.first() {
        Some(&rid) => {
            let row = catalog.get_row(pool, tid, rid)?;
            Ok(Some((rid, row[1].as_f64().unwrap_or(0.0))))
        }
        None => Ok(None),
    }
}

/// One iteration via the naive per-edge plan, instrumented.
pub fn naive_iteration(db: &mut Database, cfg: &DistillConfig) -> DbResult<NaiveTiming> {
    let mut timing = NaiveTiming::default();

    // ---- UpdateHubs ----
    db.execute("delete from hubs")?;
    let t0 = Instant::now();
    let link_tid = db.table_id("link")?;
    let links: Vec<Vec<Value>> = {
        let (pool, catalog) = db.parts_mut();
        catalog
            .scan_table(pool, link_tid)?
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    };
    timing.scan += t0.elapsed();

    let hubs_tid = db.table_id("hubs")?;
    for row in &links {
        let sid_src = row[1].as_i64().unwrap_or(0);
        let sid_dst = row[3].as_i64().unwrap_or(0);
        if cfg.nepotism_filter && sid_src == sid_dst {
            continue;
        }
        let oid_src = row[0].as_i64().unwrap_or(0);
        let oid_dst = row[2].as_i64().unwrap_or(0);
        let wgt_rev = if cfg.weighted_edges {
            row[5].as_f64().unwrap_or(0.0)
        } else {
            1.0
        };
        let t1 = Instant::now();
        let a = lookup_score(db, "auth", oid_dst)?;
        timing.lookup += t1.elapsed();
        let Some((_, a_score)) = a else { continue };
        let t2 = Instant::now();
        let existing = lookup_score(db, "hubs", oid_src)?;
        match existing {
            Some((rid, h)) => {
                let (pool, catalog) = db.parts_mut();
                catalog.update_row(
                    pool,
                    hubs_tid,
                    rid,
                    vec![Value::Int(oid_src), Value::Float(h + a_score * wgt_rev)],
                )?;
            }
            None => {
                db.insert(
                    hubs_tid,
                    vec![Value::Int(oid_src), Value::Float(a_score * wgt_rev)],
                )?;
            }
        }
        timing.update += t2.elapsed();
    }
    let t3 = Instant::now();
    db.execute("update hubs set (score) = score / (select sum(score) from hubs)")?;
    timing.update += t3.elapsed();

    // ---- UpdateAuth ----
    db.execute("delete from auth")?;
    let auth_tid = db.table_id("auth")?;
    for row in &links {
        let sid_src = row[1].as_i64().unwrap_or(0);
        let sid_dst = row[3].as_i64().unwrap_or(0);
        if cfg.nepotism_filter && sid_src == sid_dst {
            continue;
        }
        let oid_src = row[0].as_i64().unwrap_or(0);
        let oid_dst = row[2].as_i64().unwrap_or(0);
        let wgt_fwd = if cfg.weighted_edges {
            row[4].as_f64().unwrap_or(0.0)
        } else {
            1.0
        };
        let t1 = Instant::now();
        let rel = lookup_score(db, "crawl", oid_dst)?;
        timing.lookup += t1.elapsed();
        let rel_v = rel.map_or(0.0, |(_, r)| r);
        if rel_v <= cfg.rho {
            continue;
        }
        let t1 = Instant::now();
        let h = lookup_score(db, "hubs", oid_src)?;
        timing.lookup += t1.elapsed();
        let Some((_, h_score)) = h else { continue };
        let t2 = Instant::now();
        match lookup_score(db, "auth", oid_dst)? {
            Some((rid, a)) => {
                let (pool, catalog) = db.parts_mut();
                catalog.update_row(
                    pool,
                    auth_tid,
                    rid,
                    vec![Value::Int(oid_dst), Value::Float(a + h_score * wgt_fwd)],
                )?;
            }
            None => {
                db.insert(
                    auth_tid,
                    vec![Value::Int(oid_dst), Value::Float(h_score * wgt_fwd)],
                )?;
            }
        }
        timing.update += t2.elapsed();
    }
    let t3 = Instant::now();
    db.execute("update auth set (score) = score / (select sum(score) from auth)")?;
    timing.update += t3.elapsed();
    Ok(timing)
}

/// Full distillation via the join path; returns sorted scores.
pub fn run(db: &mut Database, cfg: &DistillConfig) -> DbResult<DistillResult> {
    init_auth_uniform(db)?;
    for _ in 0..cfg.iterations {
        join_iteration(db, cfg)?;
    }
    read_result(db)
}

/// Full distillation via the naive path (same semantics, different plan).
pub fn run_naive(db: &mut Database, cfg: &DistillConfig) -> DbResult<(DistillResult, NaiveTiming)> {
    init_auth_uniform(db)?;
    let mut total = NaiveTiming::default();
    for _ in 0..cfg.iterations {
        let t = naive_iteration(db, cfg)?;
        total.scan += t.scan;
        total.lookup += t.lookup;
        total.update += t.update;
    }
    Ok((read_result(db)?, total))
}

/// Read back `HUBS`/`AUTH` sorted by score descending.
pub fn read_result(db: &mut Database) -> DbResult<DistillResult> {
    let to_vec = |rs: minirel::ResultSet| -> Vec<(Oid, f64)> {
        rs.rows
            .into_iter()
            .map(|r| {
                (
                    i64_to_oid(r[0].as_i64().unwrap_or(0)),
                    r[1].as_f64().unwrap_or(0.0),
                )
            })
            .collect()
    };
    let hubs = to_vec(db.execute("select oid, score from hubs order by score desc, oid")?);
    let auths = to_vec(db.execute("select oid, score from auth order by score desc, oid")?);
    Ok(DistillResult { hubs, auths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{edges_from_links, WeightedHits};

    fn fixture() -> (Vec<LinkEdge>, FxHashMap<Oid, f64>) {
        let mut rel: FxHashMap<Oid, f64> = FxHashMap::default();
        for (o, r) in [
            (1u64, 0.8),
            (2, 0.7),
            (3, 0.6),
            (10, 0.9),
            (11, 0.85),
            (20, 0.01),
            (30, 0.9),
            (31, 0.9),
        ] {
            rel.insert(Oid(o), r);
        }
        let links = vec![
            (Oid(1), 100, Oid(10), 200),
            (Oid(1), 100, Oid(11), 201),
            (Oid(2), 101, Oid(10), 200),
            (Oid(2), 101, Oid(11), 201),
            (Oid(3), 102, Oid(20), 202),
            (Oid(30), 300, Oid(31), 300),
        ];
        (edges_from_links(&links, &rel), rel)
    }

    fn setup(edges: &[LinkEdge], rel: &FxHashMap<Oid, f64>) -> Database {
        let mut db = Database::in_memory();
        create_tables(&mut db).unwrap();
        create_crawl_stub(&mut db, rel).unwrap();
        load_links(&mut db, edges).unwrap();
        db
    }

    fn assert_scores_match(a: &DistillResult, b: &DistillResult, what: &str) {
        assert_eq!(a.hubs.len(), b.hubs.len(), "{what}: hub count");
        assert_eq!(a.auths.len(), b.auths.len(), "{what}: auth count");
        for (oid, s) in &a.hubs {
            let t = b.hub_score(*oid);
            assert!((s - t).abs() < 1e-9, "{what}: hub {oid} {s} vs {t}");
        }
        for (oid, s) in &a.auths {
            let t = b
                .auths
                .iter()
                .find(|(o, _)| o == oid)
                .map(|(_, x)| *x)
                .unwrap_or(0.0);
            assert!((s - t).abs() < 1e-9, "{what}: auth {oid} {s} vs {t}");
        }
    }

    #[test]
    fn join_path_matches_memory_path() {
        let (edges, rel) = fixture();
        let cfg = DistillConfig {
            iterations: 4,
            ..DistillConfig::default()
        };
        let mem = WeightedHits::new(&edges, &rel, cfg.clone()).run();
        let mut db = setup(&edges, &rel);
        let sql = run(&mut db, &cfg).unwrap();
        assert_scores_match(&mem, &sql, "join vs memory");
    }

    #[test]
    fn naive_path_matches_join_path() {
        let (edges, rel) = fixture();
        let cfg = DistillConfig {
            iterations: 3,
            ..DistillConfig::default()
        };
        let mut db1 = setup(&edges, &rel);
        let sql = run(&mut db1, &cfg).unwrap();
        let mut db2 = setup(&edges, &rel);
        let (naive, timing) = run_naive(&mut db2, &cfg).unwrap();
        assert_scores_match(&sql, &naive, "naive vs join");
        assert!(timing.total() > Duration::ZERO);
    }

    #[test]
    fn unweighted_ablation_flows_through_sql() {
        let (edges, rel) = fixture();
        let cfg = DistillConfig {
            iterations: 2,
            weighted_edges: false,
            ..DistillConfig::default()
        };
        let mem = WeightedHits::new(&edges, &rel, cfg.clone()).run();
        let mut db = setup(&edges, &rel);
        let sql = run(&mut db, &cfg).unwrap();
        assert_scores_match(&mem, &sql, "unweighted join vs memory");
    }

    #[test]
    fn naive_timing_breakdown_is_populated() {
        let (edges, rel) = fixture();
        let mut db = setup(&edges, &rel);
        init_auth_uniform(&mut db).unwrap();
        let t = naive_iteration(&mut db, &DistillConfig::default()).unwrap();
        assert!(t.lookup > Duration::ZERO, "lookups must be measured");
        assert!(t.update > Duration::ZERO, "updates must be measured");
    }

    #[test]
    fn empty_link_table_is_benign() {
        let rel = FxHashMap::default();
        let mut db = Database::in_memory();
        create_tables(&mut db).unwrap();
        create_crawl_stub(&mut db, &rel).unwrap();
        let r = run(&mut db, &DistillConfig::default()).unwrap();
        assert!(r.hubs.is_empty());
        assert!(r.auths.is_empty());
    }
}
