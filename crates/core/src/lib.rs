//! # focus
//!
//! Public facade of the **Focus** resource-discovery system — a Rust
//! reproduction of *"Distributed Hypertext Resource Discovery Through
//! Examples"* (Chakrabarti, van den Berg, Dom; VLDB 1999).
//!
//! The system discovers topic-specific web subgraphs by example: the user
//! marks *good* topics in a taxonomy and supplies example documents; a
//! hierarchical Bayesian **classifier** steers a multi-threaded
//! **crawler** (radius-1 rule), while a relevance-weighted HITS
//! **distiller** identifies hubs to revisit and boost (radius-2 rule).
//! All crawl state lives in **minirel**, a small relational engine, so
//! ad-hoc SQL can monitor and re-steer a live crawl.
//!
//! ```
//! use focus::prelude::*;
//! use std::sync::Arc;
//!
//! // A tiny synthetic web (the paper crawled the 1999 Web).
//! let graph = Arc::new(WebGraph::generate(WebConfig::tiny(7)));
//! let fetcher = Arc::new(SimFetcher::new(Arc::clone(&graph), None));
//!
//! // Administration: mark "recreation/cycling" good, give examples.
//! let mut builder = FocusBuilder::new(graph.taxonomy().clone());
//! let cycling = builder.mark_good_by_name("recreation/cycling").unwrap();
//! for topic in builder.taxonomy().all().collect::<Vec<_>>() {
//!     if topic != focus::ClassId::ROOT {
//!         builder.add_examples(topic, graph.example_docs(topic, 4, 1));
//!     }
//! }
//!
//! // Train, then start a *controllable* crawl in the background.
//! let system = builder
//!     .crawl_config(CrawlConfig { max_fetches: 150, threads: 1, ..Default::default() })
//!     .build(fetcher)
//!     .unwrap();
//! let seeds = focus::search::topic_start_set(&graph, cycling, 10);
//! let mut run = system.start(&seeds).unwrap();
//!
//! // Watch it live (events), steer it (pause/mark_topic/add_seeds),
//! // snapshot it (stats/checkpoint) — then take the classic outcome.
//! let events = run.take_events().unwrap();
//! let outcome = run.join().unwrap();
//! assert!(outcome.stats.successes > 0);
//! let classified = events
//!     .filter(|e| matches!(e, DiscoveryEvent::PageClassified { .. }))
//!     .count() as u64;
//! assert_eq!(classified, outcome.stats.successes);
//! ```

#![forbid(unsafe_code)]

pub mod admin;
pub mod system;

pub use admin::FocusBuilder;
pub use system::{
    ClusterRun, ClusterSnapshot, DiscoveryEvent, DiscoveryOutcome, DiscoveryRun, DiscoverySnapshot,
    FocusSystem, RunOptions,
};

// Re-export the subsystem vocabulary so downstream users need one crate.
pub use focus_classifier::compiled::{CompiledModel, EvalSummary, Scratch};
pub use focus_classifier::model::{Posterior, TrainedModel};
pub use focus_classifier::train::TrainConfig;
pub use focus_crawler::cluster::CrawlCluster;
pub use focus_crawler::events::{CrawlEvent, CrawlObserver, EventStream};
pub use focus_crawler::run::RunState;
pub use focus_crawler::session::{CrawlConfig, CrawlSession, CrawlStats, Durability};
pub use focus_crawler::CrawlPolicy;
pub use focus_distiller::{DistillConfig, DistillResult};
pub use focus_types::{
    ClassId, DocId, Document, FocusError, Oid, ServerId, Taxonomy, TermId, TermVec,
};
pub use focus_webgraph::search;
pub use focus_webgraph::{Fetcher, SimFetcher, WebConfig, WebGraph};
pub use minirel::{Database, Replica};

/// Everything a quickstart needs.
pub mod prelude {
    pub use crate::admin::FocusBuilder;
    pub use crate::system::{
        ClusterRun, ClusterSnapshot, DiscoveryEvent, DiscoveryOutcome, DiscoveryRun,
        DiscoverySnapshot, FocusSystem, RunOptions,
    };
    pub use focus_crawler::events::{CrawlEvent, CrawlObserver};
    pub use focus_crawler::run::RunState;
    pub use focus_crawler::session::CrawlConfig;
    pub use focus_crawler::CrawlPolicy;
    pub use focus_types::{ClassId, Taxonomy};
    pub use focus_webgraph::{SimFetcher, WebConfig, WebGraph};
}
