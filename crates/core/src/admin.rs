//! Administration: the setup phase where the user expresses interest by
//! example (§1.1) — a taxonomy, good-topic marks, and `D(c)` documents.

use crate::system::FocusSystem;
use focus_classifier::train::{train, TrainConfig};
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_types::{ClassId, Document, FocusError, Taxonomy};
use focus_webgraph::Fetcher;
use std::sync::Arc;

/// Builder for a configured [`FocusSystem`].
pub struct FocusBuilder {
    taxonomy: Taxonomy,
    examples: Vec<(ClassId, Document)>,
    train_cfg: TrainConfig,
    crawl_cfg: CrawlConfig,
}

impl FocusBuilder {
    /// Start from a topic taxonomy.
    pub fn new(taxonomy: Taxonomy) -> FocusBuilder {
        FocusBuilder {
            taxonomy,
            examples: Vec::new(),
            train_cfg: TrainConfig::default(),
            crawl_cfg: CrawlConfig::default(),
        }
    }

    /// The taxonomy under administration.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Mark a topic good (enforces the §1.1 nesting constraint).
    pub fn mark_good(&mut self, c: ClassId) -> Result<(), FocusError> {
        self.taxonomy.mark_good(c)
    }

    /// Mark a topic good by its name; returns its id.
    pub fn mark_good_by_name(&mut self, name: &str) -> Result<ClassId, FocusError> {
        let c = self
            .taxonomy
            .find(name)
            .ok_or_else(|| FocusError::InvalidTaxonomy(format!("no topic named {name}")))?;
        self.taxonomy.mark_good(c)?;
        Ok(c)
    }

    /// Attach example documents `D(c)` to a topic.
    pub fn add_examples(&mut self, c: ClassId, docs: impl IntoIterator<Item = Document>) {
        self.examples.extend(docs.into_iter().map(|d| (c, d)));
    }

    /// Override training parameters.
    pub fn train_config(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = cfg;
        self
    }

    /// Override crawl parameters.
    pub fn crawl_config(mut self, cfg: CrawlConfig) -> Self {
        self.crawl_cfg = cfg;
        self
    }

    /// Train the classifier and assemble the system.
    pub fn build(self, fetcher: Arc<dyn Fetcher>) -> Result<FocusSystem, FocusError> {
        if self.taxonomy.good_set().is_empty() {
            return Err(FocusError::Config(
                "mark at least one good topic before building".into(),
            ));
        }
        if self.examples.is_empty() {
            return Err(FocusError::Config("no example documents supplied".into()));
        }
        let model = train(&self.taxonomy, &self.examples, &self.train_cfg);
        let session = Arc::new(CrawlSession::new(
            Arc::clone(&fetcher),
            model.clone(),
            self.crawl_cfg.clone(),
        )?);
        Ok(FocusSystem::new(model, session, self.crawl_cfg, fetcher))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_types::{DocId, TermId, TermVec};
    use focus_webgraph::{SimFetcher, WebConfig, WebGraph};

    fn doc(i: u64, t: u32) -> Document {
        Document::new(DocId(i), TermVec::from_counts([(TermId(t), 3)]))
    }

    #[test]
    fn rejects_empty_goods_and_examples() {
        let g = WebGraph::generate(WebConfig::tiny(1));
        let fetcher: Arc<dyn Fetcher> = Arc::new(SimFetcher::new(Arc::new(g), None));
        let mut t = Taxonomy::new("root");
        let a = t.add_child(ClassId::ROOT, "a").unwrap();

        let b1 = FocusBuilder::new(t.clone());
        assert!(matches!(
            b1.build(Arc::clone(&fetcher)),
            Err(FocusError::Config(_))
        ));

        let mut b2 = FocusBuilder::new(t.clone());
        b2.mark_good(a).unwrap();
        assert!(matches!(b2.build(fetcher), Err(FocusError::Config(_))));
    }

    #[test]
    fn builds_with_goods_and_examples() {
        let g = WebGraph::generate(WebConfig::tiny(2));
        let fetcher: Arc<dyn Fetcher> = Arc::new(SimFetcher::new(Arc::new(g), None));
        let mut t = Taxonomy::new("root");
        let a = t.add_child(ClassId::ROOT, "a").unwrap();
        let b = t.add_child(ClassId::ROOT, "b").unwrap();
        let mut builder = FocusBuilder::new(t);
        builder.mark_good(a).unwrap();
        builder.add_examples(a, (0..4).map(|i| doc(i, 10)));
        builder.add_examples(b, (4..8).map(|i| doc(i, 20)));
        let system = builder.build(fetcher).unwrap();
        assert!(system.model().num_nodes() > 0);
    }

    #[test]
    fn mark_good_by_name_errors_on_unknown() {
        let mut b = FocusBuilder::new(Taxonomy::new("root"));
        assert!(b.mark_good_by_name("nope").is_err());
    }
}
