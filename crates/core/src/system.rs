//! The assembled resource-discovery system and its live run handle.
//!
//! The paper's defining workflow is *interactive* (§1.1, §3.7): an
//! administrator starts a crawl, watches harvest, marks topics good or
//! bad, injects seeds, and re-steers the frontier — all against a
//! long-lived run. [`FocusSystem::start`] spawns that run in the
//! background and returns a [`DiscoveryRun`]: a typed event stream,
//! control commands, snapshots, and `join()` for the classic blocking
//! outcome. [`FocusSystem::discover`] survives as a deprecated wrapper
//! (`start(seeds)?.join()`).

use focus_classifier::model::TrainedModel;
use focus_crawler::cluster::{ClusterCheckpoint, CrawlCluster};
use focus_crawler::events::EventStream;
use focus_crawler::run::{CrawlRun, RunState, StartOptions};
use focus_crawler::session::{CrawlCheckpoint, CrawlConfig, CrawlSession, CrawlStats};
use focus_crawler::CrawlPolicy;
use focus_distiller::DistillResult;
use focus_types::{ClassId, FocusError, Oid, ServerId};
use focus_webgraph::Fetcher;
use minirel::Database;
use std::sync::Arc;

/// Everything a crawl needs to continue in a fresh session or process:
/// the frontier, relevance state, link graph, stats, remaining budget,
/// live policy, and good marking. Produced by
/// [`DiscoveryRun::checkpoint`], consumed by [`FocusSystem::resume`].
pub type DiscoverySnapshot = CrawlCheckpoint;

/// One [`DiscoverySnapshot`] per shard plus the manifest (shard count
/// and order). Produced by [`ClusterRun::checkpoint`], consumed by
/// [`FocusSystem::resume_cluster`].
pub type ClusterSnapshot = ClusterCheckpoint;

/// Options for [`FocusSystem::start_with`].
pub type RunOptions = StartOptions;

/// What a discovery run produces.
#[derive(Debug, Clone)]
pub struct DiscoveryOutcome {
    /// Crawl counters and the harvest series.
    pub stats: CrawlStats,
    /// Final distillation (top hubs/authorities of the discovered
    /// subgraph).
    pub distill: DistillResult,
    /// Visited pages as `(oid, linear R, server)`.
    pub visited: Vec<(Oid, f64, ServerId)>,
}

/// A trained, crawl-ready Focus instance.
pub struct FocusSystem {
    model: TrainedModel,
    session: Arc<CrawlSession>,
    cfg: CrawlConfig,
    fetcher: Arc<dyn Fetcher>,
}

impl FocusSystem {
    pub(crate) fn new(
        model: TrainedModel,
        session: Arc<CrawlSession>,
        cfg: CrawlConfig,
        fetcher: Arc<dyn Fetcher>,
    ) -> Self {
        FocusSystem {
            model,
            session,
            cfg,
            fetcher,
        }
    }

    /// The trained classifier **as built**. A live `mark_topic` changes
    /// the *session's* copy; see [`CrawlSession::with_model`].
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The compiled inference engine serving the crawl hot path — a
    /// consistent snapshot under the *live* marking (it tracks
    /// `mark_topic`, unlike [`FocusSystem::model`]). Pair with a
    /// per-thread [`focus_classifier::compiled::Scratch`] to classify
    /// documents exactly as — and as fast as — the crawl does.
    pub fn compiled(&self) -> std::sync::Arc<focus_classifier::CompiledModel> {
        self.session.compiled()
    }

    /// The crawl configuration in effect.
    pub fn config(&self) -> &CrawlConfig {
        &self.cfg
    }

    /// The live crawl session (seed/monitor piecemeal).
    pub fn session(&self) -> &Arc<CrawlSession> {
        &self.session
    }

    /// Seed with `D(C*)` and spawn the crawl in the background, returning
    /// the steering handle.
    pub fn start(&self, seeds: &[Oid]) -> Result<DiscoveryRun, FocusError> {
        self.start_with(seeds, RunOptions::default())
    }

    /// [`FocusSystem::start`] with an explicit event-channel capacity and
    /// observers.
    pub fn start_with(&self, seeds: &[Oid], opts: RunOptions) -> Result<DiscoveryRun, FocusError> {
        self.session.seed(seeds)?;
        let run = self.session.start_with(opts)?;
        Ok(DiscoveryRun { run })
    }

    /// Seed with `D(C*)` and crawl to the configured budget; ends with a
    /// final distillation.
    #[deprecated(note = "use start() for a controllable run; this is start(seeds)?.join()")]
    pub fn discover(&self, seeds: &[Oid]) -> Result<DiscoveryOutcome, FocusError> {
        self.start(seeds)?.join()
    }

    /// Rebuild a system around a [`DiscoverySnapshot`], so a checkpointed
    /// crawl resumes in a fresh session: frontier, stats, budget, link
    /// graph, and good marking all carry over. Call
    /// [`FocusSystem::start`] with no (or extra) seeds to continue.
    pub fn resume(&self, snapshot: &DiscoverySnapshot) -> Result<FocusSystem, FocusError> {
        let session = Arc::new(CrawlSession::restore(
            Arc::clone(&self.fetcher),
            self.model.clone(),
            self.cfg.clone(),
            snapshot,
        )?);
        Ok(FocusSystem {
            model: self.model.clone(),
            session,
            cfg: self.cfg.clone(),
            fetcher: Arc::clone(&self.fetcher),
        })
    }

    /// Ad-hoc SQL against the live crawl database with **exclusive**
    /// access (DDL/DML). Blocks workers for the duration; monitoring
    /// SELECTs should use [`FocusSystem::sql`] or
    /// [`FocusSystem::with_db_read`], which run concurrently with the
    /// crawl.
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.session.with_db(f)
    }

    /// Read-only access to the live crawl database, concurrent with the
    /// crawl and with other monitors (§3.7 monitoring).
    pub fn with_db_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        self.session.with_db_read(f)
    }

    /// Ad-hoc SQL against the live session: SELECTs run under the read
    /// lock (never stalling the crawl); other statements escalate to
    /// exclusive access.
    pub fn sql(&self, sql: &str) -> Result<minirel::ResultSet, FocusError> {
        Ok(self.session.sql(sql)?)
    }

    /// Build a sharded crawl cluster from this system's model and
    /// configuration: `n_shards` independent sessions partitioned by
    /// `host_server_id(url) % n_shards`, with the configured worker
    /// count and fetch budget split across shards. Seed and start it
    /// yourself, or use [`FocusSystem::start_cluster`] for the one-call
    /// path.
    pub fn build_cluster(&self, n_shards: usize) -> Result<CrawlCluster, FocusError> {
        Ok(CrawlCluster::new(
            n_shards,
            Arc::clone(&self.fetcher),
            self.model.clone(),
            self.cfg.clone(),
        )?)
    }

    /// Seed `D(C*)` across the shards of a fresh `n_shards`-way cluster
    /// and start every shard's worker pool, returning the cluster
    /// steering handle. The cluster is independent of this system's own
    /// session ([`FocusSystem::start`] remains usable separately).
    pub fn start_cluster(&self, n_shards: usize, seeds: &[Oid]) -> Result<ClusterRun, FocusError> {
        let cluster = self.build_cluster(n_shards)?;
        cluster.seed(seeds)?;
        let run = cluster.start()?;
        Ok(ClusterRun { cluster, run })
    }

    /// Rebuild a cluster from a [`ClusterSnapshot`] (shard count comes
    /// from the manifest). Call [`CrawlCluster::start`] — optionally
    /// after raising per-shard budgets — to continue the crawl.
    pub fn resume_cluster(&self, snapshot: &ClusterSnapshot) -> Result<CrawlCluster, FocusError> {
        Ok(CrawlCluster::restore(
            Arc::clone(&self.fetcher),
            self.model.clone(),
            self.cfg.clone(),
            snapshot,
        )?)
    }
}

/// A live sharded discovery run: the admin console of [`DiscoveryRun`],
/// fanned out over every shard of a [`CrawlCluster`].
///
/// Control commands broadcast (`pause`/`resume`/`stop`, `mark_topic`) or
/// route by owner (`add_seeds`); snapshots sum counters and merge the
/// harvest series. Obtained from [`FocusSystem::start_cluster`].
pub struct ClusterRun {
    cluster: CrawlCluster,
    run: focus_crawler::cluster::ClusterRun,
}

impl ClusterRun {
    /// The underlying cluster (per-shard sessions, monitoring SQL).
    pub fn cluster(&self) -> &CrawlCluster {
        &self.cluster
    }

    /// Take shard `i`'s event stream (callable once per shard).
    pub fn take_events(&mut self, shard: usize) -> Option<EventStream> {
        self.run.take_events(shard)
    }

    /// Pause every shard (latency: one page per shard).
    pub fn pause(&self) {
        self.run.pause()
    }

    /// Release every shard.
    pub fn resume(&self) {
        self.run.resume()
    }

    /// Wind every shard down; [`ClusterRun::join`] then returns promptly.
    pub fn stop(&self) {
        self.run.stop()
    }

    /// Broadcast a §3.7 re-mark to every shard: each recompiles its
    /// classifier and re-steers its own frontier.
    pub fn mark_topic(&self, class: ClassId, good: bool) {
        self.run.mark_topic(class, good)
    }

    /// [`ClusterRun::mark_topic`] by topic name.
    pub fn mark_topic_by_name(&self, name: &str, good: bool) -> Result<ClassId, FocusError> {
        let class = self
            .cluster
            .find_topic(name)
            .ok_or_else(|| FocusError::InvalidTaxonomy(format!("no topic named {name}")))?;
        self.run.mark_topic(class, good);
        Ok(class)
    }

    /// Inject seeds, each routed to its owning shard.
    pub fn add_seeds(&self, seeds: &[Oid]) {
        self.run.add_seeds(seeds)
    }

    /// Raise the cluster-wide budget (split across shards).
    pub fn add_budget(&self, extra: u64) {
        self.run.add_budget(extra)
    }

    /// Summed counters + merged harvest series across shards.
    pub fn stats(&self) -> CrawlStats {
        self.run.stats()
    }

    /// Have all shards' workers exited?
    pub fn is_finished(&self) -> bool {
        self.run.is_finished()
    }

    /// Checkpoint every shard (pause first for stability).
    pub fn checkpoint(&self) -> Result<ClusterSnapshot, FocusError> {
        Ok(self.run.checkpoint()?)
    }

    /// Visited pages across all shards as `(oid, linear R, server)`.
    pub fn visited(&self) -> Vec<(Oid, f64, ServerId)> {
        self.cluster
            .shards()
            .iter()
            .flat_map(|s| s.visited())
            .collect()
    }

    /// Wait for every shard and return merged stats; any shard's
    /// failure fails the cluster.
    pub fn join(self) -> Result<CrawlStats, FocusError> {
        Ok(self.run.join()?)
    }
}

/// A live discovery run: the paper's admin console as an API.
///
/// Obtained from [`FocusSystem::start`]. Control commands are applied by
/// the worker pool at page boundaries; snapshots and ad-hoc SQL are
/// served from the shared session. Consume the handle with
/// [`DiscoveryRun::join`] to get the classic [`DiscoveryOutcome`].
pub struct DiscoveryRun {
    run: CrawlRun,
}

impl DiscoveryRun {
    /// Take ownership of the typed event stream (callable once; iterate
    /// it from a monitoring thread — it ends when the run finishes).
    pub fn take_events(&mut self) -> Option<EventStream> {
        self.run.take_events()
    }

    /// Borrow the event stream, if not yet taken.
    pub fn events(&self) -> Option<&EventStream> {
        self.run.events()
    }

    /// Events dropped because the bounded channel was full.
    pub fn events_dropped(&self) -> u64 {
        self.run.events_dropped()
    }

    /// Hold workers after in-flight fetches land; commands still apply.
    pub fn pause(&self) {
        self.run.pause()
    }

    /// Release paused workers.
    pub fn resume(&self) {
        self.run.resume()
    }

    /// Wind the run down; [`DiscoveryRun::join`] then returns promptly.
    pub fn stop(&self) {
        self.run.stop()
    }

    /// Inject new seeds into the live frontier at top priority.
    pub fn add_seeds(&self, seeds: &[Oid]) {
        self.run.add_seeds(seeds)
    }

    /// Raise the fetch budget of the live run.
    pub fn add_budget(&self, extra: u64) {
        self.run.add_budget(extra)
    }

    /// Switch the link-expansion policy for pages fetched from now on.
    pub fn set_policy(&self, policy: CrawlPolicy) {
        self.run.set_policy(policy)
    }

    /// Re-mark a topic and re-prioritize the frontier mid-crawl — the
    /// paper's "one update statement marking the ancestor good fixed this
    /// stagnation problem" (§3.7), as an API call.
    pub fn mark_topic(&self, class: ClassId, good: bool) {
        self.run.mark_topic(class, good)
    }

    /// [`DiscoveryRun::mark_topic`] by topic name.
    pub fn mark_topic_by_name(&self, name: &str, good: bool) -> Result<ClassId, FocusError> {
        let class = self
            .run
            .find_topic(name)
            .ok_or_else(|| FocusError::InvalidTaxonomy(format!("no topic named {name}")))?;
        self.run.mark_topic(class, good);
        Ok(class)
    }

    /// Force a distillation pass at the next page boundary.
    pub fn distill(&self) {
        self.run.distill()
    }

    /// Distill synchronously and return the result (bypasses the command
    /// queue; runs on the caller's thread).
    pub fn distill_now(&self) -> Result<DistillResult, FocusError> {
        Ok(self.run.session().distill_now()?)
    }

    /// Stats snapshot of the live run.
    pub fn stats(&self) -> CrawlStats {
        self.run.stats()
    }

    /// Lifecycle as seen from the handle.
    pub fn state(&self) -> RunState {
        self.run.state()
    }

    /// Have all workers exited?
    pub fn is_finished(&self) -> bool {
        self.run.is_finished()
    }

    /// Capture frontier + relevance state for [`FocusSystem::resume`].
    /// Pause first for a snapshot stable against the run advancing.
    pub fn checkpoint(&self) -> Result<DiscoverySnapshot, FocusError> {
        Ok(self.run.checkpoint()?)
    }

    /// Ad-hoc SQL against the live crawl database with **exclusive**
    /// access (applied at a page boundary; blocks workers while held).
    /// Monitoring SELECTs should prefer [`DiscoveryRun::sql`] or
    /// [`DiscoveryRun::with_db_read`].
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.run.session().with_db(f)
    }

    /// Read-only access to the live crawl database, concurrent with the
    /// crawl and with other monitors (§3.7 monitoring).
    pub fn with_db_read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        self.run.session().with_db_read(f)
    }

    /// Ad-hoc SQL against the live run — the paper's §3.7 console.
    /// SELECTs take the store's read lock and run *while the crawl
    /// runs*; DDL/DML escalates to exclusive access.
    pub fn sql(&self, sql: &str) -> Result<minirel::ResultSet, FocusError> {
        Ok(self.run.session().sql(sql)?)
    }

    /// The compiled classifier snapshot currently steering this run
    /// (tracks live `mark_topic` re-marks).
    pub fn compiled(&self) -> Arc<focus_classifier::CompiledModel> {
        self.run.session().compiled()
    }

    /// The underlying session (shared with the [`FocusSystem`]).
    pub fn session(&self) -> &Arc<CrawlSession> {
        self.run.session()
    }

    /// Wait for the worker pool, then run a final distillation — the
    /// classic blocking semantics `discover()` always had. Worker panics
    /// surface as [`FocusError::Worker`].
    pub fn join(self) -> Result<DiscoveryOutcome, FocusError> {
        let session = Arc::clone(self.run.session());
        let stats = self.run.join()?;
        let distill = session.distill_now()?;
        Ok(DiscoveryOutcome {
            stats,
            distill,
            visited: session.visited(),
        })
    }
}

// Re-export the event vocabulary next to the run handle that produces it.
pub use focus_crawler::events::CrawlEvent as DiscoveryEvent;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::FocusBuilder;
    use focus_crawler::session::CrawlConfig;
    use focus_types::ClassId;
    use focus_webgraph::{SimFetcher, WebConfig, WebGraph};
    use std::sync::Arc;

    fn cycling_system(seed: u64, budget: u64) -> (Arc<WebGraph>, FocusSystem, ClassId) {
        let graph = Arc::new(WebGraph::generate(WebConfig::tiny(seed)));
        let fetcher = Arc::new(SimFetcher::new(Arc::clone(&graph), None));
        let mut builder = FocusBuilder::new(graph.taxonomy().clone());
        let cycling = builder.mark_good_by_name("recreation/cycling").unwrap();
        let topics: Vec<ClassId> = builder.taxonomy().all().collect();
        for c in topics {
            if c != ClassId::ROOT {
                builder.add_examples(c, graph.example_docs(c, 5, 3));
            }
        }
        let system = builder
            .crawl_config(CrawlConfig {
                max_fetches: budget,
                threads: 2,
                distill_every: Some(120),
                ..CrawlConfig::default()
            })
            .build(fetcher)
            .unwrap();
        (graph, system, cycling)
    }

    #[test]
    fn end_to_end_discovery_via_start_join() {
        let (graph, system, cycling) = cycling_system(17, 300);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 12);
        let outcome = system.start(&seeds).unwrap().join().unwrap();
        assert!(outcome.stats.successes > 50);
        assert!(!outcome.distill.hubs.is_empty(), "final distillation ran");
        assert!(!outcome.visited.is_empty());
        // Monitoring works against the same database.
        let n = system.with_db(|db| {
            db.execute("select count(*) from crawl")
                .unwrap()
                .scalar_i64()
                .unwrap()
        });
        assert!(n > 0);
        // The discovered subgraph is topical: mean harvest well above the
        // base rate of cycling pages in the web (~1/27 topics).
        assert!(outcome.stats.mean_harvest() > 0.2);
    }

    #[test]
    fn deprecated_discover_still_works() {
        let (graph, system, cycling) = cycling_system(23, 150);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 10);
        #[allow(deprecated)]
        let outcome = system.discover(&seeds).unwrap();
        assert!(outcome.stats.successes > 20);
        assert_eq!(outcome.stats.attempts, 150);
    }

    #[test]
    fn events_flow_while_running() {
        let (graph, system, cycling) = cycling_system(29, 200);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 10);
        let mut run = system.start(&seeds).unwrap();
        let events = run.take_events().unwrap();
        let outcome = run.join().unwrap();
        let all: Vec<DiscoveryEvent> = events.collect();
        let classified = all
            .iter()
            .filter(|e| matches!(e, DiscoveryEvent::PageClassified { .. }))
            .count() as u64;
        assert_eq!(classified, outcome.stats.successes);
        assert!(
            all.iter()
                .any(|e| matches!(e, DiscoveryEvent::BudgetExhausted { .. })),
            "budget-bounded run must announce exhaustion: {all:?}"
        );
    }

    #[test]
    fn checkpoint_resume_continues_the_crawl() {
        let (graph, system, cycling) = cycling_system(41, 120);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 10);
        let run = system.start(&seeds).unwrap();
        let outcome_stats = {
            let snapshot_run = run;
            // Let the budget run out, checkpoint the finished run.
            while !snapshot_run.is_finished() {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let snapshot = snapshot_run.checkpoint().unwrap();
            snapshot_run.join().unwrap();
            // Fresh session, +80 budget, no new seeds: the restored
            // frontier alone drives the continuation. The raise goes
            // through the session *before* start: the resumed run's
            // budget is already exhausted, so `CrawlRun::add_budget`
            // (a command drained at page boundaries) can lose the race
            // with the workers' immediate exit — its documented
            // semantics land the raise at join() for the *next* run,
            // which is not what this test wants to measure.
            let resumed = system.resume(&snapshot).unwrap();
            resumed.session().add_budget(80);
            let run2 = resumed.start(&[]).unwrap();
            run2.join().unwrap()
        };
        assert_eq!(
            outcome_stats.stats.attempts, 200,
            "120 checkpointed + 80 fresh"
        );
        assert!(outcome_stats.stats.successes > 0);
    }

    #[test]
    fn compiled_snapshot_tracks_live_remarking() {
        use focus_types::Mark;
        let (graph, system, cycling) = cycling_system(61, 100_000);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 8);
        let run = system.start(&seeds).unwrap();
        let before = run.compiled();
        let gardening = system.session().find_topic("home/gardening").unwrap();
        assert_eq!(before.taxonomy().mark(gardening), Mark::Null);
        run.mark_topic(gardening, true);
        // The swap lands when a worker drains the command queue at a
        // page boundary; poll for it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if run.compiled().taxonomy().mark(gardening) == Mark::Good {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "mark_topic never recompiled the model"
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        run.stop();
        run.join().unwrap();
        // The pre-remark snapshot is immutable: holders keep classifying
        // under the marking they captured.
        assert_eq!(before.taxonomy().mark(gardening), Mark::Null);
        assert_eq!(before.taxonomy().mark(cycling), Mark::Good);
    }

    #[test]
    fn start_cluster_discovers_and_checkpoints() {
        let (graph, system, cycling) = cycling_system(67, 240);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 12);
        let run = system.start_cluster(3, &seeds).unwrap();
        let snapshot = {
            while !run.is_finished() {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let snap = run.checkpoint().unwrap();
            let stats = run.join().unwrap();
            assert_eq!(stats.attempts, 240, "split budget spends exactly");
            assert!(stats.successes > 50);
            assert!(stats.mean_harvest() > 0.2, "cluster harvest collapsed");
            snap
        };
        assert_eq!(snapshot.shards.len(), 3);
        assert!(snapshot.visited_len() > 0);
        // Resume into a fresh cluster and continue against the same
        // frontier.
        let resumed = system.resume_cluster(&snapshot).unwrap();
        assert_eq!(resumed.stats().attempts, 240, "stats carried over");
        for shard in resumed.shards() {
            shard.add_budget(20);
        }
        let stats = resumed.run().unwrap();
        assert_eq!(stats.attempts, 300, "240 checkpointed + 3×20 fresh");
    }

    #[test]
    fn double_start_is_rejected() {
        let (graph, system, cycling) = cycling_system(53, 100_000);
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 8);
        let run = system.start(&seeds).unwrap();
        assert!(matches!(system.start(&[]), Err(FocusError::Config(_))));
        run.stop();
        run.join().unwrap();
        // After join the session is free again.
        let run2 = system.start(&[]).unwrap();
        run2.stop();
        run2.join().unwrap();
    }
}
