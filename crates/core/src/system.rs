//! The assembled resource-discovery system.

use focus_classifier::model::TrainedModel;
use focus_crawler::session::{CrawlConfig, CrawlSession, CrawlStats};
use focus_distiller::DistillResult;
use focus_types::{FocusError, Oid, ServerId};
use minirel::Database;

/// What a discovery run produces.
#[derive(Debug, Clone)]
pub struct DiscoveryOutcome {
    /// Crawl counters and the harvest series.
    pub stats: CrawlStats,
    /// Final distillation (top hubs/authorities of the discovered
    /// subgraph).
    pub distill: DistillResult,
    /// Visited pages as `(oid, linear R, server)`.
    pub visited: Vec<(Oid, f64, ServerId)>,
}

/// A trained, crawl-ready Focus instance.
pub struct FocusSystem {
    model: TrainedModel,
    session: CrawlSession,
    cfg: CrawlConfig,
}

impl FocusSystem {
    pub(crate) fn new(model: TrainedModel, session: CrawlSession, cfg: CrawlConfig) -> Self {
        FocusSystem { model, session, cfg }
    }

    /// The trained classifier.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The crawl configuration in effect.
    pub fn config(&self) -> &CrawlConfig {
        &self.cfg
    }

    /// The live crawl session (seed/run/monitor piecemeal).
    pub fn session(&self) -> &CrawlSession {
        &self.session
    }

    /// Seed with `D(C*)` and crawl to the configured budget; ends with a
    /// final distillation.
    pub fn discover(&self, seeds: &[Oid]) -> Result<DiscoveryOutcome, FocusError> {
        let err = |e: minirel::DbError| FocusError::Storage(e.to_string());
        self.session.seed(seeds).map_err(err)?;
        let stats = self.session.run().map_err(err)?;
        let distill = self.session.distill_now().map_err(err)?;
        Ok(DiscoveryOutcome { stats, distill, visited: self.session.visited() })
    }

    /// Ad-hoc SQL against the live crawl database (§3.7 monitoring).
    pub fn with_db<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        self.session.with_db(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::admin::FocusBuilder;
    use focus_crawler::session::CrawlConfig;
    use focus_types::ClassId;
    use focus_webgraph::{SimFetcher, WebConfig, WebGraph};
    use std::sync::Arc;

    #[test]
    fn end_to_end_discovery() {
        let graph = Arc::new(WebGraph::generate(WebConfig::tiny(17)));
        let fetcher = Arc::new(SimFetcher::new(Arc::clone(&graph), None));
        let mut builder = FocusBuilder::new(graph.taxonomy().clone());
        let cycling = builder.mark_good_by_name("recreation/cycling").unwrap();
        let topics: Vec<ClassId> = builder.taxonomy().all().collect();
        for c in topics {
            if c != ClassId::ROOT {
                builder.add_examples(c, graph.example_docs(c, 5, 3));
            }
        }
        let system = builder
            .crawl_config(CrawlConfig {
                max_fetches: 300,
                threads: 2,
                distill_every: Some(120),
                ..CrawlConfig::default()
            })
            .build(fetcher)
            .unwrap();
        let seeds = focus_webgraph::search::topic_start_set(&graph, cycling, 12);
        let outcome = system.discover(&seeds).unwrap();
        assert!(outcome.stats.successes > 50);
        assert!(!outcome.distill.hubs.is_empty(), "final distillation ran");
        assert!(!outcome.visited.is_empty());
        // Monitoring works against the same database.
        let n = system.with_db(|db| {
            db.execute("select count(*) from crawl").unwrap().scalar_i64().unwrap()
        });
        assert!(n > 0);
        // The discovered subgraph is topical: mean harvest well above the
        // base rate of cycling pages in the web (~1/27 topics).
        assert!(outcome.stats.mean_harvest() > 0.2);
    }
}
