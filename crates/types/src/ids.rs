//! Strongly-typed identifiers.
//!
//! The paper's storage layout (§2.1.3) fixes the widths: URLs are keyed by a
//! 64-bit hashed `oid`, terms by 32-bit hash codes (`tid`), and topic classes
//! by 16-bit ids (`cid`/`kcid`/`pcid`). Servers (`sid`) stand for the IP
//! address that served a page and are used by the distiller's nepotism
//! filter (`sid_src <> sid_dst`).

use crate::hash::{fx64, FX32_SEED};
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// 64-bit hashed key for a URL (`oid` in the paper's `CRAWL`, `LINK`,
    /// `HUBS` and `AUTH` tables).
    Oid,
    u64
);
id_type!(
    /// Server identifier (`sid`): the host that served a page. The paper
    /// uses the IP address; the simulator assigns one per synthetic host.
    ServerId,
    u32
);
id_type!(
    /// 32-bit term hash code (`tid`). The paper hashes terms to 32 bits
    /// rather than keeping a string dictionary.
    TermId,
    u32
);
id_type!(
    /// 16-bit topic/class id (`cid`; `pcid`/`kcid` for parent/kid roles).
    ClassId,
    u16
);
id_type!(
    /// Document id (`did`). Distinct from [`Oid`] so that training documents
    /// that never correspond to a crawled URL have their own key space.
    DocId,
    u64
);

impl Oid {
    /// Hash a URL string into its 64-bit `oid`, as the paper's crawler does
    /// before storing rows in `CRAWL`/`LINK`.
    pub fn of_url(url: &str) -> Oid {
        Oid(fx64(url.as_bytes()))
    }
}

impl TermId {
    /// Hash a token into its 32-bit `tid` (paper §2.1.3: "we use 32-bit
    /// hash codes for terms").
    pub fn of_token(token: &str) -> TermId {
        TermId((fx64(token.as_bytes()) ^ FX32_SEED as u64) as u32)
    }
}

impl ClassId {
    /// The root of every taxonomy. `Pr[root] = 1` by definition.
    pub const ROOT: ClassId = ClassId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_hash_is_stable_and_distinguishes() {
        let a = Oid::of_url("http://bike.example.org/links.htm");
        let b = Oid::of_url("http://bike.example.org/links.htm");
        let c = Oid::of_url("http://bike.example.org/other.htm");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn term_hash_fits_32_bits_and_is_stable() {
        let t1 = TermId::of_token("bicycling");
        let t2 = TermId::of_token("bicycling");
        assert_eq!(t1, t2);
        assert_ne!(TermId::of_token("velodrome"), t1);
    }

    #[test]
    fn display_and_raw_round_trip() {
        let c = ClassId(42);
        assert_eq!(c.raw(), 42);
        assert_eq!(format!("{c}"), "ClassId(42)");
        assert_eq!(ClassId::from(42u16), c);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Oid(3) < Oid(10));
        assert!(ClassId(1) < ClassId(2));
    }

    #[test]
    fn root_class_is_zero() {
        assert_eq!(ClassId::ROOT.raw(), 0);
    }
}
