//! Documents as sparse term-frequency vectors.
//!
//! The generative model of §2.1.1 treats a document as a bag of terms; the
//! `DOCUMENT` relation stores rows `(did, tid, freq(d,t))`. [`TermVec`] is
//! the in-memory form: term ids sorted ascending with positive counts,
//! which lets joins against `STAT_c0` stream in merge order.

use crate::ids::{DocId, TermId};
use serde::{Deserialize, Serialize};

/// Sparse term-frequency vector: `(tid, freq)` sorted by `tid`, freq > 0.
///
/// **Canonical-form invariant:** entries are strictly ascending in `tid`
/// with positive frequencies, established once at construction (every
/// constructor funnels through [`TermVec::from_counts`]). Downstream
/// consumers — the classifier's reference path, and especially the
/// compiled engine's merge-join against CSR term columns — rely on this
/// and never re-sort or re-deduplicate per node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermVec {
    entries: Vec<(TermId, u32)>,
}

impl TermVec {
    /// Build from arbitrary (possibly repeated, unsorted) term occurrences.
    ///
    /// Canonicalizes by sort + adjacent merge — no hash table, so the
    /// per-page tokenization path does one `O(n log n)` pass instead of
    /// `n` hash probes plus a sort of the map's spill.
    pub fn from_counts(counts: impl IntoIterator<Item = (TermId, u32)>) -> Self {
        let mut entries: Vec<(TermId, u32)> = counts.into_iter().filter(|&(_, c)| c > 0).collect();
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries.dedup_by(|cur, prev| {
            if cur.0 == prev.0 {
                prev.1 = prev.1.saturating_add(cur.1);
                true
            } else {
                false
            }
        });
        TermVec { entries }
    }

    /// Build from a token stream (each occurrence counts once).
    pub fn from_tokens<'a>(tokens: impl IntoIterator<Item = &'a str>) -> Self {
        Self::from_counts(tokens.into_iter().map(|t| (TermId::of_token(t), 1)))
    }

    /// Tokenize free text: lowercase alphanumeric runs of length ≥ 2,
    /// mirroring what the paper's crawler does before populating `DOCUMENT`.
    pub fn from_text(text: &str) -> Self {
        let lower = text.to_lowercase();
        let tokens = lower
            .split(|ch: char| !ch.is_alphanumeric())
            .filter(|tok| tok.len() >= 2);
        Self::from_tokens(tokens)
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.entries.len()
    }

    /// Document length `n(d)`: total term occurrences.
    pub fn len(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c as u64).sum()
    }

    /// True when the document has no terms.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `freq(d, t)`; 0 when absent.
    pub fn freq(&self, t: TermId) -> u32 {
        match self.entries.binary_search_by_key(&t, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Iterate `(tid, freq)` in ascending `tid` order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The canonical entries as a slice: strictly ascending `tid`,
    /// positive frequencies. The compiled classifier merge-joins this
    /// directly against its CSR term columns.
    pub fn as_slice(&self) -> &[(TermId, u32)] {
        &self.entries
    }

    /// Merge another vector into this one (summing frequencies).
    pub fn merge(&self, other: &TermVec) -> TermVec {
        TermVec::from_counts(self.iter().chain(other.iter()))
    }
}

impl FromIterator<(TermId, u32)> for TermVec {
    fn from_iter<I: IntoIterator<Item = (TermId, u32)>>(iter: I) -> Self {
        TermVec::from_counts(iter)
    }
}

/// A document ready for classification or indexing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// `did` key in the `DOCUMENT` relation.
    pub id: DocId,
    /// Sparse term frequencies.
    pub terms: TermVec,
}

impl Document {
    /// Pair an id with a term vector.
    pub fn new(id: DocId, terms: TermVec) -> Self {
        Document { id, terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_merged_sorted_and_positive() {
        let v = TermVec::from_counts([
            (TermId(9), 1),
            (TermId(3), 2),
            (TermId(9), 4),
            (TermId(1), 0), // dropped
        ]);
        assert_eq!(v.num_terms(), 2);
        assert_eq!(v.freq(TermId(9)), 5);
        assert_eq!(v.freq(TermId(3)), 2);
        assert_eq!(v.freq(TermId(1)), 0);
        assert_eq!(v.len(), 7);
        let tids: Vec<u32> = v.iter().map(|(t, _)| t.raw()).collect();
        assert!(tids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn construction_canonicalizes_unsorted_duplicates() {
        // The worst case a tokenizer can produce: interleaved repeats of
        // the same ids, out of order. One construction pass must leave
        // the canonical form the classifier paths rely on.
        let v = TermVec::from_counts([
            (TermId(7), 2),
            (TermId(3), 1),
            (TermId(7), 3),
            (TermId(3), 4),
            (TermId(7), 1),
        ]);
        assert_eq!(v.as_slice(), &[(TermId(3), 5), (TermId(7), 6)]);
        // Strictly ascending (no equal neighbors survive).
        assert!(v.as_slice().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn merging_duplicate_counts_saturates_instead_of_overflowing() {
        let v = TermVec::from_counts([(TermId(1), u32::MAX), (TermId(1), 10)]);
        assert_eq!(v.freq(TermId(1)), u32::MAX);
    }

    #[test]
    fn tokenizer_lowercases_and_splits() {
        let v = TermVec::from_text("Bicycling, BICYCLING; bike-riding 2nd a");
        // "a" filtered (len < 2); "bicycling" counted twice.
        assert_eq!(v.freq(TermId::of_token("bicycling")), 2);
        assert_eq!(v.freq(TermId::of_token("bike")), 1);
        assert_eq!(v.freq(TermId::of_token("riding")), 1);
        assert_eq!(v.freq(TermId::of_token("2nd")), 1);
        assert_eq!(v.freq(TermId::of_token("a")), 0);
    }

    #[test]
    fn empty_document() {
        let v = TermVec::from_text("! ?");
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn merge_sums_frequencies() {
        let a = TermVec::from_counts([(TermId(1), 1), (TermId(2), 2)]);
        let b = TermVec::from_counts([(TermId(2), 3), (TermId(4), 1)]);
        let m = a.merge(&b);
        assert_eq!(m.freq(TermId(1)), 1);
        assert_eq!(m.freq(TermId(2)), 5);
        assert_eq!(m.freq(TermId(4)), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let v: TermVec = [(TermId(5), 2)].into_iter().collect();
        assert_eq!(v.freq(TermId(5)), 2);
    }
}
