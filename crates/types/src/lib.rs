//! # focus-types
//!
//! Shared vocabulary of the Focus resource-discovery system (VLDB 1999
//! reproduction): strongly-typed identifiers, the topic taxonomy with the
//! paper's *good / path / subsumed / null* marking algebra, sparse term
//! vectors, and the hash functions the paper prescribes (64-bit URL `oid`s,
//! 32-bit term ids, 16-bit class ids).
//!
//! Everything downstream — the synthetic web, the classifier, the distiller,
//! the crawler, and the relational schemas — speaks these types.

#![forbid(unsafe_code)]

pub mod doc;
pub mod error;
pub mod hash;
pub mod ids;
pub mod taxonomy;

pub use doc::{Document, TermVec};
pub use error::{FocusError, Result};
pub use ids::{ClassId, DocId, Oid, ServerId, TermId};
pub use taxonomy::{Mark, Taxonomy, TaxonomyNode};
