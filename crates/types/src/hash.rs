//! A small, fast, deterministic byte hash (FxHash-style multiply-rotate).
//!
//! The paper stores terms under 32-bit hash codes and URLs under 64-bit
//! `oid`s; both must be *stable across runs* so that persisted minirel
//! tables remain valid. `std::collections::hash_map::DefaultHasher` is not
//! documented as stable, so we implement the well-known Fx polynomial here
//! (same construction rustc uses) rather than pull in another dependency.

/// Seed folded into 32-bit term hashes so that `tid` space is not a simple
/// truncation of `oid` space.
pub const FX32_SEED: u32 = 0x9e37_79b9;

const K: u64 = 0x517c_c1b7_2722_0a95;

/// 64-bit Fx hash of a byte string.
#[inline]
pub fn fx64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
        h = (h.rotate_left(5) ^ v).wrapping_mul(K);
    }
    let mut tail: u64 = 0;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    // Fold in the length so that "a" and "a\0" differ.
    h = (h.rotate_left(5) ^ tail).wrapping_mul(K);
    (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(K)
}

/// Combine two 64-bit hashes (used to key `(c0, t)` probes).
#[inline]
pub fn fx_combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(5) ^ b).wrapping_mul(K)
}

/// A `BuildHasher` for `HashMap`s on hot integer keys. FxHash is weak
/// against adversarial keys but this system only hashes its own ids.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

/// Streaming hasher implementing [`std::hash::Hasher`] over the Fx
/// polynomial.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = fx_combine(self.state, fx64(bytes));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = fx_combine(self.state, v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not a collision-resistance proof; a smoke test that nearby keys
        // spread out.
        let hs: std::collections::HashSet<u64> = (0..10_000u64)
            .map(|i| fx64(format!("url-{i}").as_bytes()))
            .collect();
        assert_eq!(hs.len(), 10_000);
    }

    #[test]
    fn length_is_folded_in() {
        assert_ne!(fx64(b"a"), fx64(b"a\0"));
        assert_ne!(fx64(b""), fx64(b"\0"));
    }

    #[test]
    fn hasher_streaming_matches_for_same_writes() {
        let b = FxBuildHasher;
        let mut h1 = b.build_hasher();
        let mut h2 = b.build_hasher();
        h1.write_u64(77);
        h2.write_u64(77);
        assert_eq!(h1.finish(), h2.finish());
        h1.write_u32(5);
        h2.write_u32(6);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn fx_map_usable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * i);
        }
        assert_eq!(m[&9], 81);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(fx_combine(1, 2), fx_combine(2, 1));
    }
}
