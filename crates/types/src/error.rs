//! Error type shared across the Focus crates.

use std::fmt;

/// Unified error for taxonomy/administration misuse and cross-crate plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FocusError {
    /// A class id was used that is not present in the taxonomy.
    UnknownClass(u16),
    /// Taxonomy structural violation (cycles, second parent, …).
    InvalidTaxonomy(String),
    /// The good-set constraint of §1.1 was violated: no good topic may be
    /// an ancestor of another good topic.
    NestedGoodTopics { ancestor: u16, descendant: u16 },
    /// Administration attempted on a frozen (already-trained) taxonomy.
    Frozen,
    /// Anything reported by the storage layer.
    Storage(String),
    /// A crawl worker thread panicked; the run's stats are partial.
    Worker(String),
    /// A configuration value was out of its legal range.
    Config(String),
}

impl From<minirel::DbError> for FocusError {
    fn from(e: minirel::DbError) -> FocusError {
        FocusError::Storage(e.to_string())
    }
}

impl fmt::Display for FocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocusError::UnknownClass(c) => write!(f, "unknown class id {c}"),
            FocusError::InvalidTaxonomy(m) => write!(f, "invalid taxonomy: {m}"),
            FocusError::NestedGoodTopics {
                ancestor,
                descendant,
            } => write!(
                f,
                "good topic {ancestor} is an ancestor of good topic {descendant} \
                 (forbidden by the problem formulation, §1.1)"
            ),
            FocusError::Frozen => write!(f, "taxonomy is frozen after training"),
            FocusError::Storage(m) => write!(f, "storage error: {m}"),
            FocusError::Worker(m) => write!(f, "crawl worker failed: {m}"),
            FocusError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for FocusError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, FocusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FocusError::NestedGoodTopics {
            ancestor: 3,
            descendant: 9,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9'));
        assert!(FocusError::UnknownClass(7).to_string().contains('7'));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(FocusError::Frozen);
        assert!(e.to_string().contains("frozen"));
    }
}
