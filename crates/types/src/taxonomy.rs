//! The hierarchical topic directory `C` (§1.1).
//!
//! A tree-shaped taxonomy such as Yahoo!. Each node is a topic/class; the
//! user marks a subset `C*` *good*. The marking algebra from the paper:
//!
//! * **good** — a topic in `C*`. No good topic may be an ancestor of
//!   another good topic.
//! * **path** — a proper ancestor of a good topic (including the root).
//!   `BulkProbe` is evaluated exactly at path nodes, in topological order.
//! * **subsumed** — a topic in the subtree of a good topic.
//! * **null** — everything else; not of interest *for this crawl* but kept
//!   so a different crawl can re-mark them (§2.1.3).

use crate::error::{FocusError, Result};
use crate::ids::ClassId;
use serde::{Deserialize, Serialize};

/// Per-node interest marking (paper Figure 1, `type` column of `TAXONOMY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mark {
    /// In the user's good set `C*`.
    Good,
    /// Proper ancestor of a good node.
    Path,
    /// Proper descendant of a good node.
    Subsumed,
    /// Not of interest in this crawl.
    Null,
}

/// One topic node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaxonomyNode {
    /// This node's id. Ids are dense: `0..taxonomy.len()`.
    pub id: ClassId,
    /// Human-readable topic name, e.g. `"recreation/cycling"`.
    pub name: String,
    /// Parent class; `None` only for the root.
    pub parent: Option<ClassId>,
    /// Children in insertion order.
    pub children: Vec<ClassId>,
    /// Current interest marking.
    pub mark: Mark,
}

/// The topic tree.
///
/// Node ids are dense `u16` values assigned in insertion order with the
/// root at [`ClassId::ROOT`], which makes them directly usable as the
/// 16-bit `cid` column of the relational schemas.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Taxonomy {
    nodes: Vec<TaxonomyNode>,
}

impl Taxonomy {
    /// Create a taxonomy containing only a root topic.
    pub fn new(root_name: impl Into<String>) -> Self {
        Taxonomy {
            nodes: vec![TaxonomyNode {
                id: ClassId::ROOT,
                name: root_name.into(),
                parent: None,
                children: Vec::new(),
                mark: Mark::Null,
            }],
        }
    }

    /// Number of topics (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Add a child topic under `parent`; returns the new class id.
    pub fn add_child(&mut self, parent: ClassId, name: impl Into<String>) -> Result<ClassId> {
        self.check(parent)?;
        if self.nodes.len() > u16::MAX as usize {
            return Err(FocusError::InvalidTaxonomy(
                "taxonomy exceeds 16-bit class id space".into(),
            ));
        }
        let id = ClassId(self.nodes.len() as u16);
        self.nodes.push(TaxonomyNode {
            id,
            name: name.into(),
            parent: Some(parent),
            children: Vec::new(),
            mark: Mark::Null,
        });
        self.nodes[parent.raw() as usize].children.push(id);
        Ok(id)
    }

    /// Convenience: add a whole path of `/`-separated names, creating the
    /// missing components, and return the id of the deepest one.
    pub fn add_path(&mut self, path: &str) -> Result<ClassId> {
        let mut cur = ClassId::ROOT;
        let mut so_far = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            if !so_far.is_empty() {
                so_far.push('/');
            }
            so_far.push_str(comp);
            cur = match self.child_by_name(cur, &so_far) {
                Some(c) => c,
                None => self.add_child(cur, so_far.clone())?,
            };
        }
        Ok(cur)
    }

    fn child_by_name(&self, parent: ClassId, name: &str) -> Option<ClassId> {
        self.nodes[parent.raw() as usize]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c.raw() as usize].name == name)
    }

    /// Look up a node.
    pub fn node(&self, id: ClassId) -> Result<&TaxonomyNode> {
        self.nodes
            .get(id.raw() as usize)
            .ok_or(FocusError::UnknownClass(id.raw()))
    }

    fn check(&self, id: ClassId) -> Result<()> {
        if (id.raw() as usize) < self.nodes.len() {
            Ok(())
        } else {
            Err(FocusError::UnknownClass(id.raw()))
        }
    }

    /// The node's display name.
    pub fn name(&self, id: ClassId) -> &str {
        &self.nodes[id.raw() as usize].name
    }

    /// Find a topic by exact name.
    pub fn find(&self, name: &str) -> Option<ClassId> {
        self.nodes.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Parent of `id` (`None` for the root).
    pub fn parent(&self, id: ClassId) -> Option<ClassId> {
        self.nodes[id.raw() as usize].parent
    }

    /// Children of `id`.
    pub fn children(&self, id: ClassId) -> &[ClassId] {
        &self.nodes[id.raw() as usize].children
    }

    /// Current mark of `id`.
    pub fn mark(&self, id: ClassId) -> Mark {
        self.nodes[id.raw() as usize].mark
    }

    /// True if `id` has no children.
    pub fn is_leaf(&self, id: ClassId) -> bool {
        self.nodes[id.raw() as usize].children.is_empty()
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: ClassId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Is `a` a (non-strict) ancestor of `b`?
    pub fn is_ancestor(&self, a: ClassId, b: ClassId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Ancestors of `id` from its parent up to the root.
    pub fn ancestors(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(c) = cur {
            out.push(c);
            cur = self.parent(c);
        }
        out
    }

    /// Preorder walk of the subtree rooted at `id` (including `id`).
    pub fn subtree(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            out.push(c);
            // Reverse keeps preorder stable w.r.t. child insertion order.
            stack.extend(self.children(c).iter().rev().copied());
        }
        out
    }

    /// All leaf topics.
    pub fn leaves(&self) -> Vec<ClassId> {
        self.nodes
            .iter()
            .filter(|n| n.children.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// All internal (non-leaf) topics; these are the `c0`s that own a
    /// `STAT_c0` table and participate in `BulkProbe`.
    pub fn internal_nodes(&self) -> Vec<ClassId> {
        self.nodes
            .iter()
            .filter(|n| !n.children.is_empty())
            .map(|n| n.id)
            .collect()
    }

    /// Every node id in dense order.
    pub fn all(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.nodes.iter().map(|n| n.id)
    }

    /// Mark `good` as a good topic, enforcing the §1.1 constraint and
    /// updating ancestor (`Path`) and descendant (`Subsumed`) marks.
    pub fn mark_good(&mut self, good: ClassId) -> Result<()> {
        self.check(good)?;
        // No good topic may be an ancestor of another good topic.
        for other in self.good_set() {
            if other == good {
                return Ok(()); // idempotent
            }
            if self.is_ancestor(other, good) {
                return Err(FocusError::NestedGoodTopics {
                    ancestor: other.raw(),
                    descendant: good.raw(),
                });
            }
            if self.is_ancestor(good, other) {
                return Err(FocusError::NestedGoodTopics {
                    ancestor: good.raw(),
                    descendant: other.raw(),
                });
            }
        }
        self.nodes[good.raw() as usize].mark = Mark::Good;
        for a in self.ancestors(good) {
            self.nodes[a.raw() as usize].mark = Mark::Path;
        }
        for s in self.subtree(good) {
            if s != good {
                self.nodes[s.raw() as usize].mark = Mark::Subsumed;
            }
        }
        Ok(())
    }

    /// Remove the good mark from `c` and recompute all derived marks.
    pub fn unmark_good(&mut self, c: ClassId) -> Result<()> {
        self.check(c)?;
        let goods: Vec<ClassId> = self.good_set().into_iter().filter(|&g| g != c).collect();
        for n in &mut self.nodes {
            n.mark = Mark::Null;
        }
        for g in goods {
            self.mark_good(g)?;
        }
        Ok(())
    }

    /// The good set `C*`.
    pub fn good_set(&self) -> Vec<ClassId> {
        self.nodes
            .iter()
            .filter(|n| n.mark == Mark::Good)
            .map(|n| n.id)
            .collect()
    }

    /// Path nodes (ancestors of goods, including the root if anything is
    /// good) in topological (root-first) order. `BulkProbe` is called at
    /// exactly these nodes (Figure 3: "repeatedly called at all path nodes
    /// in topological order").
    pub fn path_nodes_topological(&self) -> Vec<ClassId> {
        let mut out: Vec<ClassId> = self
            .nodes
            .iter()
            .filter(|n| n.mark == Mark::Path)
            .map(|n| n.id)
            .collect();
        out.sort_by_key(|&c| self.depth(c));
        out
    }

    /// True when `d`'s best class makes the page relevant under the *hard*
    /// focus rule: some (non-strict) ancestor of `best` is good.
    pub fn hard_focus_accepts(&self, best: ClassId) -> bool {
        let mut cur = Some(best);
        while let Some(c) = cur {
            if self.mark(c) == Mark::Good {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Structural sanity used by property tests: parent/child links agree,
    /// ids dense, exactly one root, acyclic by construction.
    pub fn validate(&self) -> Result<()> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.raw() as usize != i {
                return Err(FocusError::InvalidTaxonomy(format!(
                    "node at slot {i} has id {}",
                    n.id.raw()
                )));
            }
            match n.parent {
                None if i != 0 => {
                    return Err(FocusError::InvalidTaxonomy(format!(
                        "non-root node {i} lacks a parent"
                    )))
                }
                Some(p) => {
                    self.check(p)?;
                    if !self.children(p).contains(&n.id) {
                        return Err(FocusError::InvalidTaxonomy(format!(
                            "parent {} does not list child {i}",
                            p.raw()
                        )));
                    }
                    if p.raw() >= n.id.raw() {
                        return Err(FocusError::InvalidTaxonomy(format!(
                            "child {} precedes its parent {}",
                            n.id.raw(),
                            p.raw()
                        )));
                    }
                }
                None => {}
            }
        }
        // Good-set constraint.
        let goods = self.good_set();
        for &a in &goods {
            for &b in &goods {
                if a != b && self.is_ancestor(a, b) {
                    return Err(FocusError::NestedGoodTopics {
                        ancestor: a.raw(),
                        descendant: b.raw(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Taxonomy, ClassId, ClassId, ClassId, ClassId) {
        let mut t = Taxonomy::new("root");
        let rec = t.add_child(ClassId::ROOT, "recreation").unwrap();
        let cyc = t.add_child(rec, "recreation/cycling").unwrap();
        let mtb = t.add_child(cyc, "recreation/cycling/mtb").unwrap();
        let biz = t.add_child(ClassId::ROOT, "business").unwrap();
        (t, rec, cyc, mtb, biz)
    }

    #[test]
    fn construction_and_lookup() {
        let (t, rec, cyc, mtb, biz) = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.parent(cyc), Some(rec));
        assert_eq!(t.children(rec), &[cyc]);
        assert_eq!(t.depth(mtb), 3);
        assert!(t.is_leaf(mtb) && t.is_leaf(biz));
        assert_eq!(t.find("recreation/cycling"), Some(cyc));
        assert_eq!(t.find("nope"), None);
        t.validate().unwrap();
    }

    #[test]
    fn add_path_creates_and_reuses_components() {
        let mut t = Taxonomy::new("root");
        let a = t.add_path("health/hiv").unwrap();
        let b = t.add_path("health/hiv").unwrap();
        assert_eq!(a, b);
        let c = t.add_path("health/nutrition").unwrap();
        assert_ne!(a, c);
        assert_eq!(t.len(), 4); // root, health, hiv, nutrition
        t.validate().unwrap();
    }

    #[test]
    fn marking_propagates_path_and_subsumed() {
        let (mut t, rec, cyc, mtb, biz) = sample();
        t.mark_good(cyc).unwrap();
        assert_eq!(t.mark(cyc), Mark::Good);
        assert_eq!(t.mark(rec), Mark::Path);
        assert_eq!(t.mark(ClassId::ROOT), Mark::Path);
        assert_eq!(t.mark(mtb), Mark::Subsumed);
        assert_eq!(t.mark(biz), Mark::Null);
        assert_eq!(t.good_set(), vec![cyc]);
    }

    #[test]
    fn nested_good_topics_rejected_both_directions() {
        let (mut t, rec, cyc, mtb, _) = sample();
        t.mark_good(cyc).unwrap();
        assert!(matches!(
            t.mark_good(mtb),
            Err(FocusError::NestedGoodTopics { .. })
        ));
        assert!(matches!(
            t.mark_good(rec),
            Err(FocusError::NestedGoodTopics { .. })
        ));
        // Siblings are fine.
        let (mut t2, _, cyc2, _, biz2) = sample();
        t2.mark_good(cyc2).unwrap();
        t2.mark_good(biz2).unwrap();
        assert_eq!(t2.good_set().len(), 2);
    }

    #[test]
    fn mark_good_is_idempotent() {
        let (mut t, _, cyc, _, _) = sample();
        t.mark_good(cyc).unwrap();
        t.mark_good(cyc).unwrap();
        assert_eq!(t.good_set(), vec![cyc]);
    }

    #[test]
    fn unmark_recomputes_derived_marks() {
        let (mut t, rec, cyc, mtb, biz) = sample();
        t.mark_good(cyc).unwrap();
        t.mark_good(biz).unwrap();
        t.unmark_good(cyc).unwrap();
        assert_eq!(t.mark(cyc), Mark::Null);
        assert_eq!(t.mark(rec), Mark::Null);
        assert_eq!(t.mark(mtb), Mark::Null);
        assert_eq!(t.mark(biz), Mark::Good);
        // Root stays Path because biz is still good.
        assert_eq!(t.mark(ClassId::ROOT), Mark::Path);
    }

    #[test]
    fn path_nodes_in_topological_order() {
        let (mut t, _, _, mtb, _) = sample();
        t.mark_good(mtb).unwrap();
        let path = t.path_nodes_topological();
        // root, recreation, cycling — strictly increasing depth.
        assert_eq!(path.len(), 3);
        for w in path.windows(2) {
            assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
        assert_eq!(path[0], ClassId::ROOT);
    }

    #[test]
    fn hard_focus_rule() {
        let (mut t, _, cyc, mtb, biz) = sample();
        t.mark_good(cyc).unwrap();
        assert!(t.hard_focus_accepts(cyc));
        assert!(t.hard_focus_accepts(mtb)); // descendant of a good class
        assert!(!t.hard_focus_accepts(biz));
        assert!(!t.hard_focus_accepts(ClassId::ROOT));
    }

    #[test]
    fn subtree_and_ancestors() {
        let (t, rec, cyc, mtb, _) = sample();
        assert_eq!(t.subtree(rec), vec![rec, cyc, mtb]);
        assert_eq!(t.ancestors(mtb), vec![cyc, rec, ClassId::ROOT]);
        assert!(t.is_ancestor(rec, mtb));
        assert!(t.is_ancestor(mtb, mtb));
        assert!(!t.is_ancestor(mtb, rec));
    }

    #[test]
    fn unknown_class_is_reported() {
        let (mut t, ..) = sample();
        assert!(matches!(
            t.mark_good(ClassId(99)),
            Err(FocusError::UnknownClass(99))
        ));
        assert!(t.node(ClassId(99)).is_err());
    }
}
