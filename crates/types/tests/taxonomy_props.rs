//! Property tests of the taxonomy's marking algebra and structure.

use focus_types::{ClassId, FocusError, Mark, Taxonomy};
use proptest::prelude::*;

/// Build a random tree: each node's parent is a uniformly random earlier
/// node (always a valid tree), then apply random good-marks.
fn tree_strategy() -> impl Strategy<Value = (Taxonomy, Vec<u16>)> {
    (2usize..40).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0u16..(n as u16), n - 1);
        let marks = proptest::collection::vec(0u16..(n as u16), 0..6);
        (parents, marks).prop_map(move |(parents, marks)| {
            let mut t = Taxonomy::new("root");
            for (i, p) in parents.iter().enumerate() {
                // Parent index must be < current node id (i+1).
                let parent = ClassId(*p % (i as u16 + 1));
                t.add_child(parent, format!("n{}", i + 1))
                    .expect("valid parent");
            }
            (t, marks)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn marking_preserves_invariants((mut t, marks) in tree_strategy()) {
        for m in marks {
            // May legitimately fail (nested goods); both outcomes must
            // leave the structure valid.
            match t.mark_good(ClassId(m)) {
                Ok(()) => {}
                Err(FocusError::NestedGoodTopics { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
            t.validate().unwrap();
        }
        // Derived-mark coherence: every good node's proper ancestors are
        // Path; every good node's proper descendants are Subsumed.
        for g in t.good_set() {
            for a in t.ancestors(g) {
                prop_assert_eq!(t.mark(a), Mark::Path);
            }
            for s in t.subtree(g) {
                if s != g {
                    prop_assert_eq!(t.mark(s), Mark::Subsumed);
                }
            }
        }
        // Path nodes are in topological order and unique.
        let path = t.path_nodes_topological();
        for w in path.windows(2) {
            prop_assert!(t.depth(w[0]) <= t.depth(w[1]));
        }
        let uniq: std::collections::HashSet<_> = path.iter().collect();
        prop_assert_eq!(uniq.len(), path.len());
    }

    #[test]
    fn unmark_restores_consistency((mut t, marks) in tree_strategy()) {
        let mut applied = Vec::new();
        for m in marks {
            if t.mark_good(ClassId(m)).is_ok() {
                applied.push(ClassId(m));
            }
        }
        for g in applied {
            t.unmark_good(g).unwrap();
            t.validate().unwrap();
        }
        // After removing everything: no good/path/subsumed marks remain.
        for c in t.all().collect::<Vec<_>>() {
            prop_assert_eq!(t.mark(c), Mark::Null);
        }
    }

    #[test]
    fn ancestor_relation_is_a_partial_order((t, _) in tree_strategy()) {
        let nodes: Vec<ClassId> = t.all().collect();
        for &a in nodes.iter().take(12) {
            // Reflexive.
            prop_assert!(t.is_ancestor(a, a));
            // Root is everyone's ancestor.
            prop_assert!(t.is_ancestor(ClassId::ROOT, a));
            for &b in nodes.iter().take(12) {
                // Antisymmetric.
                if a != b && t.is_ancestor(a, b) {
                    prop_assert!(!t.is_ancestor(b, a));
                }
            }
        }
    }

    #[test]
    fn subtree_partitions_under_children((t, _) in tree_strategy()) {
        // |subtree(c)| = 1 + Σ |subtree(child)| for every node.
        for c in t.all().collect::<Vec<_>>() {
            let direct = t.subtree(c).len();
            let via_kids: usize =
                1 + t.children(c).iter().map(|&k| t.subtree(k).len()).sum::<usize>();
            prop_assert_eq!(direct, via_kids);
        }
    }

    #[test]
    fn hard_focus_agrees_with_good_ancestry((mut t, marks) in tree_strategy()) {
        for m in marks {
            let _ = t.mark_good(ClassId(m));
        }
        for c in t.all().collect::<Vec<_>>() {
            let expected = std::iter::once(c)
                .chain(t.ancestors(c))
                .any(|x| t.mark(x) == Mark::Good);
            prop_assert_eq!(t.hard_focus_accepts(c), expected);
        }
    }
}
