//! Synthetic pages.

use focus_types::{ClassId, Oid, ServerId, TermVec};

/// Structural role of a page in the generated web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Ordinary topical content page.
    Content,
    /// Resource list: large outdegree concentrated on one topic — the
    /// radius-2 rule made flesh, and what the distiller should find.
    Hub,
    /// Topic-neutral popular site (the paper's "Netscape and Free Speech
    /// Online"): everything links to it; it should *not* surface as a
    /// topical authority.
    Universal,
}

/// Failure behaviour when fetched (the paper: "Few pages on the Web are
/// formally checked for well-formedness, hence all crawlers crash").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Fetches fine.
    None,
    /// 404: permanently dead.
    Dead,
    /// Times out (retriable; drives `numtries` up).
    Timeout,
    /// Returns garbage bytes that tokenize to nothing.
    Malformed,
}

/// One page of the synthetic web.
#[derive(Debug, Clone)]
pub struct SimPage {
    /// 64-bit URL hash, the universal key.
    pub oid: Oid,
    /// Human-readable URL.
    pub url: String,
    /// Hosting server (nepotism filtering and `serverload` use this).
    pub server: ServerId,
    /// Ground-truth topic (never shown to the crawler; used by evaluation).
    pub topic: ClassId,
    /// Term-frequency content.
    pub terms: TermVec,
    /// Outgoing links.
    pub outlinks: Vec<Oid>,
    /// Structural role.
    pub kind: PageKind,
    /// Failure behaviour.
    pub failure: FailureMode,
}

impl SimPage {
    /// Outdegree.
    pub fn outdegree(&self) -> usize {
        self.outlinks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_types::TermVec;

    #[test]
    fn construction() {
        let p = SimPage {
            oid: Oid::of_url("http://x.example/a"),
            url: "http://x.example/a".into(),
            server: ServerId(3),
            topic: ClassId(2),
            terms: TermVec::default(),
            outlinks: vec![Oid(1), Oid(2)],
            kind: PageKind::Content,
            failure: FailureMode::None,
        };
        assert_eq!(p.outdegree(), 2);
        assert_eq!(p.kind, PageKind::Content);
    }
}
