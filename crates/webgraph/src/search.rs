//! Keyword search over the simulated corpus.
//!
//! Stands in for the paper's start-set construction: "representative crawls
//! on bicycling starting from the result of topic distillation with keyword
//! search cycl* bicycl* bike" and the coverage experiment's start sets from
//! "Yahoo!, Infoseek, Excite … Alta Vista". Ranking is keyword-match mass ×
//! log-indegree — crude, like a 1999 engine, which is the point: start sets
//! are relevant but not the best hubs.

use crate::generator::WebGraph;
use focus_types::{ClassId, Oid, TermId};

/// Rank pages by `Σ freq(keyword) × ln(1 + indegree)`; returns the top `k`.
pub fn keyword_search(graph: &WebGraph, keywords: &[TermId], k: usize) -> Vec<Oid> {
    let mut scored: Vec<(f64, Oid)> = Vec::new();
    for p in graph.pages() {
        let mass: u64 = keywords.iter().map(|&t| p.terms.freq(t) as u64).sum();
        if mass > 0 {
            let score = mass as f64 * (1.0 + graph.indegree(p.oid) as f64).ln();
            scored.push((score, p.oid));
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().take(k).map(|(_, o)| o).collect()
}

/// Start set for a topic: keyword-search the topic's name keywords.
pub fn topic_start_set(graph: &WebGraph, topic: ClassId, k: usize) -> Vec<Oid> {
    let kw = graph.lexicon().keyword_terms(topic, 5);
    keyword_search(graph, &kw, k)
}

/// Two *disjoint* start sets for the coverage experiment (§3.5): the
/// reference crawl starts from `S1`, the test crawl from `S2`,
/// `S1 ∩ S2 = ∅`.
pub fn disjoint_start_sets(graph: &WebGraph, topic: ClassId, k: usize) -> (Vec<Oid>, Vec<Oid>) {
    let pool = topic_start_set(graph, topic, k * 2);
    let s1: Vec<Oid> = pool.iter().step_by(2).copied().take(k).collect();
    let s2: Vec<Oid> = pool.iter().skip(1).step_by(2).copied().take(k).collect();
    (s1, s2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WebConfig, WebGraph};

    fn graph() -> WebGraph {
        WebGraph::generate(WebConfig::tiny(5))
    }

    #[test]
    fn search_finds_topical_pages() {
        let g = graph();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let hits = topic_start_set(&g, cycling, 20);
        assert!(!hits.is_empty());
        let on_topic = hits
            .iter()
            .filter(|&&o| {
                let t = g.topic_of(o).unwrap();
                t == cycling || g.taxonomy().is_ancestor(t, cycling)
            })
            .count();
        assert!(
            on_topic * 2 > hits.len(),
            "only {on_topic}/{} start pages on topic",
            hits.len()
        );
    }

    #[test]
    fn disjoint_sets_are_disjoint_and_nonempty() {
        let g = graph();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let (s1, s2) = disjoint_start_sets(&g, cycling, 10);
        assert!(!s1.is_empty() && !s2.is_empty());
        for o in &s1 {
            assert!(!s2.contains(o), "start sets overlap");
        }
    }

    #[test]
    fn empty_keywords_give_empty_results() {
        let g = graph();
        assert!(keyword_search(&g, &[], 10).is_empty());
    }

    #[test]
    fn ranking_is_deterministic() {
        let g = graph();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let a = topic_start_set(&g, cycling, 15);
        let b = topic_start_set(&g, cycling, 15);
        assert_eq!(a, b);
    }
}
