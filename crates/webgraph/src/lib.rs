//! # focus-webgraph
//!
//! A deterministic, seeded synthetic hypertext — the stand-in for the 1999
//! Web the paper crawled. The generator reproduces the two statistical
//! properties the whole Focus architecture rests on (§2):
//!
//! * **Radius-1 rule** — a relevant page is much more likely than an
//!   irrelevant one to cite another relevant page: links prefer same-topic
//!   targets with configurable probability.
//! * **Radius-2 rule** — a page that points to one page of a topic very
//!   likely points to more ("about a 45% chance" for Yahoo! top levels):
//!   hub pages concentrate large link lists on one topic.
//!
//! Plus the nuisances the paper calls out: *universal* sites every topic
//! links to (Netscape, Free Speech Online), pages on mixed-topic servers,
//! dead links, timeouts, and malformed pages that crash naive crawlers.
//!
//! [`stats`] empirically verifies the radius rules on generated graphs;
//! the crate's tests pin them.

pub mod chaos;
pub mod evolve;
pub mod fetch;
pub mod generator;
pub mod lexicon;
pub mod page;
pub mod search;
pub mod stats;

pub use chaos::{ChaosFetcher, ChaosSchedule, Fault, FaultProfile};
pub use evolve::{evolve, EvolutionConfig, EvolvingFetcher};
pub use fetch::{FetchError, FetchedPage, Fetcher, SimFetcher};
pub use generator::{default_taxonomy, WebConfig, WebGraph};
pub use lexicon::Lexicon;
pub use page::{FailureMode, PageKind, SimPage};
pub use search::keyword_search;
