//! Empirical verification of the radius-1 / radius-2 rules (§2).
//!
//! The paper justifies its architecture with two measurements on Yahoo! /
//! patent corpora — e.g. "a page that points to a given first level topic
//! of Yahoo! has about a 45% chance of having another link to the same
//! topic". These functions measure the same quantities on a generated web
//! so tests (and the `radius` eval binary) can pin them.

use crate::generator::WebGraph;
use crate::page::PageKind;
use focus_types::ClassId;

/// Radius-1 measurement for `topic`.
#[derive(Debug, Clone, Copy)]
pub struct Radius1 {
    /// P(target on topic | source on topic).
    pub p_same_given_relevant: f64,
    /// P(target on topic | source off topic) — the baseline.
    pub p_same_given_irrelevant: f64,
}

impl Radius1 {
    /// Lift of topical citation over the baseline.
    pub fn lift(&self) -> f64 {
        if self.p_same_given_irrelevant == 0.0 {
            f64::INFINITY
        } else {
            self.p_same_given_relevant / self.p_same_given_irrelevant
        }
    }
}

/// Measure the radius-1 rule: relevant pages cite relevant pages.
pub fn radius1(graph: &WebGraph, topic: ClassId) -> Radius1 {
    let mut on_topic = [0u64, 0u64]; // [links from on-topic, same-topic among them]
    let mut off_topic = [0u64, 0u64];
    for p in graph.pages() {
        if p.kind == PageKind::Universal {
            continue;
        }
        let counter = if p.topic == topic {
            &mut on_topic
        } else {
            &mut off_topic
        };
        for &t in &p.outlinks {
            counter[0] += 1;
            if graph.topic_of(t) == Some(topic) {
                counter[1] += 1;
            }
        }
    }
    Radius1 {
        p_same_given_relevant: ratio(on_topic[1], on_topic[0]),
        p_same_given_irrelevant: ratio(off_topic[1], off_topic[0]),
    }
}

/// Radius-2 measurement for `topic`.
#[derive(Debug, Clone, Copy)]
pub struct Radius2 {
    /// P(a random page links to the topic at all).
    pub p_any: f64,
    /// P(≥2 links to the topic | ≥1 link to the topic) — the paper's
    /// "about a 45% chance of having another link to the same topic".
    pub p_second_given_first: f64,
}

impl Radius2 {
    /// How much one observed link inflates the chance of another.
    pub fn inflation(&self) -> f64 {
        if self.p_any == 0.0 {
            f64::INFINITY
        } else {
            self.p_second_given_first / self.p_any
        }
    }
}

/// Measure the radius-2 rule over all pages.
pub fn radius2(graph: &WebGraph, topic: ClassId) -> Radius2 {
    let mut total = 0u64;
    let mut at_least_one = 0u64;
    let mut at_least_two = 0u64;
    for p in graph.pages() {
        total += 1;
        let hits = p
            .outlinks
            .iter()
            .filter(|&&t| graph.topic_of(t) == Some(topic))
            .count();
        if hits >= 1 {
            at_least_one += 1;
        }
        if hits >= 2 {
            at_least_two += 1;
        }
    }
    Radius2 {
        p_any: ratio(at_least_one, total),
        p_second_given_first: ratio(at_least_two, at_least_one),
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WebConfig, WebGraph};

    fn graph() -> WebGraph {
        WebGraph::generate(WebConfig::tiny(21))
    }

    #[test]
    fn radius1_holds() {
        let g = graph();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let r = radius1(&g, cycling);
        assert!(
            r.p_same_given_relevant > 0.3,
            "on-topic citation too weak: {:?}",
            r
        );
        assert!(r.lift() > 5.0, "lift too small: {}", r.lift());
    }

    #[test]
    fn radius2_matches_papers_45_percent_ballpark() {
        let g = graph();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let r = radius2(&g, cycling);
        // "about a 45% chance" — accept a generous band; the inflation
        // factor is the architectural point.
        assert!(
            r.p_second_given_first > 0.25 && r.p_second_given_first < 0.85,
            "P(second|first) = {} outside band",
            r.p_second_given_first
        );
        assert!(r.inflation() > 2.0, "inflation {} too small", r.inflation());
    }

    #[test]
    fn rules_hold_for_every_leaf_topic() {
        let g = graph();
        for c in g.taxonomy().leaves() {
            let r1 = radius1(&g, c);
            assert!(
                r1.p_same_given_relevant > r1.p_same_given_irrelevant * 3.0,
                "radius-1 fails for topic {c}: {r1:?}"
            );
        }
    }
}
