//! The web generator: topics → servers → pages → links.
//!
//! Link structure encodes the paper's two rules:
//!
//! * **radius-1**: a content page about topic `c` links same-topic with
//!   probability `p_same_topic`, to taxonomic relatives with
//!   `p_related`, to affine topics (cycling → first-aid) with
//!   `p_affinity`, to universal sites with `p_universal`, and uniformly at
//!   random otherwise;
//! * **radius-2**: hub pages carry `outdegree_hub` links of which
//!   `hub_same_topic` fraction hit their topic — so conditioned on one
//!   same-topic link, more follow.
//!
//! Targets within a category are drawn by Pareto popularity weights, giving
//! the power-law indegrees real webs show (and giving the distiller real
//! authorities to find).

use crate::lexicon::{Lexicon, LexiconConfig};
use crate::page::{FailureMode, PageKind, SimPage};
use focus_types::hash::FxHashMap;
use focus_types::{ClassId, DocId, Document, Oid, ServerId, Taxonomy, TermVec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// RNG seed; equal seeds give identical webs.
    pub seed: u64,
    /// Content pages per (non-root) topic.
    pub pages_per_topic: usize,
    /// Hub pages per topic.
    pub hubs_per_topic: usize,
    /// Servers per topic.
    pub servers_per_topic: usize,
    /// Topic-neutral universal sites.
    pub universal_sites: usize,
    /// Mean document length in tokens.
    pub doc_len: usize,
    /// Mean outdegree of content pages.
    pub outdegree_content: usize,
    /// Outdegree of hub pages.
    pub outdegree_hub: usize,
    /// P(link target shares the source topic) for content pages.
    pub p_same_topic: f64,
    /// P(target is parent/sibling/child topic).
    pub p_related: f64,
    /// P(target is an affine topic) when the source topic has one.
    pub p_affinity: f64,
    /// P(target is a universal site).
    pub p_universal: f64,
    /// Fraction of hub links on the hub's own topic.
    pub hub_same_topic: f64,
    /// Pareto shape for popularity (smaller = heavier tail).
    pub popularity_alpha: f64,
    /// Fraction of permanently dead pages.
    pub dead_rate: f64,
    /// Fraction of timeout-prone pages.
    pub timeout_rate: f64,
    /// Fraction of malformed pages.
    pub malformed_rate: f64,
    /// Cross-topic affinities by topic name, e.g. cycling → first-aid.
    pub affinities: Vec<(String, String)>,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            seed: 42,
            pages_per_topic: 300,
            hubs_per_topic: 8,
            servers_per_topic: 12,
            universal_sites: 25,
            doc_len: 220,
            outdegree_content: 9,
            outdegree_hub: 45,
            p_same_topic: 0.50,
            p_related: 0.14,
            p_affinity: 0.08,
            p_universal: 0.12,
            hub_same_topic: 0.85,
            popularity_alpha: 1.6,
            dead_rate: 0.02,
            timeout_rate: 0.02,
            malformed_rate: 0.01,
            affinities: vec![("recreation/cycling".into(), "health/first-aid".into())],
        }
    }
}

impl WebConfig {
    /// A small config for unit tests and quick benches.
    pub fn tiny(seed: u64) -> WebConfig {
        WebConfig {
            seed,
            pages_per_topic: 60,
            hubs_per_topic: 3,
            servers_per_topic: 4,
            universal_sites: 6,
            doc_len: 120,
            ..WebConfig::default()
        }
    }
}

/// The Yahoo!-like default topic tree (27 topics + root), including every
/// topic the paper's experiments name: cycling, mutual funds, HIV,
/// gardening, plus first-aid for the citation-sociology example.
pub fn default_taxonomy() -> Taxonomy {
    let mut t = Taxonomy::new("root");
    for path in [
        "arts/music",
        "arts/photography",
        "business/investing/mutual-funds",
        "business/investing/stocks",
        "computers/databases",
        "computers/www",
        "health/hiv",
        "health/nutrition",
        "health/first-aid",
        "home/gardening",
        "home/cooking",
        "recreation/cycling",
        "recreation/running",
        "recreation/travel",
        "science/biology",
        "science/physics",
        "sports/soccer",
        "sports/basketball",
    ] {
        t.add_path(path).expect("static taxonomy paths are valid");
    }
    t
}

/// Popularity-weighted sampler over one topic's pages.
struct TopicPages {
    oids: Vec<Oid>,
    cdf: Vec<f64>,
}

impl TopicPages {
    fn sample(&self, rng: &mut SmallRng) -> Option<Oid> {
        if self.oids.is_empty() {
            return None;
        }
        let total = *self.cdf.last().expect("non-empty cdf");
        let u: f64 = rng.gen_range(0.0..total);
        let i = self.cdf.partition_point(|&c| c <= u);
        Some(self.oids[i.min(self.oids.len() - 1)])
    }
}

/// The generated web.
pub struct WebGraph {
    taxonomy: Taxonomy,
    lexicon: Lexicon,
    cfg: WebConfig,
    pages: Vec<SimPage>,
    by_oid: FxHashMap<Oid, usize>,
    by_topic: Vec<Vec<Oid>>,
    indegree: FxHashMap<Oid, u32>,
}

impl WebGraph {
    /// Generate a web over [`default_taxonomy`].
    pub fn generate(cfg: WebConfig) -> WebGraph {
        Self::generate_with(default_taxonomy(), LexiconConfig::default(), cfg)
    }

    /// Generate over a custom taxonomy and lexicon.
    pub fn generate_with(taxonomy: Taxonomy, lex_cfg: LexiconConfig, cfg: WebConfig) -> WebGraph {
        let lexicon = Lexicon::new(&taxonomy, lex_cfg);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let topics: Vec<ClassId> = taxonomy.all().filter(|&c| c != ClassId::ROOT).collect();

        // Resolve affinities to class pairs.
        let affinity: FxHashMap<ClassId, ClassId> = cfg
            .affinities
            .iter()
            .filter_map(|(a, b)| Some((taxonomy.find(a)?, taxonomy.find(b)?)))
            .collect();

        let mut pages: Vec<SimPage> = Vec::new();
        let mut next_server: u32 = 0;

        // --- content + hub pages per topic ---
        for &topic in &topics {
            let tname = taxonomy.name(topic).replace('/', ".");
            let servers: Vec<ServerId> = (0..cfg.servers_per_topic)
                .map(|_| {
                    next_server += 1;
                    ServerId(next_server)
                })
                .collect();
            let n = cfg.pages_per_topic + cfg.hubs_per_topic;
            for i in 0..n {
                let is_hub = i >= cfg.pages_per_topic;
                let server = servers[rng.gen_range(0..servers.len())];
                let url = if is_hub {
                    format!(
                        "http://s{}.{}.example/links-{}.html",
                        server.raw(),
                        tname,
                        i
                    )
                } else {
                    format!("http://s{}.{}.example/page-{}.html", server.raw(), tname, i)
                };
                let oid = Oid::of_url(&url);
                let len = (cfg.doc_len / 2 + rng.gen_range(0..cfg.doc_len)).max(20);
                let failure = {
                    let u: f64 = rng.gen();
                    if u < cfg.dead_rate {
                        FailureMode::Dead
                    } else if u < cfg.dead_rate + cfg.timeout_rate {
                        FailureMode::Timeout
                    } else if u < cfg.dead_rate + cfg.timeout_rate + cfg.malformed_rate {
                        FailureMode::Malformed
                    } else {
                        FailureMode::None
                    }
                };
                let terms = if failure == FailureMode::Malformed {
                    TermVec::default()
                } else {
                    lexicon.generate_doc(&taxonomy, topic, len, &mut rng)
                };
                pages.push(SimPage {
                    oid,
                    url,
                    server,
                    topic,
                    terms,
                    outlinks: Vec::new(),
                    kind: if is_hub {
                        PageKind::Hub
                    } else {
                        PageKind::Content
                    },
                    failure,
                });
            }
        }

        // --- universal sites ---
        for i in 0..cfg.universal_sites {
            next_server += 1;
            let server = ServerId(next_server);
            let url = format!("http://www.universal-{i}.example/index.html");
            let oid = Oid::of_url(&url);
            let terms = lexicon.generate_doc(&taxonomy, ClassId::ROOT, cfg.doc_len, &mut rng);
            pages.push(SimPage {
                oid,
                url,
                server,
                topic: ClassId::ROOT,
                terms,
                outlinks: Vec::new(),
                kind: PageKind::Universal,
                failure: FailureMode::None,
            });
        }

        // --- popularity-weighted per-topic samplers ---
        let mut weights: FxHashMap<Oid, f64> = FxHashMap::default();
        for p in &pages {
            // Pareto(α): heavy-tailed popularity.
            let u: f64 = rng.gen_range(1e-9..1.0);
            let mut w = u.powf(-1.0 / cfg.popularity_alpha);
            if p.kind == PageKind::Universal {
                w *= 30.0; // everyone links Netscape
            }
            weights.insert(p.oid, w.min(1e6));
        }
        let num_classes = taxonomy.len();
        let mut by_topic: Vec<Vec<Oid>> = vec![Vec::new(); num_classes];
        for p in &pages {
            by_topic[p.topic.raw() as usize].push(p.oid);
        }
        let samplers: Vec<TopicPages> = by_topic
            .iter()
            .map(|oids| {
                let mut cdf = Vec::with_capacity(oids.len());
                let mut acc = 0.0;
                for o in oids {
                    acc += weights[o];
                    cdf.push(acc);
                }
                TopicPages {
                    oids: oids.clone(),
                    cdf,
                }
            })
            .collect();
        let universal: Vec<Oid> = pages
            .iter()
            .filter(|p| p.kind == PageKind::Universal)
            .map(|p| p.oid)
            .collect();
        let all_sampler = {
            let mut oids = Vec::with_capacity(pages.len());
            let mut cdf = Vec::with_capacity(pages.len());
            let mut acc = 0.0;
            for p in &pages {
                acc += weights[&p.oid];
                oids.push(p.oid);
                cdf.push(acc);
            }
            TopicPages { oids, cdf }
        };

        // --- related-topic pool: parent, siblings, children ---
        let related: Vec<Vec<ClassId>> = (0..num_classes)
            .map(|i| {
                let c = ClassId(i as u16);
                let mut pool = Vec::new();
                if let Some(p) = taxonomy.parent(c) {
                    if p != ClassId::ROOT {
                        pool.push(p);
                    }
                    for &s in taxonomy.children(p) {
                        if s != c {
                            pool.push(s);
                        }
                    }
                }
                pool.extend(taxonomy.children(c).iter().copied());
                pool
            })
            .collect();

        // --- links ---
        let page_meta: Vec<(Oid, ClassId, PageKind)> =
            pages.iter().map(|p| (p.oid, p.topic, p.kind)).collect();
        for (idx, &(oid, topic, kind)) in page_meta.iter().enumerate() {
            let outdeg = match kind {
                PageKind::Hub => cfg.outdegree_hub / 2 + rng.gen_range(0..cfg.outdegree_hub.max(1)),
                PageKind::Universal => rng.gen_range(2..6),
                PageKind::Content => {
                    cfg.outdegree_content / 2 + rng.gen_range(0..cfg.outdegree_content.max(1))
                }
            };
            let mut links = Vec::with_capacity(outdeg);
            for _ in 0..outdeg {
                let target = match kind {
                    PageKind::Universal => all_sampler.sample(&mut rng),
                    PageKind::Hub => {
                        let u: f64 = rng.gen();
                        if u < cfg.hub_same_topic {
                            samplers[topic.raw() as usize].sample(&mut rng)
                        } else if u < cfg.hub_same_topic + 0.08 && !universal.is_empty() {
                            Some(universal[rng.gen_range(0..universal.len())])
                        } else {
                            all_sampler.sample(&mut rng)
                        }
                    }
                    PageKind::Content => {
                        let u: f64 = rng.gen();
                        let aff = affinity.get(&topic).copied();
                        if u < cfg.p_same_topic {
                            samplers[topic.raw() as usize].sample(&mut rng)
                        } else if u < cfg.p_same_topic + cfg.p_related
                            && !related[topic.raw() as usize].is_empty()
                        {
                            let pool = &related[topic.raw() as usize];
                            let rt = pool[rng.gen_range(0..pool.len())];
                            samplers[rt.raw() as usize].sample(&mut rng)
                        } else if let Some(aff) =
                            aff.filter(|_| u < cfg.p_same_topic + cfg.p_related + cfg.p_affinity)
                        {
                            samplers[aff.raw() as usize].sample(&mut rng)
                        } else if u < cfg.p_same_topic
                            + cfg.p_related
                            + cfg.p_affinity
                            + cfg.p_universal
                            && !universal.is_empty()
                        {
                            Some(universal[rng.gen_range(0..universal.len())])
                        } else {
                            all_sampler.sample(&mut rng)
                        }
                    }
                };
                if let Some(t) = target {
                    if t != oid && !links.contains(&t) {
                        links.push(t);
                    }
                }
            }
            pages[idx].outlinks = links;
        }

        Self::assemble(taxonomy, lexicon, cfg, pages)
    }

    /// Build the derived indexes (oid map, per-topic lists, indegrees)
    /// from a final page set. Shared by generation and evolution.
    pub(crate) fn assemble(
        taxonomy: Taxonomy,
        lexicon: Lexicon,
        cfg: WebConfig,
        pages: Vec<SimPage>,
    ) -> WebGraph {
        let by_oid: FxHashMap<Oid, usize> =
            pages.iter().enumerate().map(|(i, p)| (p.oid, i)).collect();
        let mut by_topic: Vec<Vec<Oid>> = vec![Vec::new(); taxonomy.len()];
        for p in &pages {
            by_topic[p.topic.raw() as usize].push(p.oid);
        }
        let mut indegree: FxHashMap<Oid, u32> = FxHashMap::default();
        for p in &pages {
            for &t in &p.outlinks {
                *indegree.entry(t).or_insert(0) += 1;
            }
        }
        WebGraph {
            taxonomy,
            lexicon,
            cfg,
            pages,
            by_oid,
            by_topic,
            indegree,
        }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the web has no pages.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All pages.
    pub fn pages(&self) -> &[SimPage] {
        &self.pages
    }

    /// Page by oid.
    pub fn page(&self, oid: Oid) -> Option<&SimPage> {
        self.by_oid.get(&oid).map(|&i| &self.pages[i])
    }

    /// Ground-truth topic of a page.
    pub fn topic_of(&self, oid: Oid) -> Option<ClassId> {
        self.page(oid).map(|p| p.topic)
    }

    /// Pages of one topic.
    pub fn pages_of_topic(&self, topic: ClassId) -> &[Oid] {
        &self.by_topic[topic.raw() as usize]
    }

    /// Indegree of a page.
    pub fn indegree(&self, oid: Oid) -> u32 {
        self.indegree.get(&oid).copied().unwrap_or(0)
    }

    /// The taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The term model.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Generator config.
    pub fn config(&self) -> &WebConfig {
        &self.cfg
    }

    /// Training examples `D(c)`: freshly generated documents per topic —
    /// the "example pages provided manually" of §1.1. Generated (not
    /// sampled from the crawlable web) so train and test never share pages.
    pub fn example_docs(&self, topic: ClassId, n: usize, seed: u64) -> Vec<Document> {
        let mut rng = SmallRng::seed_from_u64(seed ^ (topic.raw() as u64) << 32);
        (0..n)
            .map(|i| {
                let len = self.cfg.doc_len.max(40);
                let terms = self
                    .lexicon
                    .generate_doc(&self.taxonomy, topic, len, &mut rng);
                Document::new(DocId((topic.raw() as u64) << 32 | i as u64), terms)
            })
            .collect()
    }

    /// BFS shortest link distance from `sources` to every reachable page
    /// (Figure 7 measures distance from the start set to top authorities).
    pub fn shortest_distances(&self, sources: &[Oid]) -> FxHashMap<Oid, u32> {
        let mut dist: FxHashMap<Oid, u32> = FxHashMap::default();
        let mut q = VecDeque::new();
        for &s in sources {
            if self.by_oid.contains_key(&s) && !dist.contains_key(&s) {
                dist.insert(s, 0);
                q.push_back(s);
            }
        }
        while let Some(u) = q.pop_front() {
            let d = dist[&u];
            if let Some(p) = self.page(u) {
                for &v in &p.outlinks {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                        e.insert(d + 1);
                        q.push_back(v);
                    }
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WebGraph {
        WebGraph::generate(WebConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WebGraph::generate(WebConfig::tiny(9));
        let b = WebGraph::generate(WebConfig::tiny(9));
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.pages().iter().zip(b.pages()) {
            assert_eq!(pa.oid, pb.oid);
            assert_eq!(pa.outlinks, pb.outlinks);
        }
        let c = WebGraph::generate(WebConfig::tiny(10));
        assert_ne!(
            a.pages().iter().map(|p| p.outlinks.len()).sum::<usize>(),
            c.pages().iter().map(|p| p.outlinks.len()).sum::<usize>()
        );
    }

    #[test]
    fn page_counts_match_config() {
        let g = tiny();
        let cfg = g.config();
        let topics = g.taxonomy().len() - 1; // non-root
        let expected = topics * (cfg.pages_per_topic + cfg.hubs_per_topic) + cfg.universal_sites;
        assert_eq!(g.len(), expected);
        // Every topic has pages.
        for c in g.taxonomy().all() {
            if c != ClassId::ROOT {
                assert!(!g.pages_of_topic(c).is_empty(), "topic {c} has no pages");
            }
        }
    }

    #[test]
    fn page_terms_are_canonical_at_construction() {
        // The classifier's compiled merge-join (and the reference path's
        // sorted iteration) rely on page term vectors being canonical —
        // strictly ascending term ids, duplicates merged — *once*, at
        // construction, not re-sorted per node. The generator funnels
        // every page through `TermVec::from_counts`, which guarantees it.
        let g = tiny();
        for p in g.pages() {
            let entries = p.terms.as_slice();
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "unsorted/duplicated terms in {}",
                p.url
            );
            assert!(
                entries.iter().all(|&(_, c)| c > 0),
                "zero-frequency term survived in {}",
                p.url
            );
        }
    }

    #[test]
    fn oids_unique_and_resolvable() {
        let g = tiny();
        let mut seen = std::collections::HashSet::new();
        for p in g.pages() {
            assert!(seen.insert(p.oid), "duplicate oid for {}", p.url);
            assert_eq!(g.page(p.oid).expect("resolvable").url, p.url);
        }
    }

    #[test]
    fn hubs_concentrate_on_topic() {
        let g = tiny();
        for p in g.pages().iter().filter(|p| p.kind == PageKind::Hub) {
            if p.outlinks.len() < 10 {
                continue;
            }
            let same = p
                .outlinks
                .iter()
                .filter(|&&t| g.topic_of(t) == Some(p.topic))
                .count();
            let frac = same as f64 / p.outlinks.len() as f64;
            assert!(frac > 0.5, "hub {} only {frac:.2} same-topic", p.url);
        }
    }

    #[test]
    fn universal_sites_have_high_indegree() {
        let g = tiny();
        let mut uni: Vec<u32> = g
            .pages()
            .iter()
            .filter(|p| p.kind == PageKind::Universal)
            .map(|p| g.indegree(p.oid))
            .collect();
        uni.sort_unstable();
        let med_uni = uni[uni.len() / 2];
        let mut content: Vec<u32> = g
            .pages()
            .iter()
            .filter(|p| p.kind == PageKind::Content)
            .map(|p| g.indegree(p.oid))
            .collect();
        content.sort_unstable();
        let med_content = content[content.len() / 2];
        assert!(
            med_uni > med_content * 3,
            "universal median {med_uni} vs content {med_content}"
        );
    }

    #[test]
    fn bfs_distances() {
        let g = tiny();
        let start = vec![g.pages()[0].oid];
        let d = g.shortest_distances(&start);
        assert_eq!(d[&start[0]], 0);
        assert!(
            d.len() > 10,
            "web should be well-connected, reached {}",
            d.len()
        );
        // Triangle inequality spot check: all neighbors at distance <= 1.
        for &n in &g.pages()[0].outlinks {
            assert!(d[&n] <= 1);
        }
    }

    #[test]
    fn example_docs_are_topical_and_deterministic() {
        let g = tiny();
        let cycling = g.taxonomy().find("recreation/cycling").unwrap();
        let d1 = g.example_docs(cycling, 5, 3);
        let d2 = g.example_docs(cycling, 5, 3);
        assert_eq!(d1.len(), 5);
        assert_eq!(d1[0].terms, d2[0].terms);
        // Docs contain cycling signature terms.
        let lex = g.lexicon();
        let hits = d1[0]
            .terms
            .iter()
            .filter(|(t, _)| lex.topic_of_term(*t) == Some(cycling))
            .count();
        assert!(hits > 0);
    }

    #[test]
    fn failure_modes_present_but_rare() {
        let g = WebGraph::generate(WebConfig::default());
        let dead = g
            .pages()
            .iter()
            .filter(|p| p.failure == FailureMode::Dead)
            .count();
        let frac = dead as f64 / g.len() as f64;
        assert!(frac > 0.005 && frac < 0.05, "dead fraction {frac}");
    }

    #[test]
    fn default_taxonomy_has_named_topics() {
        let t = default_taxonomy();
        for name in [
            "recreation/cycling",
            "business/investing/mutual-funds",
            "health/hiv",
            "home/gardening",
            "health/first-aid",
        ] {
            assert!(t.find(name).is_some(), "missing {name}");
        }
        t.validate().unwrap();
    }
}
