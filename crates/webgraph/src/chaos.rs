//! Deterministic fault injection — the chaos harness for crawler
//! robustness experiments.
//!
//! The generator's static per-page [`crate::page::FailureMode`] models a
//! web where individual *pages* are broken; real crawls also meet broken
//! *servers*: hosts that flake, melt down in bursts, brown out under
//! load, or drop off the net and come back. [`ChaosFetcher`] wraps any
//! [`Fetcher`] and injects those failures according to a
//! [`ChaosSchedule`] of per-server [`FaultProfile`]s.
//!
//! Every decision is a pure function of `(seed, server, oid, tick)`
//! where `tick` is the **submission ordinal** of the attempt — no RNG
//! state, no clocks — so a given schedule replays identically and eval
//! tables stay stable across runs. When the crawler runs fetches
//! concurrently it assigns each attempt its ordinal *before* handing it
//! to a pool thread and passes it down via
//! [`Fetcher::fetch_with_ordinal`]; the injected-fault set is then a
//! function of the submission sequence alone, identical at any pool
//! size. Callers of plain [`Fetcher::fetch`] (which self-assigns the
//! next ordinal at call time) keep the old behavior, which is only
//! deterministic when those calls are serialized.

use crate::fetch::{FetchError, FetchedPage, Fetcher};
use focus_types::hash::{fx64, FxHashMap};
use focus_types::{Oid, ServerId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How one server misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultProfile {
    /// Each fetch fails (retriable timeout) with probability `p`.
    Flaky {
        /// Failure probability in `[0, 1]`.
        p: f64,
    },
    /// Error storms: `burst` consecutive failing ticks out of every
    /// `period`, phase-shifted per server so storms do not synchronize.
    Bursty {
        /// Storm cycle length in fetch ticks.
        period: u64,
        /// Failing ticks at the start of each cycle.
        burst: u64,
    },
    /// Latency spikes: every `period`-th fetch to the server stalls for
    /// `spike` before being served (the fetch itself succeeds).
    Brownout {
        /// Spike cycle length in fetch ticks.
        period: u64,
        /// Added latency on a spiking fetch.
        spike: Duration,
    },
    /// Hard down for `[start, start + duration)` fetch ticks, healthy
    /// before and after — the recovery half is the point: harvest must
    /// climb back once the window closes.
    Outage {
        /// First failing tick.
        start: u64,
        /// Window length in ticks.
        duration: u64,
    },
}

/// What the schedule injects into one fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve normally.
    None,
    /// Fail with a retriable [`FetchError::Timeout`].
    Timeout,
    /// Stall for the duration, then serve normally.
    Delay(Duration),
}

fn mix(seed: u64, sid: ServerId, oid: u64, tick: u64) -> u64 {
    let mut buf = [0u8; 28];
    buf[..8].copy_from_slice(&seed.to_le_bytes());
    buf[8..12].copy_from_slice(&sid.0.to_le_bytes());
    buf[12..20].copy_from_slice(&oid.to_le_bytes());
    buf[20..28].copy_from_slice(&tick.to_le_bytes());
    fx64(&buf)
}

/// Map a hash to a uniform fraction in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Seeded per-server fault assignment, reproducible by construction.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    seed: u64,
    profiles: FxHashMap<ServerId, FaultProfile>,
}

impl ChaosSchedule {
    /// An empty schedule (no server misbehaves) under `seed`.
    pub fn new(seed: u64) -> ChaosSchedule {
        ChaosSchedule {
            seed,
            profiles: FxHashMap::default(),
        }
    }

    /// Assign `profile` to `server` (builder-style).
    pub fn with_profile(mut self, server: ServerId, profile: FaultProfile) -> ChaosSchedule {
        self.profiles.insert(server, profile);
        self
    }

    /// The profile assigned to `server`, if any.
    pub fn profile(&self, server: ServerId) -> Option<&FaultProfile> {
        self.profiles.get(&server)
    }

    /// Servers with an assigned profile.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.profiles.keys().copied()
    }

    /// The fault (if any) injected into a fetch of `oid` from `server`
    /// at global fetch ordinal `tick`. Pure and deterministic.
    pub fn fault(&self, server: ServerId, oid: Oid, tick: u64) -> Fault {
        let Some(profile) = self.profiles.get(&server) else {
            return Fault::None;
        };
        match *profile {
            FaultProfile::Flaky { p } => {
                if unit(mix(self.seed, server, oid.raw(), tick)) < p {
                    Fault::Timeout
                } else {
                    Fault::None
                }
            }
            FaultProfile::Bursty { period, burst } => {
                let period = period.max(1);
                let phase = mix(self.seed, server, 0, 0) % period;
                if (tick + phase) % period < burst.min(period) {
                    Fault::Timeout
                } else {
                    Fault::None
                }
            }
            FaultProfile::Brownout { period, spike } => {
                let period = period.max(1);
                let phase = mix(self.seed, server, 0, 0) % period;
                if (tick + phase).is_multiple_of(period) {
                    Fault::Delay(spike)
                } else {
                    Fault::None
                }
            }
            FaultProfile::Outage { start, duration } => {
                if tick >= start && tick < start.saturating_add(duration) {
                    Fault::Timeout
                } else {
                    Fault::None
                }
            }
        }
    }

    /// The tick by which every `Outage` window has closed (`0` when the
    /// schedule has none) — the earliest point an experiment may call
    /// the world "healed".
    pub fn healed_by(&self) -> u64 {
        self.profiles
            .values()
            .filter_map(|p| match *p {
                FaultProfile::Outage { start, duration } => Some(start.saturating_add(duration)),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// A [`Fetcher`] that injects scheduled faults in front of an inner
/// fetcher. Injected timeouts never reach the inner fetcher (the server
/// "didn't answer"), but still advance the tick and count as attempts.
pub struct ChaosFetcher {
    inner: Arc<dyn Fetcher>,
    schedule: ChaosSchedule,
    ticks: AtomicU64,
}

impl ChaosFetcher {
    /// Wrap `inner`, injecting faults per `schedule`.
    pub fn new(inner: Arc<dyn Fetcher>, schedule: ChaosSchedule) -> ChaosFetcher {
        ChaosFetcher {
            inner,
            schedule,
            ticks: AtomicU64::new(0),
        }
    }

    /// Fetch attempts seen so far (the next fetch's tick).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// The schedule driving the injection.
    pub fn schedule(&self) -> &ChaosSchedule {
        &self.schedule
    }
}

impl ChaosFetcher {
    fn inject(&self, oid: Oid, tick: u64) -> Result<FetchedPage, FetchError> {
        if let Some(server) = self.inner.server_of(oid) {
            match self.schedule.fault(server, oid, tick) {
                Fault::Timeout => return Err(FetchError::Timeout(oid)),
                Fault::Delay(d) => std::thread::sleep(d),
                Fault::None => {}
            }
        }
        self.inner.fetch(oid)
    }
}

impl Fetcher for ChaosFetcher {
    /// Self-assigns the next tick at call time. Deterministic only when
    /// calls are serialized; concurrent callers should assign submission
    /// ordinals themselves and use [`Fetcher::fetch_with_ordinal`].
    fn fetch(&self, oid: Oid) -> Result<FetchedPage, FetchError> {
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
        self.inject(oid, tick)
    }

    /// Keys the fault decision on the caller-assigned submission
    /// ordinal, so the injected-fault set is a pure function of the
    /// submission sequence — identical whether one fetch or hundreds
    /// are in flight. `ticks` only ratchets up to the high-water mark
    /// (it never double-counts the attempt the way `fetch` would).
    fn fetch_with_ordinal(&self, oid: Oid, ordinal: u64) -> Result<FetchedPage, FetchError> {
        self.ticks.fetch_max(ordinal + 1, Ordering::Relaxed);
        self.inject(oid, ordinal)
    }

    /// Every attempt counts, including injected failures the inner
    /// fetcher never saw — experiments use #fetches as their x-axis.
    fn fetch_count(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    fn backlinks(&self, oid: Oid) -> Option<Vec<(Oid, String)>> {
        self.inner.backlinks(oid)
    }

    fn url_of(&self, oid: Oid) -> Option<String> {
        self.inner.url_of(oid)
    }

    fn server_of(&self, oid: Oid) -> Option<ServerId> {
        self.inner.server_of(oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::SimFetcher;
    use crate::generator::{WebConfig, WebGraph};
    use crate::page::FailureMode;

    fn sim() -> Arc<SimFetcher> {
        Arc::new(SimFetcher::new(
            Arc::new(WebGraph::generate(WebConfig::tiny(3))),
            None,
        ))
    }

    /// A healthy oid on each distinct server, in page order.
    fn healthy_per_server(f: &SimFetcher) -> Vec<(ServerId, Oid)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in f.graph().pages() {
            if p.failure == FailureMode::None && seen.insert(p.server) {
                out.push((p.server, p.oid));
            }
        }
        out
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let sched = |seed| {
            let mut s = ChaosSchedule::new(seed);
            for sid in [ServerId(1), ServerId(2), ServerId(3)] {
                s = s.with_profile(sid, FaultProfile::Flaky { p: 0.4 });
            }
            s
        };
        let a = sched(42);
        let b = sched(42);
        let c = sched(43);
        let trace = |s: &ChaosSchedule| {
            let mut t = Vec::new();
            for tick in 0..200 {
                for sid in [ServerId(1), ServerId(2), ServerId(3)] {
                    t.push(s.fault(sid, Oid(7), tick));
                }
            }
            t
        };
        assert_eq!(trace(&a), trace(&b), "same seed, same schedule");
        assert_ne!(trace(&a), trace(&c), "different seed diverges");
    }

    #[test]
    fn flaky_rate_tracks_p() {
        let s = ChaosSchedule::new(9).with_profile(ServerId(5), FaultProfile::Flaky { p: 0.3 });
        let fails = (0..10_000)
            .filter(|&t| s.fault(ServerId(5), Oid(t), t) == Fault::Timeout)
            .count();
        let rate = fails as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate} far from 0.3");
    }

    #[test]
    fn outage_window_fails_then_heals() {
        let sid = ServerId(1);
        let s = ChaosSchedule::new(1).with_profile(
            sid,
            FaultProfile::Outage {
                start: 10,
                duration: 20,
            },
        );
        assert_eq!(s.fault(sid, Oid(1), 9), Fault::None);
        for t in 10..30 {
            assert_eq!(s.fault(sid, Oid(1), t), Fault::Timeout);
        }
        assert_eq!(s.fault(sid, Oid(1), 30), Fault::None, "healed");
        assert_eq!(s.healed_by(), 30);
        // Unassigned servers never fault.
        assert_eq!(s.fault(ServerId(2), Oid(1), 15), Fault::None);
    }

    #[test]
    fn bursty_storms_cover_the_configured_fraction() {
        let sid = ServerId(3);
        let s = ChaosSchedule::new(2).with_profile(
            sid,
            FaultProfile::Bursty {
                period: 10,
                burst: 4,
            },
        );
        let fails = (0..1000)
            .filter(|&t| s.fault(sid, Oid(0), t) == Fault::Timeout)
            .count();
        assert_eq!(fails, 400, "4 failing ticks out of every 10");
    }

    #[test]
    fn chaos_fetcher_injects_only_on_scheduled_servers() {
        let sim = sim();
        let targets = healthy_per_server(&sim);
        assert!(targets.len() >= 2, "tiny graph spans several servers");
        let (down, down_oid) = targets[0];
        let (_up, up_oid) = targets[1];
        let chaos = ChaosFetcher::new(
            sim.clone(),
            ChaosSchedule::new(7).with_profile(
                down,
                FaultProfile::Outage {
                    start: 0,
                    duration: 1_000,
                },
            ),
        );
        assert!(matches!(chaos.fetch(down_oid), Err(FetchError::Timeout(_))));
        assert!(chaos.fetch(up_oid).is_ok(), "healthy server unaffected");
        // Injected failures count as attempts but never hit the inner
        // fetcher.
        assert_eq!(chaos.fetch_count(), 2);
        assert_eq!(sim.fetch_count(), 1);
        // Metadata passes through.
        assert_eq!(chaos.server_of(down_oid), Some(down));
        assert_eq!(chaos.url_of(up_oid), sim.url_of(up_oid));
    }
}
