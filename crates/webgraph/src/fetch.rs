//! Fetching pages from the (simulated) distributed web.
//!
//! §1.1: "there is a non-trivial cost for visiting any vertex". The
//! simulator charges that cost as an optional artificial latency and counts
//! every fetch, so experiments can use #fetches as the x-axis exactly like
//! the paper's figures. The fetcher is `Sync` — the paper's crawler runs
//! "about thirty threads" against it.

use crate::generator::WebGraph;
use crate::page::FailureMode;
use focus_types::{ClassId, Oid, ServerId, TermVec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a fetch failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// URL does not resolve (dead link / 404). Not retriable.
    NotFound(Oid),
    /// Server did not answer in time. Retriable.
    Timeout(Oid),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::NotFound(o) => write!(f, "404 for {o}"),
            FetchError::Timeout(o) => write!(f, "timeout fetching {o}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// A successfully fetched page as the crawler sees it (no ground truth!).
#[derive(Debug, Clone)]
pub struct FetchedPage {
    /// URL hash.
    pub oid: Oid,
    /// Full URL.
    pub url: String,
    /// Serving host.
    pub server: ServerId,
    /// Tokenized content.
    pub terms: TermVec,
    /// Outgoing hyperlinks as (oid, url) pairs.
    pub outlinks: Vec<(Oid, String)>,
}

/// Anything the crawler can pull pages from.
///
/// Implementations must be safe under *concurrent* fetches: the crawler
/// may run hundreds of calls in flight at once from a pool of fetcher
/// threads (see the crawler's fetch pool). In particular `fetch_count`
/// is a monotone attempts counter, not a serialization point.
pub trait Fetcher: Send + Sync {
    /// Fetch one URL by oid.
    fn fetch(&self, oid: Oid) -> Result<FetchedPage, FetchError>;
    /// Fetch one URL, carrying the caller-assigned *submission ordinal*
    /// — the position of this attempt in submission order, assigned
    /// before the fetch is handed to any thread. Deterministic fault
    /// injectors ([`crate::chaos::ChaosFetcher`]) key their decisions on
    /// this ordinal so that the injected-fault set is independent of
    /// completion interleaving. Plain fetchers ignore it.
    fn fetch_with_ordinal(&self, oid: Oid, _ordinal: u64) -> Result<FetchedPage, FetchError> {
        self.fetch(oid)
    }
    /// Total fetch attempts so far.
    fn fetch_count(&self) -> u64;
    /// Pages linking *to* `oid`, when the server exposes such metadata
    /// (§3.2: "If links could be traversed backward, e.g. using metadata
    /// at the server, the crawler may also fetch pages that point to the
    /// page being 'expanded'"). Default: unsupported.
    fn backlinks(&self, _oid: Oid) -> Option<Vec<(Oid, String)>> {
        None
    }
    /// Resolve the URL text behind an oid *without* charging a fetch —
    /// the metadata a crawl administrator has in hand when seeding by
    /// keyword search (§1.1's start set carries real URLs, so seeded
    /// frontier rows, claims, and checkpoints should too). Default:
    /// unknown.
    fn url_of(&self, _oid: Oid) -> Option<String> {
        None
    }
    /// Resolve the server behind an oid *without* charging a fetch —
    /// the DNS-level metadata a fault injector needs to key per-server
    /// fault profiles (see [`crate::chaos`]). Default: unknown.
    fn server_of(&self, _oid: Oid) -> Option<ServerId> {
        None
    }
}

/// Shared reverse-adjacency map (target → citers).
type ReverseAdjacency = Arc<focus_types::hash::FxHashMap<Oid, Vec<Oid>>>;

/// Fetcher over a generated [`WebGraph`].
///
/// Concurrency semantics (relied on by the crawler's fetch pool):
/// `fetches` and `failures` are relaxed atomics — counts are exact
/// under any interleaving, though `fetch_count` observed mid-storm may
/// trail in-flight calls. Per-oid timeout retry counting goes through a
/// mutex, so concurrent attempts at the *same* timed-out page each
/// consume one retry; the page still recovers after exactly
/// `timeout_retries` failures regardless of which threads raced.
pub struct SimFetcher {
    graph: Arc<WebGraph>,
    latency: Option<Duration>,
    fetches: AtomicU64,
    failures: AtomicU64,
    /// Timeout pages succeed on the k-th retry (k = 3), exercising
    /// `numtries` without making pages permanently unreachable.
    timeout_retries: u64,
    attempts: lockcheck::OrderedMutex<focus_types::hash::FxHashMap<Oid, u64>>,
    /// Lazily-built reverse adjacency (only when backlinks are served).
    reverse: lockcheck::OrderedMutex<Option<ReverseAdjacency>>,
    serve_backlinks: bool,
}

impl SimFetcher {
    /// Wrap a web graph; `latency` per fetch simulates network cost
    /// (`None` for benchmarks that only count fetches).
    pub fn new(graph: Arc<WebGraph>, latency: Option<Duration>) -> SimFetcher {
        SimFetcher {
            graph,
            latency,
            fetches: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            timeout_retries: 3,
            attempts: lockcheck::OrderedMutex::new(
                lockcheck::rank::SIM_ATTEMPTS,
                focus_types::hash::FxHashMap::default(),
            ),
            reverse: lockcheck::OrderedMutex::new(lockcheck::rank::SIM_REVERSE, None),
            serve_backlinks: false,
        }
    }

    /// Enable the backlink metadata service (§3.2's "surfing backwards").
    pub fn with_backlinks(mut self) -> SimFetcher {
        self.serve_backlinks = true;
        self
    }

    fn reverse_adjacency(&self) -> ReverseAdjacency {
        let mut guard = self.reverse.lock();
        if let Some(r) = guard.as_ref() {
            return Arc::clone(r);
        }
        let mut rev: focus_types::hash::FxHashMap<Oid, Vec<Oid>> =
            focus_types::hash::FxHashMap::default();
        for p in self.graph.pages() {
            for &dst in &p.outlinks {
                rev.entry(dst).or_default().push(p.oid);
            }
        }
        let rev = Arc::new(rev);
        *guard = Some(Arc::clone(&rev));
        rev
    }

    /// The underlying graph (evaluation-side code may peek at ground truth;
    /// crawl-side code must only use [`Fetcher::fetch`]).
    pub fn graph(&self) -> &WebGraph {
        &self.graph
    }

    /// Failed fetch attempts so far.
    pub fn failure_count(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Ground-truth topic (for evaluation harnesses only).
    pub fn true_topic(&self, oid: Oid) -> Option<ClassId> {
        self.graph.topic_of(oid)
    }
}

impl Fetcher for SimFetcher {
    fn fetch(&self, oid: Oid) -> Result<FetchedPage, FetchError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        if let Some(l) = self.latency {
            std::thread::sleep(l);
        }
        let page = match self.graph.page(oid) {
            Some(p) => p,
            None => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(FetchError::NotFound(oid));
            }
        };
        match page.failure {
            FailureMode::Dead => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(FetchError::NotFound(oid))
            }
            FailureMode::Timeout => {
                let mut attempts = self.attempts.lock();
                let n = attempts.entry(oid).or_insert(0);
                *n += 1;
                if *n <= self.timeout_retries {
                    self.failures.fetch_add(1, Ordering::Relaxed);
                    Err(FetchError::Timeout(oid))
                } else {
                    Ok(to_fetched(page, &self.graph))
                }
            }
            FailureMode::Malformed | FailureMode::None => Ok(to_fetched(page, &self.graph)),
        }
    }

    fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    fn url_of(&self, oid: Oid) -> Option<String> {
        self.graph.page(oid).map(|p| p.url.clone())
    }

    fn server_of(&self, oid: Oid) -> Option<ServerId> {
        self.graph.page(oid).map(|p| p.server)
    }

    fn backlinks(&self, oid: Oid) -> Option<Vec<(Oid, String)>> {
        if !self.serve_backlinks {
            return None;
        }
        let rev = self.reverse_adjacency();
        Some(
            rev.get(&oid)
                .map(|srcs| {
                    srcs.iter()
                        .map(|&s| {
                            (
                                s,
                                self.graph
                                    .page(s)
                                    .map(|p| p.url.clone())
                                    .unwrap_or_default(),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default(),
        )
    }
}

fn to_fetched(page: &crate::page::SimPage, graph: &WebGraph) -> FetchedPage {
    FetchedPage {
        oid: page.oid,
        url: page.url.clone(),
        server: page.server,
        terms: page.terms.clone(),
        outlinks: page
            .outlinks
            .iter()
            .map(|&o| {
                let url = graph.page(o).map(|p| p.url.clone()).unwrap_or_default();
                (o, url)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WebConfig, WebGraph};
    use crate::page::FailureMode;

    fn fetcher() -> SimFetcher {
        SimFetcher::new(Arc::new(WebGraph::generate(WebConfig::tiny(3))), None)
    }

    #[test]
    fn fetch_ok_returns_content_and_links() {
        let f = fetcher();
        let p = f
            .graph()
            .pages()
            .iter()
            .find(|p| p.failure == FailureMode::None && !p.outlinks.is_empty())
            .expect("healthy page exists");
        let got = f.fetch(p.oid).unwrap();
        assert_eq!(got.oid, p.oid);
        assert_eq!(got.outlinks.len(), p.outlinks.len());
        assert!(!got.url.is_empty());
        assert_eq!(f.fetch_count(), 1);
    }

    #[test]
    fn dead_pages_404_forever() {
        let f = fetcher();
        if let Some(p) = f
            .graph()
            .pages()
            .iter()
            .find(|p| p.failure == FailureMode::Dead)
        {
            for _ in 0..5 {
                assert!(matches!(f.fetch(p.oid), Err(FetchError::NotFound(_))));
            }
            assert_eq!(f.failure_count(), 5);
        }
    }

    #[test]
    fn timeouts_recover_after_retries() {
        let f = fetcher();
        if let Some(p) = f
            .graph()
            .pages()
            .iter()
            .find(|p| p.failure == FailureMode::Timeout)
        {
            let mut failures = 0;
            let mut ok = false;
            for _ in 0..6 {
                match f.fetch(p.oid) {
                    Err(FetchError::Timeout(_)) => failures += 1,
                    Ok(_) => {
                        ok = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            assert_eq!(failures, 3);
            assert!(ok, "timeout page should recover");
        }
    }

    #[test]
    fn unknown_oid_is_not_found() {
        let f = fetcher();
        assert!(matches!(f.fetch(Oid(12345)), Err(FetchError::NotFound(_))));
    }

    #[test]
    fn concurrent_fetches() {
        let f = Arc::new(fetcher());
        let oids: Vec<Oid> = f.graph().pages().iter().take(64).map(|p| p.oid).collect();
        let mut handles = Vec::new();
        for chunk in oids.chunks(16) {
            let f = Arc::clone(&f);
            let chunk = chunk.to_vec();
            handles.push(std::thread::spawn(move || {
                for o in chunk {
                    let _ = f.fetch(o);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.fetch_count(), 64);
    }
}

#[cfg(test)]
mod backlink_tests {
    use super::*;
    use crate::generator::{WebConfig, WebGraph};

    #[test]
    fn backlinks_disabled_by_default() {
        let f = SimFetcher::new(Arc::new(WebGraph::generate(WebConfig::tiny(3))), None);
        let oid = f.graph().pages()[0].oid;
        assert!(f.backlinks(oid).is_none());
    }

    #[test]
    fn backlinks_match_forward_links() {
        let f = SimFetcher::new(Arc::new(WebGraph::generate(WebConfig::tiny(3))), None)
            .with_backlinks();
        // Pick a page with known in-links.
        let graph = f.graph();
        let target = graph
            .pages()
            .iter()
            .find(|p| graph.indegree(p.oid) > 2)
            .expect("popular page exists");
        let back = f.backlinks(target.oid).expect("service enabled");
        assert_eq!(back.len() as u32, graph.indegree(target.oid));
        // Every claimed citer really links to the target.
        for (src, url) in &back {
            let sp = graph.page(*src).expect("citer exists");
            assert!(
                sp.outlinks.contains(&target.oid),
                "{url} does not cite target"
            );
        }
    }
}
