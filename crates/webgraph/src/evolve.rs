//! Web evolution: new resources appear and hubs list them.
//!
//! §2.2: "good hubs should be checked frequently for new resource links";
//! §1's community-evolution query ("the number of links from a page about
//! environmental protection to a page related to oil and natural gas over
//! the last year") needs a web that *changes between crawls*. This module
//! derives a new [`WebGraph`] generation from an old one: each topic gains
//! fresh content pages, existing hubs append links to them, and a few
//! fresh cross-affinity links appear.
//!
//! [`EvolvingFetcher`] wraps the generations behind the [`Fetcher`] trait
//! so a live crawl session observes the flip on its next fetch.

use crate::fetch::{FetchError, FetchedPage, Fetcher};
use crate::generator::{WebConfig, WebGraph};
use crate::lexicon::LexiconConfig;
use crate::page::{FailureMode, PageKind, SimPage};
use focus_types::{ClassId, Oid};
use lockcheck::{rank, OrderedRwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a generation grows.
#[derive(Debug, Clone)]
pub struct EvolutionConfig {
    /// New content pages per topic.
    pub new_pages_per_topic: usize,
    /// Fraction of existing hubs that pick up links to new pages.
    pub hub_update_fraction: f64,
    /// Links each updated hub adds.
    pub new_links_per_hub: usize,
    /// Fraction of existing *content* pages that add a link or two
    /// (ordinary pages also change between crawls, not just hubs).
    pub content_update_fraction: f64,
    /// RNG seed for this generation.
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            new_pages_per_topic: 10,
            hub_update_fraction: 0.6,
            new_links_per_hub: 5,
            content_update_fraction: 0.25,
            seed: 1,
        }
    }
}

/// Produce the next generation of `base`. The original pages keep their
/// oids and links; new pages carry a `gen{n}` URL component.
pub fn evolve(base: &WebGraph, generation: u32, cfg: &EvolutionConfig) -> WebGraph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (generation as u64) << 17);
    let taxonomy = base.taxonomy().clone();
    let lexicon = base.lexicon().clone();
    let mut pages: Vec<SimPage> = base.pages().to_vec();

    // --- new content pages per topic ---
    let mut new_by_topic: Vec<(ClassId, Vec<Oid>)> = Vec::new();
    for topic in taxonomy
        .all()
        .filter(|&c| c != ClassId::ROOT)
        .collect::<Vec<_>>()
    {
        let tname = taxonomy.name(topic).replace('/', ".");
        let mut fresh = Vec::new();
        for i in 0..cfg.new_pages_per_topic {
            // Reuse a server already hosting this topic so nepotism and
            // serverload behave as for old pages.
            let server = pages
                .iter()
                .find(|p| p.topic == topic)
                .map(|p| p.server)
                .unwrap_or(focus_types::ServerId(1));
            let url = format!(
                "http://s{}.{}.example/gen{}-page-{}.html",
                server.raw(),
                tname,
                generation,
                i
            );
            let oid = Oid::of_url(&url);
            let len = base.config().doc_len.max(40);
            let terms = lexicon.generate_doc(&taxonomy, topic, len, &mut rng);
            // New pages link back into the old same-topic cluster.
            let old_targets: Vec<Oid> = base
                .pages_of_topic(topic)
                .iter()
                .filter(|_| rng.gen_bool(0.05))
                .copied()
                .take(6)
                .collect();
            pages.push(SimPage {
                oid,
                url,
                server,
                topic,
                terms,
                outlinks: old_targets,
                kind: PageKind::Content,
                failure: FailureMode::None,
            });
            fresh.push(oid);
        }
        new_by_topic.push((topic, fresh));
    }

    // --- existing pages pick up the new resources ---
    for p in pages.iter_mut() {
        let (update_p, n_links) = match p.kind {
            PageKind::Hub => (cfg.hub_update_fraction, cfg.new_links_per_hub),
            PageKind::Content => (cfg.content_update_fraction, 2),
            PageKind::Universal => (0.0, 0),
        };
        if update_p <= 0.0 || !rng.gen_bool(update_p.min(1.0)) {
            continue;
        }
        if let Some((_, fresh)) = new_by_topic.iter().find(|(t, _)| *t == p.topic) {
            for _ in 0..n_links {
                if fresh.is_empty() {
                    break;
                }
                let target = fresh[rng.gen_range(0..fresh.len())];
                if !p.outlinks.contains(&target) {
                    p.outlinks.push(target);
                }
            }
        }
    }

    WebGraph::from_pages(taxonomy, lexicon, base.config().clone(), pages)
}

/// A [`Fetcher`] whose underlying web can be swapped mid-crawl.
pub struct EvolvingFetcher {
    graph: OrderedRwLock<Arc<WebGraph>>,
    fetches: AtomicU64,
}

impl EvolvingFetcher {
    /// Start at generation 0.
    pub fn new(graph: Arc<WebGraph>) -> EvolvingFetcher {
        EvolvingFetcher {
            graph: OrderedRwLock::new(rank::EVOLVE_GRAPH, graph),
            fetches: AtomicU64::new(0),
        }
    }

    /// Replace the web (the next fetch sees the new generation).
    pub fn swap(&self, graph: Arc<WebGraph>) {
        *self.graph.write() = graph;
    }

    /// Current generation.
    pub fn current(&self) -> Arc<WebGraph> {
        Arc::clone(&self.graph.read())
    }
}

impl Fetcher for EvolvingFetcher {
    fn fetch(&self, oid: Oid) -> Result<FetchedPage, FetchError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let graph = self.current();
        let page = graph.page(oid).ok_or(FetchError::NotFound(oid))?;
        match page.failure {
            FailureMode::Dead => Err(FetchError::NotFound(oid)),
            // Evolution crawls don't model flaky timeouts; keep it simple.
            _ => Ok(FetchedPage {
                oid: page.oid,
                url: page.url.clone(),
                server: page.server,
                terms: page.terms.clone(),
                outlinks: page
                    .outlinks
                    .iter()
                    .map(|&o| (o, graph.page(o).map(|p| p.url.clone()).unwrap_or_default()))
                    .collect(),
            }),
        }
    }

    fn fetch_count(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

/// Re-export used by [`evolve`] to rebuild the derived indexes.
impl WebGraph {
    /// Rebuild a graph from an explicit page set (evolution support).
    pub fn from_pages(
        taxonomy: focus_types::Taxonomy,
        lexicon: crate::lexicon::Lexicon,
        cfg: WebConfig,
        pages: Vec<SimPage>,
    ) -> WebGraph {
        WebGraph::assemble(taxonomy, lexicon, cfg, pages)
    }
}

// LexiconConfig is referenced in doc position only; silence the unused
// import lint without hiding genuine mistakes.
#[allow(unused)]
fn _lexicon_cfg_marker(_: LexiconConfig) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WebConfig;

    #[test]
    fn evolution_adds_pages_and_hub_links() {
        let base = WebGraph::generate(WebConfig::tiny(3));
        let cfg = EvolutionConfig::default();
        let next = evolve(&base, 1, &cfg);
        let topics = base.taxonomy().len() - 1;
        assert_eq!(next.len(), base.len() + topics * cfg.new_pages_per_topic);
        // Old oids survive with old content.
        for p in base.pages().iter().take(20) {
            assert!(next.page(p.oid).is_some(), "old page lost");
        }
        // Some hub gained outlinks.
        let grew = base
            .pages()
            .iter()
            .filter(|p| p.kind == PageKind::Hub)
            .any(|p| {
                next.page(p.oid)
                    .map(|q| q.outdegree() > p.outdegree())
                    .unwrap_or(false)
            });
        assert!(grew, "no hub picked up new links");
    }

    #[test]
    fn evolution_is_deterministic() {
        let base = WebGraph::generate(WebConfig::tiny(3));
        let a = evolve(&base, 1, &EvolutionConfig::default());
        let b = evolve(&base, 1, &EvolutionConfig::default());
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.pages().iter().zip(b.pages()) {
            assert_eq!(pa.oid, pb.oid);
            assert_eq!(pa.outlinks, pb.outlinks);
        }
    }

    #[test]
    fn evolving_fetcher_swaps_mid_flight() {
        let base = Arc::new(WebGraph::generate(WebConfig::tiny(9)));
        let fetcher = EvolvingFetcher::new(Arc::clone(&base));
        let hub = base
            .pages()
            .iter()
            .find(|p| p.kind == PageKind::Hub && p.failure == FailureMode::None)
            .expect("hub exists");
        let before = fetcher.fetch(hub.oid).unwrap().outlinks.len();
        let next = Arc::new(evolve(
            &base,
            1,
            &EvolutionConfig {
                hub_update_fraction: 1.0,
                ..EvolutionConfig::default()
            },
        ));
        fetcher.swap(Arc::clone(&next));
        let after = fetcher.fetch(hub.oid).unwrap().outlinks.len();
        assert!(after >= before, "links must not vanish");
        assert_eq!(fetcher.fetch_count(), 2);
        // At least one hub in the whole graph grew (this one may not have).
        let grew = base
            .pages()
            .iter()
            .filter(|p| p.kind == PageKind::Hub)
            .any(|p| {
                next.page(p.oid)
                    .map(|q| q.outdegree() > p.outdegree())
                    .unwrap_or(false)
            });
        assert!(grew);
    }
}
