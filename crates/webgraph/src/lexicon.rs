//! Per-topic multinomial term models (the generative model of §2.1.1,
//! used in reverse: we *generate* documents from θ(c, t)).
//!
//! The vocabulary is split into a Zipf-distributed **background** shared by
//! all topics (stopwords, boilerplate) and per-topic **signature** ranges.
//! A page about topic `c` draws each term from its own signature with
//! probability `sig_weight`, from an ancestor's signature with probability
//! `anc_weight` (topical hierarchy: a mountain-biking page also uses
//! general cycling vocabulary), and from the background otherwise.

use focus_types::{ClassId, Taxonomy, TermId, TermVec};
use rand::rngs::SmallRng;
use rand::Rng;

/// Term-model parameters.
#[derive(Debug, Clone)]
pub struct LexiconConfig {
    /// Background vocabulary size.
    pub background_terms: u32,
    /// Zipf exponent for the background.
    pub zipf_s: f64,
    /// Signature terms per topic.
    pub signature_terms: u32,
    /// Probability a token comes from the topic's own signature.
    pub sig_weight: f64,
    /// Probability a token comes from an ancestor topic's signature.
    pub anc_weight: f64,
}

impl Default for LexiconConfig {
    fn default() -> Self {
        LexiconConfig {
            background_terms: 20_000,
            zipf_s: 1.07,
            signature_terms: 120,
            sig_weight: 0.35,
            anc_weight: 0.12,
        }
    }
}

/// The term model for one taxonomy.
#[derive(Debug, Clone)]
pub struct Lexicon {
    cfg: LexiconConfig,
    /// Cumulative Zipf distribution over background terms.
    background_cdf: Vec<f64>,
    num_topics: u16,
}

impl Lexicon {
    /// Build the model for `taxonomy`.
    pub fn new(taxonomy: &Taxonomy, cfg: LexiconConfig) -> Lexicon {
        let n = cfg.background_terms as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(cfg.zipf_s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Lexicon {
            cfg,
            background_cdf: cdf,
            num_topics: taxonomy.len() as u16,
        }
    }

    /// The `j`-th signature term of `topic`. Signature ranges are disjoint
    /// from the background and from each other.
    pub fn signature_term(&self, topic: ClassId, j: u32) -> TermId {
        debug_assert!(j < self.cfg.signature_terms);
        debug_assert!(topic.raw() < self.num_topics);
        TermId(self.cfg.background_terms + topic.raw() as u32 * self.cfg.signature_terms + j)
    }

    /// Which topic (if any) owns `term` as a signature term.
    pub fn topic_of_term(&self, term: TermId) -> Option<ClassId> {
        let t = term.raw();
        if t < self.cfg.background_terms {
            return None;
        }
        let idx = (t - self.cfg.background_terms) / self.cfg.signature_terms;
        if idx < self.num_topics as u32 {
            Some(ClassId(idx as u16))
        } else {
            None
        }
    }

    /// The first few signature terms double as the topic's "name keywords"
    /// (what a user would type into AltaVista: `cycl* bicycl* bike`).
    pub fn keyword_terms(&self, topic: ClassId, k: usize) -> Vec<TermId> {
        (0..k.min(self.cfg.signature_terms as usize) as u32)
            .map(|j| self.signature_term(topic, j))
            .collect()
    }

    fn sample_background(&self, rng: &mut SmallRng) -> TermId {
        let u: f64 = rng.gen();
        let i = self.background_cdf.partition_point(|&c| c < u);
        TermId(i.min(self.background_cdf.len() - 1) as u32)
    }

    fn sample_signature(&self, topic: ClassId, rng: &mut SmallRng) -> TermId {
        // Within a signature, weight terms geometrically so some signature
        // terms are much more frequent than others (like real topic words).
        let m = self.cfg.signature_terms;
        let u: f64 = rng.gen();
        // Geometric-ish: j = floor(-ln(1-u) * m / 4), clamped.
        let j = ((-(1.0 - u).ln()) * m as f64 / 4.0) as u32;
        self.signature_term(topic, j.min(m - 1))
    }

    /// Generate a document of length `len` about `topic` (the Bernoulli /
    /// multinomial model: each term drawn i.i.d. from θ(topic, ·)).
    pub fn generate_doc(
        &self,
        taxonomy: &Taxonomy,
        topic: ClassId,
        len: usize,
        rng: &mut SmallRng,
    ) -> TermVec {
        let ancestors = taxonomy.ancestors(topic);
        let mut counts = Vec::with_capacity(len);
        for _ in 0..len {
            let u: f64 = rng.gen();
            let t = if u < self.cfg.sig_weight && topic != ClassId::ROOT {
                self.sample_signature(topic, rng)
            } else if u < self.cfg.sig_weight + self.cfg.anc_weight && !ancestors.is_empty() {
                // Pick a non-root ancestor when one exists.
                let non_root: Vec<ClassId> = ancestors
                    .iter()
                    .copied()
                    .filter(|&a| a != ClassId::ROOT)
                    .collect();
                match non_root.as_slice() {
                    [] => self.sample_background(rng),
                    anc => self.sample_signature(anc[rng.gen_range(0..anc.len())], rng),
                }
            } else {
                self.sample_background(rng)
            };
            counts.push((t, 1));
        }
        TermVec::from_counts(counts)
    }

    /// Configuration in use.
    pub fn config(&self) -> &LexiconConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_types::Taxonomy;
    use rand::SeedableRng;

    fn setup() -> (Taxonomy, Lexicon) {
        let mut t = Taxonomy::new("root");
        let rec = t.add_child(ClassId::ROOT, "recreation").unwrap();
        t.add_child(rec, "recreation/cycling").unwrap();
        t.add_child(ClassId::ROOT, "business").unwrap();
        let lex = Lexicon::new(&t, LexiconConfig::default());
        (t, lex)
    }

    #[test]
    fn signature_ranges_are_disjoint() {
        let (_t, lex) = setup();
        let a = lex.signature_term(ClassId(1), 0);
        let b = lex.signature_term(ClassId(2), 0);
        assert_ne!(a, b);
        assert_eq!(lex.topic_of_term(a), Some(ClassId(1)));
        assert_eq!(lex.topic_of_term(b), Some(ClassId(2)));
        assert_eq!(lex.topic_of_term(TermId(5)), None, "background term");
    }

    #[test]
    fn documents_prefer_their_topic_signature() {
        let (t, lex) = setup();
        let mut rng = SmallRng::seed_from_u64(7);
        let cycling = ClassId(2);
        let business = ClassId(3);
        let doc = lex.generate_doc(&t, cycling, 400, &mut rng);
        let count_for = |topic: ClassId| -> u64 {
            doc.iter()
                .filter(|(term, _)| lex.topic_of_term(*term) == Some(topic))
                .map(|(_, c)| c as u64)
                .sum()
        };
        let own = count_for(cycling);
        let other = count_for(business);
        assert!(own > 50, "own-signature mass too low: {own}");
        assert_eq!(other, 0, "no business terms in a cycling doc");
        // Ancestor (recreation) terms present but rarer than own.
        let anc = count_for(ClassId(1));
        assert!(anc > 0 && anc < own, "ancestor mass {anc} vs own {own}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (t, lex) = setup();
        let d1 = lex.generate_doc(&t, ClassId(2), 100, &mut SmallRng::seed_from_u64(5));
        let d2 = lex.generate_doc(&t, ClassId(2), 100, &mut SmallRng::seed_from_u64(5));
        let d3 = lex.generate_doc(&t, ClassId(2), 100, &mut SmallRng::seed_from_u64(6));
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn background_is_zipfian() {
        let (t, lex) = setup();
        let mut rng = SmallRng::seed_from_u64(11);
        // Generate root-topic docs: pure background.
        let doc = lex.generate_doc(&t, ClassId::ROOT, 20_000, &mut rng);
        // The most frequent background term should dominate the tail.
        let max = doc.iter().map(|(_, c)| c).max().unwrap();
        assert!(max > 100, "head of Zipf too flat: {max}");
        assert!(
            doc.num_terms() > 1000,
            "tail too short: {}",
            doc.num_terms()
        );
    }

    #[test]
    fn keyword_terms_prefix_of_signature() {
        let (_t, lex) = setup();
        let kw = lex.keyword_terms(ClassId(2), 3);
        assert_eq!(kw.len(), 3);
        assert_eq!(kw[0], lex.signature_term(ClassId(2), 0));
    }
}
