//! The prepared-plan cache hit path must be allocation-free.
//!
//! `Database::prepare` on a cached statement does a read-lock, a map
//! lookup keyed by the trimmed SQL text, and an `Arc::clone` — none of
//! which may touch the allocator. This file holds exactly one test so
//! no concurrent test in the same binary can allocate under the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use minirel::{Database, Value};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn prepared_plan_cache_hit_is_allocation_free() {
    let mut db = Database::in_memory();
    db.execute("create table t (a int, b float)").unwrap();
    let tid = db.table_id("t").unwrap();
    for i in 0..50i64 {
        db.insert(tid, vec![Value::Int(i), Value::Float(i as f64)])
            .unwrap();
    }

    let sql = "select b from t where a = ?";
    // First call compiles and caches; a second warms any lazy lock or
    // hasher state so the measured call sees steady state.
    let miss = db.prepare(sql).unwrap();
    drop(miss);
    let warm = db.prepare(sql).unwrap();
    drop(warm);

    let before = ALLOCS.load(Ordering::SeqCst);
    let hit = db.prepare(sql).unwrap();
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "prepare() cache hit must not allocate (saw {} allocations)",
        after - before
    );

    // The cached plan still executes correctly.
    let rs = db.query_prepared(&hit, &[Value::Int(7)]).unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Float(7.0));

    let (hits, misses) = db.plan_cache_stats();
    assert_eq!(misses, 1);
    assert_eq!(hits, 2);
}
