//! Model-based property tests of the storage primitives: the B+tree
//! against `BTreeMap`, external sort against `sort`, merge join against
//! nested loops, and codec round trips.

use minirel::btree::BTree;
use minirel::buffer::{BufferPool, EvictionPolicy};
use minirel::disk::DiskManager;
use minirel::exec::{external_sort, hash_join, merge_join_inner, sort_rows, SortKey};
use minirel::value::{decode_row, encode_composite_key, encode_row, Row, Value};
use minirel::Rid;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn pool(frames: usize) -> BufferPool {
    BufferPool::new(DiskManager::in_memory(), frames, EvictionPolicy::Lru)
}

/// Random insert/delete ops on (key, rid) pairs.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u32),
    Delete(i64, u32),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..2i32, 0..50i64, 0..6u32).prop_map(|(kind, k, r)| {
            if kind == 0 {
                Op::Insert(k, r)
            } else {
                Op::Delete(k, r)
            }
        }),
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_matches_btreemap_model(ops in ops_strategy(), frames in 2usize..16) {
        let bp = pool(frames);
        let mut bt = BTree::create(&bp).unwrap();
        let mut model: BTreeMap<(Vec<u8>, Rid), ()> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, r) => {
                    let key = encode_composite_key(&[Value::Int(k)]);
                    let rid = Rid { page: r, slot: 0 };
                    bt.insert(&bp, &key, rid).unwrap();
                    model.insert((key, rid), ());
                }
                Op::Delete(k, r) => {
                    let key = encode_composite_key(&[Value::Int(k)]);
                    let rid = Rid { page: r, slot: 0 };
                    let in_tree = bt.delete(&bp, &key, rid).unwrap();
                    let in_model = model.remove(&(key, rid)).is_some();
                    prop_assert_eq!(in_tree, in_model);
                }
            }
        }
        prop_assert_eq!(bt.len() as usize, model.len());
        bt.validate(&bp).unwrap();
        // Every surviving key is found with the right rid multiset.
        for k in 0..50i64 {
            let key = encode_composite_key(&[Value::Int(k)]);
            let mut got = bt.lookup(&bp, &key).unwrap();
            got.sort();
            let mut expect: Vec<Rid> = model
                .keys()
                .filter(|(mk, _)| *mk == key)
                .map(|&(_, r)| r)
                .collect();
            expect.sort();
            prop_assert_eq!(got, expect, "key {}", k);
        }
    }

    #[test]
    fn external_sort_equals_std_sort(
        vals in proptest::collection::vec((any::<i32>(), -1e6..1e6f64), 0..400),
        budget in 2usize..64,
    ) {
        let rows: Vec<Row> = vals
            .iter()
            .map(|&(a, b)| vec![Value::Int(a as i64), Value::Float(b)])
            .collect();
        let keys = [SortKey::asc(0), SortKey::desc(1)];
        let bp = pool(8);
        let got = external_sort(&bp, rows.clone(), &keys, budget).unwrap();
        let expect = sort_rows(rows, &keys).unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn merge_join_equals_hash_join(
        left in proptest::collection::vec(0..20i64, 0..60),
        right in proptest::collection::vec(0..20i64, 0..60),
    ) {
        let l: Vec<Row> = left.iter().map(|&k| vec![Value::Int(k)]).collect();
        let r: Vec<Row> = right.iter().map(|&k| vec![Value::Int(k)]).collect();
        let ls = sort_rows(l.clone(), &[SortKey::asc(0)]).unwrap();
        let rs = sort_rows(r.clone(), &[SortKey::asc(0)]).unwrap();
        let mut merged = merge_join_inner(&ls, &rs, &[0], &[0]).unwrap();
        let mut hashed = hash_join(&l, &r, &[0], &[0], false).unwrap();
        let key = |row: &Row| row.iter().map(|v| format!("{v}|")).collect::<String>();
        merged.sort_by_key(|r| key(r));
        hashed.sort_by_key(|r| key(r));
        prop_assert_eq!(merged, hashed);
    }

    #[test]
    fn row_codec_roundtrips(
        ints in proptest::collection::vec(any::<i64>(), 0..6),
        text in "[a-zA-Z0-9 /:.?=-]{0,60}",
        f in any::<f64>(),
    ) {
        let mut row: Row = ints.into_iter().map(Value::Int).collect();
        row.push(Value::Str(text));
        if !f.is_nan() {
            row.push(Value::Float(f));
        }
        row.push(Value::Null);
        let decoded = decode_row(&encode_row(&row)).unwrap();
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn key_encoding_is_order_preserving_for_ints(a in any::<i64>(), b in any::<i64>()) {
        let ka = encode_composite_key(&[Value::Int(a)]);
        let kb = encode_composite_key(&[Value::Int(b)]);
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
    }

    #[test]
    fn key_encoding_is_order_preserving_for_strings(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let ka = encode_composite_key(&[Value::Str(a.clone())]);
        let kb = encode_composite_key(&[Value::Str(b.clone())]);
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
    }

    #[test]
    fn composite_key_order_is_lexicographic(
        a1 in 0..10i64, a2 in 0..10i64, b1 in 0..10i64, b2 in 0..10i64,
    ) {
        let ka = encode_composite_key(&[Value::Int(a1), Value::Int(a2)]);
        let kb = encode_composite_key(&[Value::Int(b1), Value::Int(b2)]);
        prop_assert_eq!((a1, a2).cmp(&(b1, b2)), ka.cmp(&kb));
    }
}
