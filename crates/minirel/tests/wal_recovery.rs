//! WAL format and crash-recovery tests: record codec round trips
//! (proptest), torn-tail truncation at every byte offset, checksum
//! rejection of corrupted records, reopen round trips through
//! `Database::open`, recovery idempotence, and checkpoint behaviour.

use minirel::recovery::{self, Replica};
use minirel::wal::{
    self, checksum, decode_record, encode_record, scan_records, KIND_COMMIT, KIND_PAGE_IMAGE,
};
use minirel::{Database, DbError, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

fn temp_db_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "minirel-walrec-{tag}-{}-{}.db",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(minirel::wal_path_for(path));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (lsn, kind, payload) encodes and decodes back to itself.
    #[test]
    fn record_roundtrip(
        lsn in any::<u64>(),
        kind in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
        payload in proptest::collection::vec(any::<u8>(), 0..5000),
    ) {
        let bytes = encode_record(lsn, kind, &payload);
        let (rec, used) = decode_record(&bytes).unwrap().expect("whole record");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(rec.lsn, lsn);
        prop_assert_eq!(rec.kind, kind);
        prop_assert_eq!(rec.payload, payload);
    }

    /// A multi-record log scans back losslessly; appending garbage does
    /// not extend the valid prefix.
    #[test]
    fn scan_roundtrip_with_garbage_tail(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..20),
        garbage in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut log = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            log.extend_from_slice(&encode_record(i as u64 + 1, KIND_COMMIT, p));
        }
        let good_len = log.len();
        let (recs, valid) = scan_records(&log);
        prop_assert_eq!(recs.len(), payloads.len());
        prop_assert_eq!(valid, good_len);
        // Garbage after the valid prefix never yields extra records and
        // never extends the prefix past a whole-record boundary.
        log.extend_from_slice(&garbage);
        let (recs2, valid2) = scan_records(&log);
        prop_assert!(recs2.len() >= payloads.len());
        prop_assert!(valid2 >= good_len);
        for (a, b) in recs.iter().zip(&recs2) {
            prop_assert_eq!(a, b);
        }
    }
}

/// Torn-tail truncation: cutting a two-record log at *every* byte
/// offset recovers exactly the records whose bytes fully survive —
/// never a panic, never a phantom record.
#[test]
fn torn_tail_at_every_offset() {
    let r1 = encode_record(1, KIND_PAGE_IMAGE, &[7u8; 100]);
    let r2 = encode_record(2, KIND_COMMIT, b"catalog image bytes");
    let mut log = r1.clone();
    log.extend_from_slice(&r2);
    for cut in 0..=log.len() {
        let (recs, valid) = scan_records(&log[..cut]);
        if cut < r1.len() {
            assert_eq!(recs.len(), 0, "cut {cut}");
            assert_eq!(valid, 0, "cut {cut}");
        } else if cut < log.len() {
            assert_eq!(recs.len(), 1, "cut {cut}");
            assert_eq!(valid, r1.len(), "cut {cut}");
        } else {
            assert_eq!(recs.len(), 2);
            assert_eq!(valid, log.len());
        }
    }
}

/// Every single-byte corruption of a record is rejected (checksum or
/// structural check) — never silently decoded into different content.
#[test]
fn corruption_is_rejected_at_every_byte() {
    let bytes = encode_record(99, KIND_COMMIT, b"the catalog");
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0xFF] {
            let mut b = bytes.clone();
            b[i] ^= flip;
            match decode_record(&b) {
                Err(DbError::Corrupt(_)) => {}
                // Corrupting the length field can make the record look
                // truncated — that's still a rejection.
                Ok(None) => {}
                Ok(Some((rec, _))) => panic!(
                    "flip {flip:#x} at byte {i} decoded as lsn={} kind={}",
                    rec.lsn, rec.kind
                ),
                Err(other) => panic!("flip {flip:#x} at byte {i}: unexpected {other}"),
            }
        }
    }
}

#[test]
fn checksum_is_order_and_boundary_sensitive() {
    assert_ne!(checksum(&[b"abcdef"]), checksum(&[b"abcdfe"]));
    assert_ne!(checksum(&[b"abc", b"def"]), checksum(&[b"def", b"abc"]));
    // Zero-padding a short tail changes the sum (the tail is length-tagged).
    assert_ne!(checksum(&[b"abc"]), checksum(&[b"abc\0"]));
    assert_eq!(checksum(&[b"abc"]), checksum(&[b"abc"]));
}

/// The satellite fix end to end: a durable database reopened from disk
/// sees its tables, rows, and indexes.
#[test]
fn reopen_roundtrip() {
    let path = temp_db_path("reopen");
    cleanup(&path);
    {
        let mut db = Database::open(&path, 32).unwrap();
        db.execute("create table crawl (oid int, url text, relevance float)")
            .unwrap();
        db.execute("create index crawl_oid on crawl (oid)").unwrap();
        for i in 0..500i64 {
            db.insert(
                db.table_id("crawl").unwrap(),
                vec![
                    Value::Int(i),
                    Value::Str(format!("http://host/{i}")),
                    Value::Float(i as f64 / 500.0),
                ],
            )
            .unwrap();
        }
        db.commit_durable().unwrap();
    }
    {
        let mut db = Database::open(&path, 32).unwrap();
        let rs = db.query("select count(*) from crawl").unwrap();
        assert_eq!(rs.scalar_i64(), Some(500));
        // Index probe path (PROBE uses the B+tree root from the catalog image).
        let rs = db.query("select url from crawl where oid = 123").unwrap();
        assert_eq!(rs.rows[0][0], Value::Str("http://host/123".into()));
        // Keep writing after recovery.
        db.execute("insert into crawl values (1000, 'http://new', 0.5)")
            .unwrap();
        db.commit_durable().unwrap();
    }
    {
        let db = Database::open(&path, 32).unwrap();
        assert_eq!(
            db.query("select count(*) from crawl").unwrap().scalar_i64(),
            Some(501)
        );
    }
    cleanup(&path);
}

/// Uncommitted work is discarded on reopen: the log's tail past the
/// last commit never reaches the recovered state.
#[test]
fn uncommitted_tail_is_discarded() {
    let path = temp_db_path("tail");
    cleanup(&path);
    {
        let mut db = Database::open(&path, 8).unwrap();
        db.execute("create table t (a int)").unwrap();
        db.execute("insert into t values (1), (2)").unwrap();
        db.commit_durable().unwrap();
        // Uncommitted: dirty pages may even reach the WAL via eviction
        // (8-frame pool), but no commit record covers them.
        db.execute("insert into t values (3), (4), (5)").unwrap();
        db.parts().0.flush_all().unwrap();
    }
    let db = Database::open(&path, 8).unwrap();
    assert_eq!(
        db.query("select count(*) from t").unwrap().scalar_i64(),
        Some(2),
        "only the committed rows survive"
    );
    cleanup(&path);
}

/// Recovery is idempotent: replaying the same log twice into the same
/// data file yields byte-identical state, and a recovered database
/// recovered *again* (no new writes) is unchanged.
#[test]
fn recovery_is_idempotent() {
    let path = temp_db_path("idem");
    cleanup(&path);
    {
        let mut db = Database::open(&path, 16).unwrap();
        db.execute("create table t (a int, b text)").unwrap();
        for i in 0..200 {
            db.execute(&format!("insert into t values ({i}, 'x{i}')"))
                .unwrap();
        }
        db.commit_durable().unwrap();
    }
    let wal_bytes = std::fs::read(minirel::wal_path_for(&path)).unwrap();
    // Replay the same log twice into one disk: second pass must change
    // nothing.
    let mut disk = minirel::disk::DiskManager::at_path(&path).unwrap();
    recovery::replay_into(&mut disk, &wal_bytes).unwrap();
    drop(disk);
    let after_once = std::fs::read(&path).unwrap();
    let mut disk = minirel::disk::DiskManager::at_path(&path).unwrap();
    recovery::replay_into(&mut disk, &wal_bytes).unwrap();
    drop(disk);
    let after_twice = std::fs::read(&path).unwrap();
    assert_eq!(after_once, after_twice, "replay must be idempotent");
    // And opening twice in a row sees the same rows.
    for _ in 0..2 {
        let db = Database::open(&path, 16).unwrap();
        assert_eq!(
            db.query("select count(*) from t").unwrap().scalar_i64(),
            Some(200)
        );
    }
    cleanup(&path);
}

/// Checkpoints move committed images into the data file; recovery after
/// a checkpoint plus further commits lands on the latest commit.
#[test]
fn checkpoint_then_more_commits_recovers_latest() {
    let path = temp_db_path("ckpt");
    cleanup(&path);
    {
        let mut db = Database::open(&path, 16).unwrap();
        db.execute("create table t (a int)").unwrap();
        db.execute("insert into t values (1)").unwrap();
        db.checkpoint().unwrap();
        db.execute("insert into t values (2)").unwrap();
        db.commit_durable().unwrap();
        db.execute("insert into t values (3)").unwrap();
        // no commit for row 3
    }
    let db = Database::open(&path, 16).unwrap();
    assert_eq!(
        db.query("select count(*) from t").unwrap().scalar_i64(),
        Some(2)
    );
    cleanup(&path);
}

/// A data file with no WAL is refused, not wiped or trusted.
#[test]
fn data_without_wal_is_corrupt() {
    let path = temp_db_path("nowal");
    cleanup(&path);
    std::fs::write(&path, vec![0u8; 4096]).unwrap();
    match Database::open(&path, 8) {
        Err(DbError::Corrupt(msg)) => assert!(msg.contains("wal"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}", other = other.err()),
    }
    cleanup(&path);
}

/// File-tailing replica: a second "process view" built purely from the
/// leader's files follows new commits.
#[test]
fn file_tailing_replica_follows() {
    let path = temp_db_path("tailrep");
    cleanup(&path);
    let mut leader = Database::open_with(&path, 32, 1).unwrap();
    leader.execute("create table t (a int)").unwrap();
    leader.execute("insert into t values (1), (2)").unwrap();
    leader.commit_durable().unwrap();
    let replica = Replica::tail_file(&path, 32, Duration::from_millis(5)).unwrap();
    assert_eq!(
        replica
            .query("select count(*) from t")
            .unwrap()
            .scalar_i64(),
        Some(2)
    );
    leader.execute("insert into t values (3)").unwrap();
    let lsn = leader.commit_durable().unwrap();
    assert!(
        replica.wait_for_lsn(lsn, Duration::from_secs(10)),
        "tail replica stuck at lsn {} (want {lsn}); err={:?}",
        replica.applied_lsn(),
        replica.error()
    );
    assert_eq!(
        replica
            .query("select count(*) from t")
            .unwrap()
            .scalar_i64(),
        Some(3)
    );
    // A checkpoint mid-stream must not derail the tailer.
    leader.execute("insert into t values (4)").unwrap();
    leader.checkpoint().unwrap();
    leader.execute("insert into t values (5)").unwrap();
    let lsn = leader.commit_durable().unwrap();
    assert!(replica.wait_for_lsn(lsn, Duration::from_secs(10)));
    assert_eq!(
        replica
            .query("select count(*) from t")
            .unwrap()
            .scalar_i64(),
        Some(5)
    );
    drop(replica);
    drop(leader);
    cleanup(&path);
}

/// Eviction pressure with a WAL attached: a pool far smaller than the
/// working set keeps every committed row readable (images round-trip
/// through the log, not the data file).
#[test]
fn tiny_pool_evictions_roundtrip_through_wal() {
    let mut db = Database::in_memory_durable(4, wal::DEFAULT_GROUP_COMMIT);
    db.execute("create table t (a int, pad text)").unwrap();
    let tid = db.table_id("t").unwrap();
    for i in 0..2000i64 {
        db.insert(tid, vec![Value::Int(i), Value::Str(format!("pad-{i:06}"))])
            .unwrap();
    }
    db.commit().unwrap();
    assert_eq!(
        db.query("select count(*) from t").unwrap().scalar_i64(),
        Some(2000)
    );
    assert_eq!(
        db.query("select sum(a) from t").unwrap().scalar_i64(),
        Some((0..2000).sum())
    );
}
