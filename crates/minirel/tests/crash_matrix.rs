//! Crash matrix: kill the process at randomized WAL-sync boundaries
//! (`MINIREL_CRASH_SYNCS=<n>` aborts before the nth sync), reopen, and
//! assert that recovery lands on a whole-commit state that contains
//! every acknowledged batch.
//!
//! The parent test re-executes its own test binary to run
//! `child_crash_writer` in a subprocess with the crash env set; the
//! child appends fixed-size batches, calling [`Database::commit_durable`]
//! after each and printing `ACK <batch>` once the commit returns. The
//! parent then reopens the files the dead child left behind.

use minirel::{Database, Value};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

const BATCH: i64 = 25;
const MAX_BATCHES: i64 = 12;

fn temp_db_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("minirel-crash-{tag}-{}.db", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(minirel::wal_path_for(path));
    let mut tmp = minirel::wal_path_for(path).into_os_string();
    tmp.push(".tmp");
    let _ = std::fs::remove_file(tmp);
}

/// Subprocess body — only meaningful with `MINIREL_CRASH_DB` set, so a
/// plain `cargo test -- --ignored` run is a no-op.
#[test]
#[ignore = "subprocess body for the crash matrix; driven by crash_matrix_recovers"]
fn child_crash_writer() {
    let Ok(path) = std::env::var("MINIREL_CRASH_DB") else {
        return;
    };
    let path = PathBuf::from(path);
    // group_commit = 1: every commit_durable is exactly one sync, so the
    // crash ordinal sweeps cleanly across batch boundaries.
    let mut db = Database::open_with(&path, 32, 1).expect("child open");
    let tid = db.table_id("log").expect("seeded table");
    let start = db
        .query("select count(*) from log")
        .unwrap()
        .scalar_i64()
        .unwrap()
        / BATCH;
    for batch in start..start + MAX_BATCHES {
        for j in 0..BATCH {
            let seq = batch * BATCH + j;
            db.insert(
                tid,
                vec![
                    Value::Int(seq),
                    Value::Int(batch),
                    Value::Str(format!("payload-{seq:08}")),
                ],
            )
            .unwrap();
        }
        db.commit_durable().unwrap();
        // The commit returned: it is durable, so the parent may hold us
        // to it. Flush — abort() drops buffered stdout.
        println!("ACK {batch}");
        std::io::stdout().flush().unwrap();
    }
}

fn run_child(path: &PathBuf, crash_syncs: u64) -> i64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args(["child_crash_writer", "--exact", "--ignored", "--nocapture"])
        .env("MINIREL_CRASH_DB", path)
        .env("MINIREL_CRASH_SYNCS", crash_syncs.to_string())
        .output()
        .expect("spawn child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut last_ack = -1i64;
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("ACK ") {
            if let Ok(b) = rest.trim().parse::<i64>() {
                last_ack = last_ack.max(b);
            }
        }
    }
    last_ack
}

#[test]
fn crash_matrix_recovers() {
    let path = temp_db_path("matrix");
    cleanup(&path);
    // Seed without crash injection so the WAL exists before any child
    // can die mid-rotation.
    {
        let mut db = Database::open(&path, 32).unwrap();
        db.execute("create table log (seq int, batch int, pad text)")
            .unwrap();
        db.execute("create index log_seq on log (seq)").unwrap();
        db.commit_durable().unwrap();
    }
    let mut total_acked = -1i64;
    // Sync ordinal 1 hits the child's own open/rotation; higher
    // ordinals land between batch commits.
    for crash_syncs in 1..=8u64 {
        let last_ack = run_child(&path, crash_syncs);
        total_acked = total_acked.max(last_ack);

        // Reopen twice: recovery must be idempotent.
        let mut counts = Vec::new();
        for _ in 0..2 {
            let db = Database::open(&path, 32)
                .unwrap_or_else(|e| panic!("reopen after crash_syncs={crash_syncs} failed: {e}"));
            let n = db
                .query("select count(*) from log")
                .unwrap()
                .scalar_i64()
                .unwrap();
            counts.push(n);

            // Whole batches only: a commit covers a full batch, so no
            // recovered state may expose a partial one.
            assert_eq!(
                n % BATCH,
                0,
                "crash_syncs={crash_syncs}: {n} rows is a torn batch"
            );
            // No acknowledged commit may be lost.
            assert!(
                n >= (total_acked + 1) * BATCH,
                "crash_syncs={crash_syncs}: acked batch {total_acked} lost ({n} rows)"
            );
            if n > 0 {
                // Heap and index agree: the highest row is reachable
                // through the B+tree probe path too.
                let max_seq = db
                    .query("select max(seq) from log")
                    .unwrap()
                    .scalar_i64()
                    .unwrap();
                assert_eq!(max_seq, n - 1, "crash_syncs={crash_syncs}: seq gap");
                let probed = db
                    .query(&format!("select count(*) from log where seq = {max_seq}"))
                    .unwrap()
                    .scalar_i64()
                    .unwrap();
                assert_eq!(probed, 1, "crash_syncs={crash_syncs}: index missing row");
            }
        }
        assert_eq!(
            counts[0], counts[1],
            "crash_syncs={crash_syncs}: recovery not idempotent"
        );
    }
    assert!(
        total_acked >= 0,
        "no child ever acknowledged a batch — crash points all landed before the first commit"
    );
    cleanup(&path);
}

/// The in-process flavor of the same bar: a replica spawned from a
/// durable leader keeps serving the committed prefix even while the
/// leader keeps writing, and never reads a torn batch.
#[test]
fn replica_serves_committed_prefix_under_writes() {
    let mut leader = Database::in_memory_durable(64, 1);
    leader
        .execute("create table log (seq int, batch int)")
        .unwrap();
    let tid = leader.table_id("log").unwrap();
    let replica = minirel::Replica::spawn(&mut leader).unwrap();
    for batch in 0..20i64 {
        for j in 0..BATCH {
            leader
                .insert(tid, vec![Value::Int(batch * BATCH + j), Value::Int(batch)])
                .unwrap();
        }
        let lsn = leader.commit().unwrap();
        assert!(replica.wait_for_lsn(lsn, Duration::from_secs(10)));
        let n = replica
            .query("select count(*) from log")
            .unwrap()
            .scalar_i64()
            .unwrap();
        assert_eq!(n % BATCH, 0, "replica saw a torn batch: {n}");
        assert!(n >= (batch + 1) * BATCH);
    }
}
