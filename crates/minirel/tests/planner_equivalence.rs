//! Planner equivalence: the staged pipeline (bind → plan → lower →
//! execute) against the reference interpreter, row-multiset for
//! row-multiset, over a hand-written corpus and randomized
//! schemas/predicates/joins — plus plan-shape regression tests pinned
//! with `EXPLAIN`.
//!
//! Comparison contract: both engines `Ok` → equal multisets of rows
//! (the planner may reorder joins and pick key-ordered index-only
//! scans, so row order is only compared where SQL pins it); both `Err`
//! → pass; one `Ok`, one `Err` → fail.

use minirel::sql::reference::{run_select, SqlCtx};
use minirel::sql::{parse_statement, Statement};
use minirel::value::Row;
use minirel::{Database, DbResult, Value};
use proptest::prelude::*;

/// Run `sql` through the reference interpreter.
fn reference_select(db: &Database, sql: &str) -> DbResult<Vec<Row>> {
    let stmt = parse_statement(sql)?;
    let Statement::Select(q) = &stmt else {
        panic!("corpus entry is not a SELECT: {sql}");
    };
    let (pool, catalog) = db.parts();
    let mut ctx = SqlCtx::new(pool, catalog, db.current_timestamp(), db.sort_budget_rows());
    Ok(run_select(&mut ctx, q)?.rows)
}

/// Multiset fingerprint: Debug text of each row, sorted.
fn multiset(rows: &[Row]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    keys.sort();
    keys
}

/// Assert the two engines agree on `sql`. Returns the planner's rows for
/// follow-up assertions.
fn assert_equiv(db: &Database, sql: &str) -> Option<Vec<Row>> {
    let planned = db.query(sql).map(|rs| rs.rows);
    let interpreted = reference_select(db, sql);
    match (planned, interpreted) {
        (Ok(p), Ok(i)) => {
            assert_eq!(
                multiset(&p),
                multiset(&i),
                "engines disagree on: {sql}\nplan:\n{}",
                db.query(&format!("explain {sql}"))
                    .map(|rs| rs
                        .rows
                        .iter()
                        .filter_map(|r| r[0].as_str().map(str::to_owned))
                        .collect::<Vec<_>>()
                        .join("\n"))
                    .unwrap_or_default()
            );
            Some(p)
        }
        (Err(_), Err(_)) => None,
        (Ok(p), Err(e)) => panic!(
            "planner Ok ({} rows), interpreter Err ({e}) on: {sql}",
            p.len()
        ),
        (Err(e), Ok(i)) => panic!(
            "planner Err ({e}), interpreter Ok ({} rows) on: {sql}",
            i.len()
        ),
    }
}

/// `t(a int, b float, c str)` and `u(a int, d int)`, optionally indexed,
/// populated with `n` deterministic pseudo-random rows including NULLs
/// and duplicates.
fn build_db(n: i64, idx_ta: bool, idx_uad: bool, idx_tc: bool) -> Database {
    let mut db = Database::in_memory();
    db.execute("create table t (a int, b float, c str)")
        .unwrap();
    db.execute("create table u (a int, d int)").unwrap();
    if idx_ta {
        db.execute("create index t_a on t (a)").unwrap();
    }
    if idx_uad {
        db.execute("create index u_ad on u (a, d)").unwrap();
    }
    if idx_tc {
        db.execute("create index t_c on t (c)").unwrap();
    }
    let tid = db.table_id("t").unwrap();
    let uid = db.table_id("u").unwrap();
    let mut state = 0x9e3779b9u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    for _ in 0..n {
        let a = rng() % 12;
        let b = if rng() % 7 == 0 {
            Value::Null
        } else {
            Value::Float((rng() % 40) as f64 / 4.0)
        };
        let c = match rng() % 5 {
            0 => Value::Null,
            1 => Value::Str("x".into()),
            2 => Value::Str("y".into()),
            3 => Value::Str(String::new()),
            _ => Value::Str(format!("s{}", rng() % 6)),
        };
        db.insert(tid, vec![Value::Int(a), b, c]).unwrap();
    }
    for _ in 0..n {
        let a = if rng() % 9 == 0 {
            Value::Null
        } else {
            Value::Int(rng() % 12)
        };
        db.insert(uid, vec![a, Value::Int(rng() % 8)]).unwrap();
    }
    db.set_current_timestamp(1000);
    db
}

/// Hand-written corpus: every operator and probe shape, with and without
/// indexes, with row order asserted wherever ORDER BY pins it.
const CORPUS: &[&str] = &[
    // Scans, pushdown, pruning.
    "select * from t",
    "select a from t",
    "select a, c from t where b > 3.5",
    "select a from t where a = 5",
    "select a, b from t where a = 5 and b >= 2.0",
    "select c from t where c = 'x'",
    "select a from t where a > 3 and a <= 8",
    "select a from t where a >= 200",
    "select a from t where 5 = a",
    "select a from t where 3 < a and 8 >= a",
    "select a from t where a = 5.0",
    "select a from t where a = 4.5",
    "select a from t where a > 2.5",
    "select b from t where b = 3",
    "select a from t where a in (1, 3, 5, 99)",
    "select a from t where a not in (1, 3, 5)",
    "select a from t where a in (select d from u)",
    "select a from t where a not in (select d from u)",
    "select c from t where c is null",
    "select c from t where c is not null",
    "select a from t where not (a = 3 or b < 1.0)",
    "select a from t where null = a",
    // Expressions and functions.
    "select a + 1, b * 2.0 from t where a < 4",
    "select coalesce(c, 'none') from t",
    "select abs(a - 6) from t where b is not null",
    // Scalar subqueries.
    "select a from t where b > (select avg(b) from t)",
    "select a, (select max(d) from u) from t where a = 1",
    "select a from t where a = (select min(a) from u where d > 3)",
    // Joins.
    "select t.a, d from t, u where t.a = u.a",
    "select t.a, d from t join u on t.a = u.a where b > 2.0",
    "select t.a, u.d from t left outer join u on t.a = u.a",
    "select t.a, u.d from t left outer join u on t.a = u.a where u.d is null",
    "select count(*) from t, u",
    "select count(*) from t, u where t.a < u.d",
    "select count(*) from t t1, t t2, u where t1.a = t2.a and t2.a = u.a",
    "select count(*) from t join u on t.a = u.a and b > 1.5",
    // Aggregates.
    "select count(*) from t",
    "select count(*), sum(b), min(c), max(a) from t where a > 2",
    "select a, count(*) from t group by a order by a",
    "select a, avg(b) from t where b is not null group by a order by a",
    "select c, count(*) from t group by c order by count(*) desc, c",
    "select a, count(*) from t group by a order by a limit 3",
    "select count(*) from t where a = 100",
    "select sum(a) from t where a = 100",
    // Order/limit/distinct (order pinned by unique-ish full key).
    "select a, b, c from t order by a, b, c",
    "select a, b, c from t order by b desc, a, c limit 5",
    "select distinct a from t order by a",
    "select distinct c from t",
    "select distinct t.a from t, u where t.a = u.a order by t.a",
    // CTEs.
    "with big(a, n) as (select a, count(*) from t group by a) \
     select a, n from big where n > 1 order by a",
    "with big(a, n) as (select a, count(*) from t group by a) \
     select t.c, big.n from t, big where t.a = big.a order by t.c, big.n",
    // current timestamp.
    "select a from t where a + 1000 > current timestamp",
    // Errors must error in both engines.
    "select zz from t",
    "select a from t where q.a = 1",
    "select a, count(*) from t",
    "select a from t group by a order by b",
    "select unknownfn(a) from t",
    "select a from t where a in (select a, d from u)",
    "select a from t where a = (select a, d from u)",
    "select a from t join u",
];

#[test]
fn corpus_matches_reference_all_index_combinations() {
    for &(idx_ta, idx_uad, idx_tc) in &[
        (false, false, false),
        (true, false, false),
        (true, true, false),
        (true, true, true),
    ] {
        let db = build_db(60, idx_ta, idx_uad, idx_tc);
        for sql in CORPUS {
            assert_equiv(&db, sql);
        }
    }
}

#[test]
fn corpus_matches_reference_on_empty_tables() {
    let db = build_db(0, true, true, false);
    for sql in CORPUS {
        assert_equiv(&db, sql);
    }
}

#[test]
fn ordered_queries_agree_on_row_order() {
    // Where ORDER BY totally orders the output, the engines must agree
    // on exact row order, not just the multiset.
    let db = build_db(60, true, true, false);
    for sql in [
        "select a, b, c from t order by a, b, c",
        "select a, b, c from t where a > 2 order by a desc, b, c",
        "select a, count(*) from t group by a order by a",
    ] {
        let planned = db.query(sql).unwrap().rows;
        let interpreted = reference_select(&db, sql).unwrap();
        assert_eq!(planned, interpreted, "row order differs on: {sql}");
    }
}

// ------------------------------------------------------------- proptest

/// Random predicate over columns `a`/`b`/`c`/`d`, grown from a seed: the
/// vendored proptest has no recursive combinators, so recursion is
/// explicit. `d` only exists on `u` — single-table queries that draw it
/// must error identically in both engines, which is itself a case worth
/// generating.
fn gen_pred(state: &mut u64, depth: u32) -> String {
    fn next(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }
    let n_choices = if depth == 0 { 8 } else { 11 };
    match next(state) % n_choices {
        0 => {
            let col = ["a", "b", "c", "d"][(next(state) % 4) as usize];
            let op = ["=", "<>", "<", "<=", ">", ">="][(next(state) % 6) as usize];
            let k = (next(state) % 20) as i64 - 5;
            format!("{col} {op} {k}")
        }
        1 => {
            let k = (next(state) % 20) as i64 - 5;
            format!("a in ({k}, {}, {})", k + 1, k + 3)
        }
        2 => format!("b > {}.25", next(state) % 10),
        3 => format!("c = 's{}'", next(state) % 6),
        4 => {
            let col = ["a", "b", "c", "d"][(next(state) % 4) as usize];
            format!("{col} is null")
        }
        5 => "a in (select d from u)".to_owned(),
        6 => "b < (select avg(b) from t)".to_owned(),
        7 => {
            let k = (next(state) % 20) as i64 - 5;
            format!("a not in ({k}, {})", k + 2)
        }
        8 => format!(
            "({} and {})",
            gen_pred(state, depth - 1),
            gen_pred(state, depth - 1)
        ),
        9 => format!(
            "({} or {})",
            gen_pred(state, depth - 1),
            gen_pred(state, depth - 1)
        ),
        _ => format!("not ({})", gen_pred(state, depth - 1)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random schema (row count, index combination) × random predicate,
    /// single-table query shapes.
    #[test]
    fn random_single_table(
        n in 0i64..80,
        idx_ta in any::<bool>(),
        idx_tc in any::<bool>(),
        pred_seed in any::<u64>(),
        shape in 0usize..5,
    ) {
        let mut seed = pred_seed;
        let pred = gen_pred(&mut seed, 3);
        let db = build_db(n, idx_ta, false, idx_tc);
        let sql = match shape {
            0 => format!("select a, b, c from t where {pred}"),
            1 => format!("select a from t where {pred} order by a, b, c limit 7"),
            2 => format!("select count(*), min(a), max(a) from t where {pred}"),
            3 => format!("select a, count(*) from t where {pred} group by a order by a"),
            _ => format!("select distinct c from t where {pred}"),
        };
        assert_equiv(&db, &sql);
    }

    /// Random joins: the planner reorders and switches algorithms, the
    /// interpreter goes left to right — the multisets must still match.
    #[test]
    fn random_joins(
        n in 0i64..50,
        idx_ta in any::<bool>(),
        idx_uad in any::<bool>(),
        pred_seed in any::<u64>(),
        outer in any::<bool>(),
        extra_table in any::<bool>(),
    ) {
        let mut seed = pred_seed;
        let pred = gen_pred(&mut seed, 3);
        let db = build_db(n, idx_ta, idx_uad, false);
        let join = if outer {
            "t left outer join u on t.a = u.a"
        } else {
            "t join u on t.a = u.a"
        };
        let sql = if extra_table {
            format!("select count(*) from {join} join u u2 on u.d = u2.d where {pred}")
        } else {
            format!("select count(*) from {join} where {pred}")
        };
        assert_equiv(&db, &sql);
    }
}

// ------------------------------------------------------- plan shape

/// The rendered EXPLAIN text for `sql` as one string.
fn explain(db: &Database, sql: &str) -> String {
    let rs = db.query(&format!("explain {sql}")).unwrap();
    assert_eq!(rs.columns, vec!["plan".to_owned()]);
    rs.rows
        .iter()
        .filter_map(|r| r[0].as_str().map(str::to_owned))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn explain_has_logical_and_physical_sections() {
    let db = build_db(60, true, true, false);
    let text = explain(&db, "select a from t where a = 3");
    assert!(text.contains("== logical =="), "{text}");
    assert!(text.contains("== physical =="), "{text}");
}

#[test]
fn eq_predicate_on_indexed_column_uses_index_scan() {
    let db = build_db(200, true, true, false);
    let text = explain(&db, "select b from t where a = 3");
    assert!(text.contains("IndexScan t via t_a [eq=1]"), "{text}");
    // Same query without the index: sequential scan with the filter pushed.
    let db2 = build_db(200, false, false, false);
    let text2 = explain(&db2, "select b from t where a = 3");
    assert!(text2.contains("SeqScan t [filters=1"), "{text2}");
}

#[test]
fn range_predicate_extends_the_eq_prefix() {
    let db = build_db(200, false, true, false);
    let text = explain(&db, "select a, d from u where u.a = 3 and d > 2");
    assert!(text.contains("IndexScan u via u_ad [eq=1 range"), "{text}");
}

#[test]
fn in_list_probes_single_column_index() {
    let db = build_db(200, true, false, false);
    let text = explain(&db, "select b from t where a in (1, 5, 9)");
    assert!(text.contains("in-probe"), "{text}");
}

#[test]
fn covering_index_scan_is_index_only() {
    let db = build_db(200, false, true, false);
    let text = explain(&db, "select a, d from u where u.a = 3");
    assert!(text.contains("index-only"), "{text}");
}

#[test]
fn pushdown_lands_filters_on_the_scan() {
    let db = build_db(200, false, false, false);
    let text = explain(
        &db,
        "select t.a from t, u where t.a = u.a and b > 1.0 and d = 2",
    );
    // Both single-source conjuncts pushed below the join.
    assert!(text.contains("scan t [filters=1"), "{text}");
    assert!(text.contains("scan u [filters=1"), "{text}");
    assert!(text.contains("MergeJoin [keys=1]"), "{text}");
}

#[test]
fn tiny_input_equi_join_lowers_to_nested_loop() {
    let mut db = Database::in_memory();
    db.execute("create table small (a int)").unwrap();
    db.execute("create table big (a int, x int)").unwrap();
    db.execute("insert into small values (1)").unwrap();
    let big = db.table_id("big").unwrap();
    for i in 0..200 {
        db.insert(big, vec![Value::Int(i % 5), Value::Int(i)])
            .unwrap();
    }
    let text = explain(&db, "select small.a from small, big where small.a = big.a");
    assert!(text.contains("NlJoin"), "{text}");
    let text2 = explain(&db, "select b1.a from big b1, big b2 where b1.x = b2.x");
    assert!(text2.contains("MergeJoin"), "{text2}");
}

#[test]
fn monitor_shaped_query_switches_to_index_scan() {
    // The crawler's hub-revisit lookup: `link` indexed on oid_src, as in
    // crawler tables. The planner must probe, not scan.
    let mut db = Database::in_memory();
    db.execute(
        "create table link (oid_src int, sid_src int, oid_dst int, sid_dst int, discovered int)",
    )
    .unwrap();
    db.execute("create index link_src on link (oid_src)")
        .unwrap();
    let tid = db.table_id("link").unwrap();
    for i in 0..4000i64 {
        db.insert(
            tid,
            vec![
                Value::Int(i % 400),
                Value::Int(1),
                Value::Int(i),
                Value::Int(2),
                Value::Int(i),
            ],
        )
        .unwrap();
    }
    let text = explain(&db, "select oid_dst from link where oid_src = 7");
    assert!(
        text.contains("IndexScan link via link_src [eq=1]"),
        "{text}"
    );
    // And the probe answers like the scan.
    assert_equiv(&db, "select oid_dst from link where oid_src = 7");
    // Fewer logical reads than a full scan: the acceptance criterion's
    // unit check (the bench measures the full monitor suite).
    db.reset_io_stats();
    db.query("select oid_dst from link where oid_src = 7")
        .unwrap();
    let probe_reads = db.io_stats().logical_reads;
    let db2 = {
        let mut d = Database::in_memory();
        d.execute("create table link (oid_src int, sid_src int, oid_dst int, sid_dst int, discovered int)").unwrap();
        let t2 = d.table_id("link").unwrap();
        for i in 0..4000i64 {
            d.insert(
                t2,
                vec![
                    Value::Int(i % 400),
                    Value::Int(1),
                    Value::Int(i),
                    Value::Int(2),
                    Value::Int(i),
                ],
            )
            .unwrap();
        }
        d
    };
    db2.reset_io_stats();
    db2.query("select oid_dst from link where oid_src = 7")
        .unwrap();
    let scan_reads = db2.io_stats().logical_reads;
    assert!(
        probe_reads * 2 <= scan_reads,
        "index probe should halve logical reads: probe={probe_reads} scan={scan_reads}"
    );
}

// ------------------------------------------------- prepared statements

#[test]
fn prepared_plans_are_cached_and_parameterized() {
    let db = build_db(60, true, false, false);
    let (h0, m0) = db.plan_cache_stats();
    let sql = "select b from t where a = ?";
    let p1 = db.prepare(sql).unwrap();
    let p2 = db.prepare(sql).unwrap();
    let (h1, m1) = db.plan_cache_stats();
    assert_eq!(h1 - h0, 1, "second prepare must hit");
    assert_eq!(m1 - m0, 1, "first prepare must miss");
    assert!(
        std::sync::Arc::ptr_eq(&p1, &p2),
        "hit returns the cached plan"
    );
    // Same plan, different bindings.
    for k in [1i64, 5, 100] {
        let via_plan = db.query_prepared(&p1, &[Value::Int(k)]).unwrap().rows;
        let via_text = db
            .query(&format!("select b from t where a = {k}"))
            .unwrap()
            .rows;
        assert_eq!(multiset(&via_plan), multiset(&via_text), "a = {k}");
    }
    // Wrong arity is an error, not a silent misbind.
    assert!(db.query_prepared(&p1, &[]).is_err());
    assert!(db
        .query_prepared(&p1, &[Value::Int(1), Value::Int(2)])
        .is_err());
}

#[test]
fn ddl_invalidates_cached_plans() {
    let mut db = build_db(20, false, false, false);
    db.query("select a from t where a = 1").unwrap();
    db.query("select a from t where a = 1").unwrap();
    let (h, _) = db.plan_cache_stats();
    assert_eq!(h, 1);
    // New index: the cached SeqScan plan must be dropped so the next
    // query can probe it.
    db.execute("create index t_a on t (a)").unwrap();
    let text = explain(&db, "select a from t where a = 1");
    drop(text);
    db.query("select a from t where a = 1").unwrap();
    let plan = db.prepare("select a from t where a = 1").unwrap();
    let rendered = plan.explain.join("\n");
    assert!(
        rendered.contains("IndexScan") || rendered.contains("SeqScan"),
        "{rendered}"
    );
    // 20 rows / few pages: either choice is legal, but it must be the
    // *new* plan object, not the pre-DDL one — verified by cache stats:
    let (_, m) = db.plan_cache_stats();
    assert!(m >= 2, "DDL must force a re-plan (misses={m})");
}

#[test]
fn prepared_scalar_subquery_reevaluates_per_execution() {
    // Regression: a cached plan must re-run uncorrelated subqueries on
    // every execution, not bake in the first result.
    let mut db = Database::in_memory();
    db.execute("create table s (v int)").unwrap();
    db.execute("create table w (x int)").unwrap();
    db.execute("insert into s values (10)").unwrap();
    for x in [5i64, 15, 25] {
        db.execute(&format!("insert into w values ({x})")).unwrap();
    }
    let plan = db
        .prepare("select x from w where x > (select max(v) from s)")
        .unwrap();
    let before = db.query_prepared(&plan, &[]).unwrap();
    assert_eq!(multiset(&before.rows), vec!["[Int(15)]", "[Int(25)]"]);
    // Mutate the subquery's source; the same plan must see it.
    db.execute("insert into s values (20)").unwrap();
    let after = db.query_prepared(&plan, &[]).unwrap();
    assert_eq!(multiset(&after.rows), vec!["[Int(25)]"]);
    // The clock is also per-execution.
    let tplan = db
        .prepare("select x from w where x > current timestamp")
        .unwrap();
    db.set_current_timestamp(0);
    assert_eq!(db.query_prepared(&tplan, &[]).unwrap().rows.len(), 3);
    db.set_current_timestamp(20);
    assert_eq!(db.query_prepared(&tplan, &[]).unwrap().rows.len(), 1);
}

#[test]
fn query_rejects_non_select_and_dml_still_runs() {
    let mut db = build_db(5, false, false, false);
    let err = db.query("insert into t values (1, 2.0, 'z')").unwrap_err();
    assert!(
        err.to_string().contains("query() accepts SELECT only"),
        "{err}"
    );
    // DML through execute still works and is visible to cached plans.
    let plan = db.prepare("select count(*) from t").unwrap();
    let n0 = db.query_prepared(&plan, &[]).unwrap().scalar_i64().unwrap();
    db.execute("insert into t values (1, 2.0, 'z')").unwrap();
    let n1 = db.query_prepared(&plan, &[]).unwrap().scalar_i64().unwrap();
    assert_eq!(n1, n0 + 1);
}
