//! SQL corner cases beyond the paper's queries: alias resolution, NULL
//! propagation through aggregates and outer joins, error surfacing.

use minirel::{Database, Value};

fn db() -> Database {
    let mut db = Database::in_memory();
    db.execute("create table t (a int, b float, s text)")
        .unwrap();
    db.execute("insert into t values (1, 0.5, 'x'), (2, 1.5, 'y'), (3, 2.5, 'x'), (4, null, null)")
        .unwrap();
    db
}

#[test]
fn order_by_output_alias() {
    let mut d = db();
    let rs = d
        .execute("select s, count(*) cnt from t where s is not null group by s order by cnt desc")
        .unwrap();
    assert_eq!(rs.columns, vec!["s", "cnt"]);
    assert_eq!(rs.rows[0][0], Value::Str("x".into()));
    assert_eq!(rs.rows[0][1], Value::Int(2));
}

#[test]
fn aggregates_skip_nulls() {
    let mut d = db();
    let rs = d
        .execute("select count(*), count(b), sum(b), avg(b), min(b), max(b) from t")
        .unwrap();
    let row = &rs.rows[0];
    assert_eq!(row[0], Value::Int(4));
    assert_eq!(row[1], Value::Int(3));
    assert_eq!(row[2], Value::Float(4.5));
    assert_eq!(row[3], Value::Float(1.5));
    assert_eq!(row[4], Value::Float(0.5));
    assert_eq!(row[5], Value::Float(2.5));
}

#[test]
fn scalar_subquery_on_empty_result_is_null() {
    let mut d = db();
    let rs = d
        .execute("select (select a from t where a > 100) from t where a = 1")
        .unwrap();
    assert!(rs.rows[0][0].is_null());
}

#[test]
fn insert_with_column_mapping_defaults_missing_to_null() {
    let mut d = db();
    d.execute("insert into t (s, a) values ('z', 9)").unwrap();
    let rs = d.execute("select a, b, s from t where a = 9").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(9));
    assert!(rs.rows[0][1].is_null());
    assert_eq!(rs.rows[0][2], Value::Str("z".into()));
}

#[test]
fn insert_from_select() {
    let mut d = db();
    d.execute("create table t2 (a int, s text)").unwrap();
    let rs = d
        .execute("insert into t2 (a, s) (select a, s from t where s = 'x')")
        .unwrap();
    assert_eq!(rs.affected, 2);
    assert_eq!(
        d.execute("select count(*) from t2").unwrap().scalar_i64(),
        Some(2)
    );
}

#[test]
fn division_by_zero_is_an_error_not_a_crash() {
    let mut d = db();
    let e = d.execute("select a / 0 from t").unwrap_err();
    assert!(e.to_string().contains("division by zero"));
    // The table is untouched afterwards.
    assert_eq!(
        d.execute("select count(*) from t").unwrap().scalar_i64(),
        Some(4)
    );
}

#[test]
fn where_on_aggregate_is_rejected() {
    let mut d = db();
    assert!(d.execute("select a from t where sum(b) > 1").is_err());
}

#[test]
fn group_by_with_null_group_key() {
    let mut d = db();
    let rs = d
        .execute("select s, count(*) from t group by s order by s")
        .unwrap();
    // NULL forms its own group and sorts first.
    assert_eq!(rs.rows.len(), 3);
    assert!(rs.rows[0][0].is_null());
    assert_eq!(rs.rows[0][1], Value::Int(1));
}

#[test]
fn three_way_join_with_mixed_predicates() {
    let mut d = Database::in_memory();
    d.execute("create table a (k int, v int)").unwrap();
    d.execute("create table b (k int, w int)").unwrap();
    d.execute("create table c (w int, name text)").unwrap();
    d.execute("insert into a values (1, 10), (2, 20)").unwrap();
    d.execute("insert into b values (1, 100), (2, 200)")
        .unwrap();
    d.execute("insert into c values (100, 'hundred'), (300, 'threehundred')")
        .unwrap();
    let rs = d
        .execute(
            "select name from a, b, c \
             where a.k = b.k and b.w = c.w and v < 15",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Str("hundred".into()));
}

#[test]
fn update_on_indexed_column_keeps_index_usable() {
    let mut d = db();
    d.execute("create index t_a on t (a)").unwrap();
    d.execute("update t set a = a + 100 where a <= 2").unwrap();
    let rs = d.execute("select count(*) from t where a = 101").unwrap();
    assert_eq!(rs.scalar_i64(), Some(1));
    let rs = d.execute("select count(*) from t where a = 1").unwrap();
    assert_eq!(rs.scalar_i64(), Some(0));
}

#[test]
fn string_comparison_and_concat() {
    let mut d = db();
    let rs = d
        .execute("select s + '!' from t where s > 'x' order by s")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Str("y!".into()));
}

#[test]
fn select_without_from() {
    let mut d = Database::in_memory();
    let rs = d.execute("select 1 + 2, 'hi'").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(3), Value::Str("hi".into())]]);
}

#[test]
fn cte_shadowing_is_scoped() {
    let mut d = db();
    // A CTE named `t` shadows the base table inside the query only.
    let rs = d
        .execute("with t(a) as (select 42) select a from t")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(42)]]);
    // Outside, the base table is intact.
    assert_eq!(
        d.execute("select count(*) from t").unwrap().scalar_i64(),
        Some(4)
    );
}

#[test]
fn not_in_with_nulls_in_probe() {
    let mut d = db();
    // a = 4 row: `s` is NULL; NULL NOT IN (...) is false (not an error).
    let rs = d.execute("select a from t where s not in ('x')").unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![2]);
}
