//! Multi-threaded stress tests for the reader-parallel storage layer.
//!
//! The contract under test (see `buffer.rs` / `db.rs` docs): `&self`
//! methods are safe from many threads at once — the lock-striped buffer
//! pool serializes frame access per shard and counts I/O atomically —
//! while `&mut self` mutations are exclusive. Readers here hammer
//! B+tree probes, heap scans, and full SQL SELECTs in parallel with a
//! writer that forces leaf and root splits, and assert that nothing is
//! ever torn and no counter increment is lost.

use minirel::btree::BTree;
use minirel::buffer::{BufferPool, EvictionPolicy};
use minirel::disk::DiskManager;
use minirel::value::{encode_composite_key, Value};
use minirel::{Database, Rid};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

fn key_i(i: i64) -> Vec<u8> {
    encode_composite_key(&[Value::Int(i)])
}

fn rid(i: u32) -> Rid {
    Rid {
        page: i,
        slot: (i % 7) as u16,
    }
}

/// Many reader threads sharing one pool and one B+tree — no outer lock
/// at all, exercising the `&self` read paths across shards — must all
/// see every entry, and the atomic I/O counters must account for every
/// logical read exactly.
#[test]
fn parallel_btree_readers_see_consistent_tree() {
    let pool = Arc::new(BufferPool::new(
        DiskManager::in_memory(),
        64,
        EvictionPolicy::Lru,
    ));
    let mut bt = BTree::create(&pool).unwrap();
    let n: i64 = 20_000; // multi-level tree: forces internal nodes
    for i in 0..n {
        bt.insert(&pool, &key_i(i), rid(i as u32)).unwrap();
    }
    bt.validate(&pool).unwrap();
    let bt = Arc::new(bt);

    pool.reset_stats();
    let before = pool.stats();
    let threads = 8;
    let probes_per_thread: i64 = 2_000;
    std::thread::scope(|s| {
        for t in 0..threads {
            let bt = Arc::clone(&bt);
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                for j in 0..probes_per_thread {
                    let i = (j * 7919 + t * 13) % n;
                    let hits = bt.lookup(&pool, &key_i(i)).unwrap();
                    assert_eq!(hits, vec![rid(i as u32)], "torn read for key {i}");
                }
            });
        }
    });
    let delta = pool.stats().since(&before);
    assert!(
        delta.logical_reads >= (threads * probes_per_thread) as u64,
        "counters lost increments: {} logical reads for {} probes",
        delta.logical_reads,
        threads * probes_per_thread
    );
    // Reads never dirty pages: physical writes must not move at all.
    assert_eq!(delta.physical_writes, 0, "a reader wrote to disk");
}

/// Readers running `Database::query` under a shared `RwLock` read lock
/// while a writer inserts batches (forcing B+tree splits) under the
/// write lock: the crawler's exact sharing pattern. Every observed
/// count must be one the writer actually committed — never a torn
/// in-between — and must be monotone per reader.
#[test]
fn sql_readers_run_against_live_inserts() {
    let db = Arc::new(RwLock::new(Database::in_memory_with_frames(128)));
    {
        let mut g = db.write().unwrap();
        g.execute("create table t (a int, b text, c float)")
            .unwrap();
        g.execute("create index t_a on t (a)").unwrap();
    }
    const BATCH: i64 = 100;
    const BATCHES: i64 = 60;
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for b in 0..BATCHES {
                let mut g = db.write().unwrap();
                let tid = g.table_id("t").unwrap();
                let rows = (0..BATCH)
                    .map(|i| {
                        let v = b * BATCH + i;
                        vec![
                            Value::Int(v),
                            Value::Str(format!("row-{v}-{}", "x".repeat((v % 23) as usize))),
                            Value::Float(v as f64 / 7.0),
                        ]
                    })
                    .collect();
                g.insert_many(tid, rows).unwrap();
            }
            done.store(true, Ordering::Release);
        })
    };

    let mut readers = Vec::new();
    for r in 0..4 {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut last = 0i64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) {
                let g = db.read().unwrap();
                let rs = g.query("select count(*) from t").unwrap();
                let n = rs.scalar_i64().unwrap();
                drop(g);
                assert!(
                    n % BATCH == 0,
                    "reader {r} saw a torn batch: {n} rows (not a multiple of {BATCH})"
                );
                assert!(
                    n >= last,
                    "reader {r} saw count go backwards: {last} -> {n}"
                );
                last = n;
                observations += 1;
                // A scan query too: decodes every row, so a torn page
                // or a half-maintained index would explode here.
                let rs = g_scan(&db, r);
                assert!(rs % BATCH == 0, "reader {r} torn scan: {rs}");
            }
            observations
        }));
    }

    writer.join().unwrap();
    for h in readers {
        let obs = h.join().unwrap();
        assert!(obs > 0, "reader never got a single query in");
    }
    let g = db.read().unwrap();
    assert_eq!(
        g.query("select count(*) from t").unwrap().scalar_i64(),
        Some(BATCH * BATCHES)
    );
    // Index agrees with the heap after all the concurrent churn.
    let rs = g
        .query("select count(*) from t where a >= 0")
        .unwrap()
        .scalar_i64();
    assert_eq!(rs, Some(BATCH * BATCHES));
}

/// A row-decoding scan under the read lock (helper for the stress test:
/// exercises string columns, not just the count aggregate).
fn g_scan(db: &Arc<RwLock<Database>>, seed: usize) -> i64 {
    let g = db.read().unwrap();
    let rs = g
        .query(&format!(
            "select count(*) from t where a >= {}",
            (seed * 997) % 50
        ))
        .unwrap();
    let base = g
        .query(&format!(
            "select count(*) from t where a < {}",
            (seed * 997) % 50
        ))
        .unwrap();
    rs.scalar_i64().unwrap() + base.scalar_i64().unwrap()
}

/// The atomic I/O counters must not lose increments under parallel SQL:
/// the same scan done N times serially and N times from 4 threads must
/// land the exact same logical-read total.
#[test]
fn io_stats_are_exact_under_parallel_queries() {
    let mut db = Database::in_memory_with_frames(256);
    db.execute("create table t (a int, b text)").unwrap();
    let tid = db.table_id("t").unwrap();
    let rows = (0..4000i64)
        .map(|i| vec![Value::Int(i), Value::Str(format!("r{i}"))])
        .collect();
    db.insert_many(tid, rows).unwrap();
    let db = Arc::new(db);

    let reads_of = |db: &Database, n: usize| {
        db.reset_io_stats();
        for _ in 0..n {
            db.query("select count(*) from t").unwrap();
        }
        db.io_stats().logical_reads
    };
    let serial = reads_of(&db, 12);

    db.reset_io_stats();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..3 {
                    db.query("select count(*) from t").unwrap();
                }
            });
        }
    });
    assert_eq!(
        db.io_stats().logical_reads,
        serial,
        "12 parallel scans must cost exactly what 12 serial scans cost"
    );
}
