//! The buffer pool: a fixed number of 4 KB frames between the operators
//! and the disk manager.
//!
//! This is the component the paper's Figure 8(b) experiment sweeps
//! ("Memory Scaling: relative time vs. Buffer Pool (x 4kB)"). Two facts
//! from the paper shape the design:
//!
//! * *"most storage managers use page-level caching"* — caching is by
//!   page, so small records (classifier statistics) with poor locality
//!   thrash the pool; and
//! * the classifier/distiller rewrite wins precisely because sort-merge
//!   plans touch pages sequentially.
//!
//! The pool therefore exposes **physical** (disk) and **logical** (call)
//! I/O counters, plus the eviction count, which the benchmark harness
//! reports alongside wall-clock time: counters are machine-independent
//! evidence that the access-path shapes match the paper.
//!
//! # Concurrency
//!
//! The pool has **interior mutability**: every method takes `&self`, so
//! concurrent readers (monitoring SQL, catalog scans, B+tree probes) can
//! share one pool without an external lock. Frames are partitioned into
//! lock-striped **shards** — a page lives in shard `pid % N`, each shard
//! behind its own short [`lockcheck::OrderedMutex`] — so two threads
//! touching different shards never contend. The I/O counters are atomics.
//!
//! Latch order, which every caller and this module obey (and which the
//! lock ranks enforce — see `LOCK_ORDER.toml` and `crates/lockcheck`):
//!
//! 1. **shard → disk**: a shard lock may acquire the disk lock (to fault
//!    a page in or write a victim back), never the reverse;
//! 2. **one shard at a time**: no code path holds two shard locks at
//!    once ([`BufferPool::copy_page`] reads the source out, releases it,
//!    then writes the destination);
//! 3. **page closures must not re-enter the pool**: the closure passed
//!    to [`BufferPool::with_page`] / [`BufferPool::with_page_mut`] runs
//!    while the shard lock is held, so calling any pool method from
//!    inside it can deadlock. Callers copy what they need out of the
//!    page and return.
//!
//! The pool serializes *page accesses within a shard*, not logical
//! operations: higher layers (e.g. [`crate::db::Database`] behind the
//! crawler's session lock) are responsible for ordering writers against
//! readers. What the pool guarantees is that a single page view is never
//! torn and the counters never lose increments.
//!
//! # Write-ahead discipline
//!
//! With a [`Wal`] attached ([`BufferPool::attach_wal`]) the pool runs
//! **no-steal**: a dirty page leaving the pool (eviction, `flush_all`,
//! [`BufferPool::log_dirty_frames`]) is appended to the log as a page
//! image instead of being written to the data file, and a pool miss
//! consults the log's page index before the data file. The data file is
//! written only by checkpoint/recovery code, so it always holds a
//! committed state. The WAL mutex is a leaf in the latch order:
//! `shard → {disk, wal}`.

use crate::disk::DiskManager;
use crate::error::{DbError, DbResult};
use crate::page::{PageId, INVALID_PAGE, PAGE_SIZE};
use crate::wal::Wal;
use lockcheck::{rank, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Replacement policy. LRU is the default; Clock exists for the ablation
/// bench (`bench_ablation` in `focus-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used unpinned frame.
    Lru,
    /// Second-chance / clock sweep.
    Clock,
}

/// Monotonic I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Pages actually read from the disk manager (misses).
    pub physical_reads: u64,
    /// Pages written back to the disk manager.
    pub physical_writes: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference since `earlier`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// Atomic backing for [`IoStats`]: counters increment under a shard lock
/// or none at all, so they must never lose updates from parallel readers.
#[derive(Debug, Default)]
struct AtomicIoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    evictions: AtomicU64,
}

impl AtomicIoStats {
    fn snapshot(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

struct Frame {
    page: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
    ref_bit: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page: INVALID_PAGE,
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: false,
            last_used: 0,
            ref_bit: false,
        }
    }
}

/// One lock stripe: the frames (and their map) for pages whose id hashes
/// here. All fields are guarded by the shard's mutex.
struct Shard {
    frames: Vec<Frame>,
    map: std::collections::HashMap<PageId, usize>,
    clock_hand: usize,
    tick: u64,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            frames: (0..capacity).map(|_| Frame::empty()).collect(),
            map: std::collections::HashMap::with_capacity(capacity * 2),
            clock_hand: 0,
            tick: 0,
        }
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame].last_used = self.tick;
        self.frames[frame].ref_bit = true;
    }
}

/// Upper bound on lock stripes.
const MAX_SHARDS: usize = 16;

/// Minimum frames per stripe. Striping trades eviction precision for
/// concurrency (LRU/Clock run per shard), so tiny pools — where every
/// frame matters and the Figure 8(b)-style sweeps live — stay at one
/// shard with exact global eviction, and the stripe count grows only
/// when each stripe still has a real working set.
const MIN_FRAMES_PER_SHARD: usize = 8;

fn shard_count(capacity: usize) -> usize {
    (capacity / MIN_FRAMES_PER_SHARD).clamp(1, MAX_SHARDS)
}

/// A pool of `capacity` frames in front of a [`DiskManager`], safe to
/// share across threads (`&self` everywhere; see the module docs for the
/// latch order).
pub struct BufferPool {
    disk: OrderedMutex<DiskManager>,
    shards: Vec<OrderedMutex<Shard>>,
    policy: EvictionPolicy,
    stats: AtomicIoStats,
    /// Total frames across shards. Cached: it only changes through
    /// `&mut self` ([`BufferPool::set_capacity`]), and reading it must
    /// not touch the shard latches — `Database::sort_budget_rows` asks
    /// on every statement, including the concurrent read path.
    capacity: usize,
    /// Write-ahead log; when present, dirty pages leave the pool into
    /// the log, never the data file (see module docs).
    wal: Option<Arc<Wal>>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames (≥ 1) over `disk`.
    pub fn new(disk: DiskManager, capacity: usize, policy: EvictionPolicy) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            disk: OrderedMutex::new(rank::DISK, disk),
            shards: Self::build_shards(capacity, shard_count(capacity)),
            policy,
            stats: AtomicIoStats::default(),
            capacity,
            wal: None,
        }
    }

    /// Attach a write-ahead log: from here on, dirty pages leave the
    /// pool into the log and the data file is checkpoint-only. Must be
    /// called before the pool holds dirty state (construction time).
    pub fn attach_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// The attached WAL, if any (cloned handle).
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.wal.clone()
    }

    fn build_shards(capacity: usize, nshards: usize) -> Vec<OrderedMutex<Shard>> {
        // Distribute frames as evenly as possible; every shard gets ≥ 1.
        (0..nshards)
            .map(|i| {
                let cap = capacity / nshards + usize::from(i < capacity % nshards);
                OrderedMutex::new(rank::BUFFER_SHARD, Shard::new(cap.max(1)))
            })
            .collect()
    }

    fn shard_of(&self, pid: PageId) -> &OrderedMutex<Shard> {
        &self.shards[pid as usize % self.shards.len()]
    }

    /// Number of frames. A plain field read: safe on the hot path.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resize the pool (flushes everything first). Used by the Figure 8(b)
    /// buffer sweep. Not safe to race with concurrent page access — the
    /// caller must be the sole user (it is `&mut self` for that reason).
    pub fn set_capacity(&mut self, capacity: usize) -> DbResult<()> {
        self.flush_all()?;
        let capacity = capacity.max(1);
        self.shards = Self::build_shards(capacity, shard_count(capacity));
        self.capacity = capacity;
        Ok(())
    }

    /// Counters since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Total pages allocated in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.disk.lock().num_pages()
    }

    /// Allocate a fresh zeroed page; it enters the pool dirty.
    pub fn allocate(&self) -> DbResult<PageId> {
        let pid = self.disk.lock().allocate()?;
        let mut shard = self.shard_of(pid).lock();
        let frame = self.victim_frame(&mut shard)?;
        let f = &mut shard.frames[frame];
        f.page = pid;
        f.data.fill(0);
        f.dirty = true;
        shard.touch(frame);
        shard.map.insert(pid, frame);
        Ok(pid)
    }

    /// Run `f` over an immutable view of page `pid`.
    ///
    /// `f` runs under the page's shard lock: it must not call back into
    /// the pool (copy data out instead).
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        let mut shard = self.shard_of(pid).lock();
        let frame = self.fetch(&mut shard, pid)?;
        shard.touch(frame);
        Ok(f(&shard.frames[frame].data[..]))
    }

    /// Run `f` over a mutable view of page `pid`; marks the frame dirty.
    ///
    /// Same re-entrancy rule as [`BufferPool::with_page`].
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DbResult<R> {
        self.with_page_mut_if(pid, |b| (f(b), true))
    }

    /// Run `f` over a mutable view of page `pid`, marking the frame
    /// dirty only when `f` reports it actually mutated (second tuple
    /// element). For write paths that may turn out to be no-ops — a
    /// duplicate index insert, a delete miss — so an untouched page is
    /// never written back and `physical_writes` stays honest.
    ///
    /// Same re-entrancy rule as [`BufferPool::with_page`].
    pub fn with_page_mut_if<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut [u8]) -> (R, bool),
    ) -> DbResult<R> {
        let mut shard = self.shard_of(pid).lock();
        let frame = self.fetch(&mut shard, pid)?;
        shard.touch(frame);
        let fr = &mut shard.frames[frame];
        let (r, dirtied) = f(&mut fr.data[..]);
        if dirtied {
            fr.dirty = true;
        }
        Ok(r)
    }

    /// Copy page `src` onto page `dst` (used by B+tree splits). The two
    /// shard locks are taken one after the other, never nested.
    pub fn copy_page(&self, src: PageId, dst: PageId) -> DbResult<()> {
        let buf = self.with_page(src, |b| {
            let mut tmp = [0u8; PAGE_SIZE];
            tmp.copy_from_slice(b);
            tmp
        })?;
        self.with_page_mut(dst, |b| b.copy_from_slice(&buf))
    }

    /// Write every dirty frame out of the pool: to the WAL when one is
    /// attached (write-ahead discipline), to the data file otherwise.
    pub fn flush_all(&self) -> DbResult<()> {
        for s in &self.shards {
            let mut shard = s.lock();
            for i in 0..shard.frames.len() {
                if shard.frames[i].page != INVALID_PAGE && shard.frames[i].dirty {
                    self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
                    match &self.wal {
                        Some(wal) => wal.log_page(shard.frames[i].page, &shard.frames[i].data)?,
                        None => self
                            .disk
                            .lock()
                            .write(shard.frames[i].page, &shard.frames[i].data)?,
                    }
                    shard.frames[i].dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Log every dirty frame as a WAL page image and mark it clean (the
    /// page-image half of a commit; the caller appends the Commit record
    /// after). Returns the number of frames logged.
    pub fn log_dirty_frames(&self) -> DbResult<u64> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| DbError::Page("log_dirty_frames without a wal".into()))?;
        let mut logged = 0u64;
        for s in &self.shards {
            let mut shard = s.lock();
            for i in 0..shard.frames.len() {
                if shard.frames[i].page != INVALID_PAGE && shard.frames[i].dirty {
                    wal.log_page(shard.frames[i].page, &shard.frames[i].data)?;
                    shard.frames[i].dirty = false;
                    logged += 1;
                }
            }
        }
        Ok(logged)
    }

    /// Write `buf` straight into the data file, bypassing the frames
    /// (checkpoint/recovery path: installing committed WAL images).
    pub fn write_data_direct(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        self.disk.lock().write_ensure(pid, buf)
    }

    /// fsync the data file.
    pub fn sync_data(&self) -> DbResult<()> {
        self.disk.lock().sync_all()
    }

    /// Install a page image into this pool's store *and* any resident
    /// frame (replica apply path: the image is authoritative committed
    /// state, so the frame comes out clean).
    pub fn install_page(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let mut shard = self.shard_of(pid).lock();
        if let Some(&i) = shard.map.get(&pid) {
            shard.frames[i].data.copy_from_slice(buf);
            shard.frames[i].dirty = false;
        }
        self.disk.lock().write_ensure(pid, buf)
    }

    fn fetch(&self, shard: &mut Shard, pid: PageId) -> DbResult<usize> {
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(&frame) = shard.map.get(&pid) {
            return Ok(frame);
        }
        self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
        let frame = self.victim_frame(shard)?;
        let f = &mut shard.frames[frame];
        // Newest image may live in the WAL (evicted since the last
        // checkpoint); the data file only holds checkpointed state.
        let in_wal = match &self.wal {
            Some(wal) => wal.read_page_into(pid, &mut f.data)?,
            None => false,
        };
        if !in_wal {
            self.disk.lock().read(pid, &mut f.data)?;
        }
        f.page = pid;
        f.dirty = false;
        shard.map.insert(pid, frame);
        Ok(frame)
    }

    /// Pick a frame within `shard` to hold a new page, evicting (and
    /// write-backing) its current occupant if needed.
    fn victim_frame(&self, shard: &mut Shard) -> DbResult<usize> {
        // Prefer an empty frame.
        if let Some(i) = shard.frames.iter().position(|f| f.page == INVALID_PAGE) {
            return Ok(i);
        }
        let victim = match self.policy {
            EvictionPolicy::Lru => shard
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| DbError::Page("buffer pool has no frames".into()))?,
            EvictionPolicy::Clock => {
                let n = shard.frames.len();
                let mut hand = shard.clock_hand;
                let mut spins = 0;
                loop {
                    if !shard.frames[hand].ref_bit {
                        break;
                    }
                    shard.frames[hand].ref_bit = false;
                    hand = (hand + 1) % n;
                    spins += 1;
                    if spins > 2 * n {
                        break; // all referenced; take current
                    }
                }
                shard.clock_hand = (hand + 1) % n;
                hand
            }
        };
        let f = &mut shard.frames[victim];
        if f.dirty {
            self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
            match &self.wal {
                // Write-ahead: the image is durable-loggable before the
                // page leaves the pool; the data file stays committed-only.
                Some(wal) => wal.log_page(f.page, &f.data)?,
                None => self.disk.lock().write(f.page, &f.data)?,
            }
        }
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        shard.map.remove(&f.page);
        f.page = INVALID_PAGE;
        f.dirty = false;
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(DiskManager::in_memory(), cap, EvictionPolicy::Lru)
    }

    #[test]
    fn data_survives_eviction() {
        let bp = pool(2);
        let pages: Vec<PageId> = (0..8).map(|_| bp.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            bp.with_page_mut(p, |b| b[0] = i as u8).unwrap();
        }
        // Only 2 frames: most pages were evicted and written back.
        for (i, &p) in pages.iter().enumerate() {
            let v = bp.with_page(p, |b| b[0]).unwrap();
            assert_eq!(v, i as u8, "page {p} lost its data");
        }
        assert!(bp.stats().evictions > 0);
        assert!(bp.stats().physical_writes > 0);
    }

    #[test]
    fn hits_do_not_touch_disk() {
        let bp = pool(4);
        let p = bp.allocate().unwrap();
        bp.with_page_mut(p, |b| b[7] = 9).unwrap();
        bp.reset_stats();
        for _ in 0..100 {
            bp.with_page(p, |b| assert_eq!(b[7], 9)).unwrap();
        }
        let s = bp.stats();
        assert_eq!(s.logical_reads, 100);
        assert_eq!(s.physical_reads, 0);
        assert!((s.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_cold_page() {
        let bp = pool(2);
        let a = bp.allocate().unwrap();
        let b = bp.allocate().unwrap();
        let c = bp.allocate().unwrap(); // evicts a or b
                                        // Touch a repeatedly so b becomes the LRU victim when d arrives.
        bp.with_page(a, |_| ()).unwrap();
        bp.with_page(a, |_| ()).unwrap();
        bp.reset_stats();
        bp.with_page(a, |_| ()).unwrap(); // hit
        let s = bp.stats();
        assert_eq!(s.physical_reads, 0, "hot page must still be resident");
        let _ = (b, c);
    }

    #[test]
    fn clock_policy_works_too() {
        let bp = BufferPool::new(DiskManager::in_memory(), 3, EvictionPolicy::Clock);
        let pages: Vec<PageId> = (0..10).map(|_| bp.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            bp.with_page_mut(p, |buf| buf[1] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(bp.with_page(p, |buf| buf[1]).unwrap(), i as u8);
        }
    }

    #[test]
    fn sequential_scan_thrashes_small_pool_but_not_large() {
        let run = |cap: usize| -> u64 {
            let bp = pool(cap);
            let pages: Vec<PageId> = (0..16).map(|_| bp.allocate().unwrap()).collect();
            bp.flush_all().unwrap();
            bp.reset_stats();
            for _ in 0..4 {
                for &p in &pages {
                    bp.with_page(p, |_| ()).unwrap();
                }
            }
            bp.stats().physical_reads
        };
        let small = run(2);
        let large = run(32);
        assert!(small > large, "small pool {small} <= large pool {large}");
        assert_eq!(large, 0, "everything fits: no physical reads expected");
    }

    #[test]
    fn set_capacity_preserves_data() {
        let mut bp = pool(2);
        let p = bp.allocate().unwrap();
        bp.with_page_mut(p, |b| b[0] = 0x5A).unwrap();
        bp.set_capacity(8).unwrap();
        assert_eq!(bp.with_page(p, |b| b[0]).unwrap(), 0x5A);
    }

    #[test]
    fn copy_page_copies() {
        let bp = pool(4);
        let a = bp.allocate().unwrap();
        let b = bp.allocate().unwrap();
        bp.with_page_mut(a, |buf| buf[100] = 42).unwrap();
        bp.copy_page(a, b).unwrap();
        assert_eq!(bp.with_page(b, |buf| buf[100]).unwrap(), 42);
    }

    #[test]
    fn stats_since() {
        let bp = pool(2);
        let p = bp.allocate().unwrap();
        let before = bp.stats();
        bp.with_page(p, |_| ()).unwrap();
        let delta = bp.stats().since(&before);
        assert_eq!(delta.logical_reads, 1);
    }

    #[test]
    fn capacity_is_preserved_across_sharding() {
        for cap in [1, 2, 3, 15, 16, 17, 64, 100] {
            assert_eq!(pool(cap).capacity(), cap, "capacity {cap} distorted");
        }
    }

    #[test]
    fn parallel_readers_count_every_logical_read() {
        let bp = std::sync::Arc::new(pool(32));
        let pages: Vec<PageId> = (0..16).map(|_| bp.allocate().unwrap()).collect();
        bp.reset_stats();
        let threads = 4;
        let rounds = 250;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let bp = std::sync::Arc::clone(&bp);
                let pages = pages.clone();
                s.spawn(move || {
                    for i in 0..rounds {
                        bp.with_page(pages[i % pages.len()], |_| ()).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            bp.stats().logical_reads,
            (threads * rounds) as u64,
            "atomic counters must not lose increments"
        );
    }
}
