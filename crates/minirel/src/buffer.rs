//! The buffer pool: a fixed number of 4 KB frames between the operators
//! and the disk manager.
//!
//! This is the component the paper's Figure 8(b) experiment sweeps
//! ("Memory Scaling: relative time vs. Buffer Pool (x 4kB)"). Two facts
//! from the paper shape the design:
//!
//! * *"most storage managers use page-level caching"* — caching is by
//!   page, so small records (classifier statistics) with poor locality
//!   thrash the pool; and
//! * the classifier/distiller rewrite wins precisely because sort-merge
//!   plans touch pages sequentially.
//!
//! The pool therefore exposes **physical** (disk) and **logical** (call)
//! I/O counters, plus the eviction count, which the benchmark harness
//! reports alongside wall-clock time: counters are machine-independent
//! evidence that the access-path shapes match the paper.

use crate::disk::DiskManager;
use crate::error::{DbError, DbResult};
use crate::page::{PageId, INVALID_PAGE, PAGE_SIZE};

/// Replacement policy. LRU is the default; Clock exists for the ablation
/// bench (`bench_ablation` in `focus-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used unpinned frame.
    Lru,
    /// Second-chance / clock sweep.
    Clock,
}

/// Monotonic I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests served (hit or miss).
    pub logical_reads: u64,
    /// Pages actually read from the disk manager (misses).
    pub physical_reads: u64,
    /// Pages written back to the disk manager.
    pub physical_writes: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
}

impl IoStats {
    /// Hit ratio in `[0, 1]`; 1.0 when there were no reads.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            1.0 - self.physical_reads as f64 / self.logical_reads as f64
        }
    }

    /// Component-wise difference since `earlier`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

struct Frame {
    page: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
    ref_bit: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page: INVALID_PAGE,
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: false,
            last_used: 0,
            ref_bit: false,
        }
    }
}

/// A pool of `capacity` frames in front of a [`DiskManager`].
pub struct BufferPool {
    disk: DiskManager,
    frames: Vec<Frame>,
    map: std::collections::HashMap<PageId, usize>,
    clock_hand: usize,
    tick: u64,
    policy: EvictionPolicy,
    stats: IoStats,
}

impl BufferPool {
    /// Create a pool of `capacity` frames (≥ 1) over `disk`.
    pub fn new(disk: DiskManager, capacity: usize, policy: EvictionPolicy) -> Self {
        let capacity = capacity.max(1);
        BufferPool {
            disk,
            frames: (0..capacity).map(|_| Frame::empty()).collect(),
            map: std::collections::HashMap::with_capacity(capacity * 2),
            clock_hand: 0,
            tick: 0,
            policy,
            stats: IoStats::default(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Resize the pool (flushes everything first). Used by the Figure 8(b)
    /// buffer sweep.
    pub fn set_capacity(&mut self, capacity: usize) -> DbResult<()> {
        self.flush_all()?;
        let capacity = capacity.max(1);
        self.frames = (0..capacity).map(|_| Frame::empty()).collect();
        self.map.clear();
        self.clock_hand = 0;
        Ok(())
    }

    /// Counters since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero the counters.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Total pages allocated in the underlying file.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Allocate a fresh zeroed page; it enters the pool dirty.
    pub fn allocate(&mut self) -> DbResult<PageId> {
        let pid = self.disk.allocate()?;
        let frame = self.victim_frame()?;
        let f = &mut self.frames[frame];
        f.page = pid;
        f.data.fill(0);
        f.dirty = true;
        self.touch(frame);
        self.map.insert(pid, frame);
        Ok(pid)
    }

    /// Run `f` over an immutable view of page `pid`.
    pub fn with_page<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        let frame = self.fetch(pid)?;
        self.touch(frame);
        Ok(f(&self.frames[frame].data[..]))
    }

    /// Run `f` over a mutable view of page `pid`; marks the frame dirty.
    pub fn with_page_mut<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DbResult<R> {
        let frame = self.fetch(pid)?;
        self.touch(frame);
        let fr = &mut self.frames[frame];
        fr.dirty = true;
        Ok(f(&mut fr.data[..]))
    }

    /// Copy page `src` onto page `dst` (used by B+tree splits).
    pub fn copy_page(&mut self, src: PageId, dst: PageId) -> DbResult<()> {
        let buf = self.with_page(src, |b| {
            let mut tmp = [0u8; PAGE_SIZE];
            tmp.copy_from_slice(b);
            tmp
        })?;
        self.with_page_mut(dst, |b| b.copy_from_slice(&buf))
    }

    /// Write every dirty frame back to disk.
    pub fn flush_all(&mut self) -> DbResult<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].page != INVALID_PAGE && self.frames[i].dirty {
                self.stats.physical_writes += 1;
                self.disk.write(self.frames[i].page, &self.frames[i].data)?;
                self.frames[i].dirty = false;
            }
        }
        Ok(())
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame].last_used = self.tick;
        self.frames[frame].ref_bit = true;
    }

    fn fetch(&mut self, pid: PageId) -> DbResult<usize> {
        self.stats.logical_reads += 1;
        if let Some(&frame) = self.map.get(&pid) {
            return Ok(frame);
        }
        self.stats.physical_reads += 1;
        let frame = self.victim_frame()?;
        // Borrow dance: read into the frame buffer directly.
        let f = &mut self.frames[frame];
        self.disk.read(pid, &mut f.data)?;
        f.page = pid;
        f.dirty = false;
        self.map.insert(pid, frame);
        Ok(frame)
    }

    /// Pick a frame to hold a new page, evicting (and write-backing) its
    /// current occupant if needed.
    fn victim_frame(&mut self) -> DbResult<usize> {
        // Prefer an empty frame.
        if let Some(i) = self.frames.iter().position(|f| f.page == INVALID_PAGE) {
            return Ok(i);
        }
        let victim = match self.policy {
            EvictionPolicy::Lru => self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(i, _)| i)
                .ok_or_else(|| DbError::Page("buffer pool has no frames".into()))?,
            EvictionPolicy::Clock => {
                let n = self.frames.len();
                let mut hand = self.clock_hand;
                let mut spins = 0;
                loop {
                    if !self.frames[hand].ref_bit {
                        break;
                    }
                    self.frames[hand].ref_bit = false;
                    hand = (hand + 1) % n;
                    spins += 1;
                    if spins > 2 * n {
                        break; // all referenced; take current
                    }
                }
                self.clock_hand = (hand + 1) % n;
                hand
            }
        };
        let f = &mut self.frames[victim];
        if f.dirty {
            self.stats.physical_writes += 1;
            self.disk.write(f.page, &f.data)?;
        }
        self.stats.evictions += 1;
        self.map.remove(&f.page);
        f.page = INVALID_PAGE;
        f.dirty = false;
        Ok(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(DiskManager::in_memory(), cap, EvictionPolicy::Lru)
    }

    #[test]
    fn data_survives_eviction() {
        let mut bp = pool(2);
        let pages: Vec<PageId> = (0..8).map(|_| bp.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            bp.with_page_mut(p, |b| b[0] = i as u8).unwrap();
        }
        // Only 2 frames: most pages were evicted and written back.
        for (i, &p) in pages.iter().enumerate() {
            let v = bp.with_page(p, |b| b[0]).unwrap();
            assert_eq!(v, i as u8, "page {p} lost its data");
        }
        assert!(bp.stats().evictions > 0);
        assert!(bp.stats().physical_writes > 0);
    }

    #[test]
    fn hits_do_not_touch_disk() {
        let mut bp = pool(4);
        let p = bp.allocate().unwrap();
        bp.with_page_mut(p, |b| b[7] = 9).unwrap();
        bp.reset_stats();
        for _ in 0..100 {
            bp.with_page(p, |b| assert_eq!(b[7], 9)).unwrap();
        }
        let s = bp.stats();
        assert_eq!(s.logical_reads, 100);
        assert_eq!(s.physical_reads, 0);
        assert!((s.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_cold_page() {
        let mut bp = pool(2);
        let a = bp.allocate().unwrap();
        let b = bp.allocate().unwrap();
        let c = bp.allocate().unwrap(); // evicts a or b
                                        // Touch a repeatedly so b becomes the LRU victim when d arrives.
        bp.with_page(a, |_| ()).unwrap();
        bp.with_page(a, |_| ()).unwrap();
        bp.reset_stats();
        bp.with_page(a, |_| ()).unwrap(); // hit
        let s = bp.stats();
        assert_eq!(s.physical_reads, 0, "hot page must still be resident");
        let _ = (b, c);
    }

    #[test]
    fn clock_policy_works_too() {
        let mut bp = BufferPool::new(DiskManager::in_memory(), 3, EvictionPolicy::Clock);
        let pages: Vec<PageId> = (0..10).map(|_| bp.allocate().unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            bp.with_page_mut(p, |buf| buf[1] = i as u8).unwrap();
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(bp.with_page(p, |buf| buf[1]).unwrap(), i as u8);
        }
    }

    #[test]
    fn sequential_scan_thrashes_small_pool_but_not_large() {
        let run = |cap: usize| -> u64 {
            let mut bp = pool(cap);
            let pages: Vec<PageId> = (0..16).map(|_| bp.allocate().unwrap()).collect();
            bp.flush_all().unwrap();
            bp.reset_stats();
            for _ in 0..4 {
                for &p in &pages {
                    bp.with_page(p, |_| ()).unwrap();
                }
            }
            bp.stats().physical_reads
        };
        let small = run(2);
        let large = run(32);
        assert!(small > large, "small pool {small} <= large pool {large}");
        assert_eq!(large, 0, "everything fits: no physical reads expected");
    }

    #[test]
    fn set_capacity_preserves_data() {
        let mut bp = pool(2);
        let p = bp.allocate().unwrap();
        bp.with_page_mut(p, |b| b[0] = 0x5A).unwrap();
        bp.set_capacity(8).unwrap();
        assert_eq!(bp.with_page(p, |b| b[0]).unwrap(), 0x5A);
    }

    #[test]
    fn copy_page_copies() {
        let mut bp = pool(4);
        let a = bp.allocate().unwrap();
        let b = bp.allocate().unwrap();
        bp.with_page_mut(a, |buf| buf[100] = 42).unwrap();
        bp.copy_page(a, b).unwrap();
        assert_eq!(bp.with_page(b, |buf| buf[100]).unwrap(), 42);
    }

    #[test]
    fn stats_since() {
        let mut bp = pool(2);
        let p = bp.allocate().unwrap();
        let before = bp.stats();
        bp.with_page(p, |_| ()).unwrap();
        let delta = bp.stats().since(&before);
        assert_eq!(delta.logical_reads, 1);
    }
}
