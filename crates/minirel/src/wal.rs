//! Write-ahead log: the durability layer under the buffer pool.
//!
//! minirel runs a **no-steal, page-image redo log** in the style of
//! SQLite's WAL mode: the data file is written *only* at checkpoints,
//! never by ordinary page traffic. A dirty page leaving the buffer pool
//! (eviction, `flush_all`, commit) appends a checksummed [`PageImage`]
//! record here instead, and an in-memory page index (pid → log offset)
//! makes the newest image readable again on a pool miss. A [`Commit`]
//! record carries the full catalog image plus the data-file page count,
//! marking everything before it as the recoverable state; records after
//! the last valid commit are discarded on recovery (torn-tail
//! truncation via checksum).
//!
//! ## Record format
//!
//! ```text
//! | lsn u64 | kind u8 | len u32 | crc u64 | payload (len bytes) |
//! ```
//!
//! all little-endian; `crc` covers `lsn | kind | len | payload`.
//! Payloads: `PageImage` = `pid u32` + 4096 page bytes; `Commit` =
//! `num_pages u32` + catalog image ([`crate::recovery`] codec);
//! `Checkpoint` = `num_pages u32` (a marker: every committed image
//! before it has been written to the data file).
//!
//! ## Group commit
//!
//! [`Wal::commit`] appends and publishes but only fsyncs every
//! `group_every`-th commit, amortizing the sync over the crawler's
//! page-boundary flushes; [`Wal::sync`] forces one (the "durable" ack
//! point — a commit is acknowledged as crash-safe only once synced).
//!
//! ## Latch order
//!
//! The WAL mutex is a **leaf** lock: it may be taken while holding a
//! buffer-pool shard latch (eviction logs under the shard lock), and it
//! never takes any other engine lock itself. System-wide the order is
//! `shard → {disk, wal}`.
//!
//! ## Crash injection
//!
//! For the crash-matrix harness: when `MINIREL_CRASH_SYNCS=<n>` is set,
//! the process aborts at the `n`-th WAL sync *before* making it
//! durable, simulating power loss at a randomized commit boundary.

use crate::error::{DbError, DbResult};
use crate::page::{PageId, PAGE_SIZE};
use lockcheck::{rank, OrderedMutex};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Record kind: full 4 KB page image (`pid u32` + page bytes).
pub const KIND_PAGE_IMAGE: u8 = 1;
/// Record kind: commit point (`num_pages u32` + catalog image).
pub const KIND_COMMIT: u8 = 2;
/// Record kind: checkpoint marker (`num_pages u32`).
pub const KIND_CHECKPOINT: u8 = 3;

/// Fixed header bytes per record.
pub const RECORD_HEADER: usize = 8 + 1 + 4 + 8;

/// Upper bound on a record payload; anything larger fails the scan as
/// corrupt instead of attempting a giant allocation.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Default commits-per-fsync for group commit.
pub const DEFAULT_GROUP_COMMIT: usize = 8;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Log sequence number (monotonic across the log).
    pub lsn: u64,
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// Kind-specific payload.
    pub payload: Vec<u8>,
}

/// Word-folding checksum over the given byte slices (treated as one
/// stream). FNV-style but folding 8 bytes per multiply, so a 4 KB page
/// image costs ~512 multiplies — cheap enough for the per-batch hot
/// path the crawler drives.
pub fn checksum(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        let mut chunks = part.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(31);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            // Tag the tail with its length so "ab" and "ab\0" differ.
            w[7] = rem.len() as u8;
            h = (h ^ u64::from_le_bytes(w))
                .wrapping_mul(0x0000_0100_0000_01b3)
                .rotate_left(31);
        }
    }
    h
}

/// Encode one record (header + payload) into fresh bytes.
pub fn encode_record(lsn: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    let crc = checksum(&[&lsn.to_le_bytes(), &[kind], &len.to_le_bytes(), payload]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode the record at the front of `buf`.
///
/// * `Ok(Some((record, consumed)))` — a whole, checksum-valid record.
/// * `Ok(None)` — `buf` is empty or holds only a truncated tail (fewer
///   bytes than the header + declared payload): the clean end of a log.
/// * `Err(DbError::Corrupt)` — a record-shaped region whose checksum,
///   kind, or length is wrong: bit rot or a torn overwrite.
pub fn decode_record(buf: &[u8]) -> DbResult<Option<(Record, usize)>> {
    if buf.len() < RECORD_HEADER {
        return Ok(None);
    }
    let lsn = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    let kind = buf[8];
    let len = u32::from_le_bytes(buf[9..13].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Err(DbError::Corrupt(format!(
            "wal record at lsn {lsn} declares absurd payload of {len} bytes"
        )));
    }
    if buf.len() < RECORD_HEADER + len {
        return Ok(None);
    }
    let crc = u64::from_le_bytes(buf[13..21].try_into().expect("8 bytes"));
    let payload = &buf[RECORD_HEADER..RECORD_HEADER + len];
    let want = checksum(&[&buf[0..8], &[kind], &buf[9..13], payload]);
    if crc != want {
        return Err(DbError::Corrupt(format!(
            "wal record at lsn {lsn} fails checksum (stored {crc:#x}, computed {want:#x})"
        )));
    }
    if !matches!(kind, KIND_PAGE_IMAGE | KIND_COMMIT | KIND_CHECKPOINT) {
        return Err(DbError::Corrupt(format!(
            "wal record at lsn {lsn} has unknown kind {kind}"
        )));
    }
    Ok(Some((
        Record {
            lsn,
            kind,
            payload: payload.to_vec(),
        },
        RECORD_HEADER + len,
    )))
}

/// Scan a byte buffer into records, stopping at the first truncated or
/// corrupt region. Returns the records and the byte length of the valid
/// prefix — recovery truncates the log there.
pub fn scan_records(buf: &[u8]) -> (Vec<Record>, usize) {
    let mut out = Vec::new();
    let mut off = 0usize;
    while let Ok(Some((rec, used))) = decode_record(&buf[off..]) {
        out.push(rec);
        off += used;
    }
    (out, off)
}

/// Crash-injection hook: aborts the process at the configured sync
/// ordinal (env `MINIREL_CRASH_SYNCS`), *before* the sync happens.
fn crash_hook_before_sync() {
    use std::sync::OnceLock;
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    static COUNT: AtomicU64 = AtomicU64::new(0);
    let limit = LIMIT.get_or_init(|| {
        std::env::var("MINIREL_CRASH_SYNCS")
            .ok()
            .and_then(|s| s.parse().ok())
    });
    if let Some(n) = *limit {
        if COUNT.fetch_add(1, Ordering::Relaxed) + 1 >= n {
            std::process::abort();
        }
    }
}

enum WalStore {
    /// Log bytes in memory. `base` is the logical offset of `buf[0]`:
    /// a checkpoint can drop already-checkpointed bytes while keeping
    /// logical offsets stable for the page index and subscribers.
    Memory {
        buf: Vec<u8>,
        base: u64,
    },
    File {
        file: File,
        path: PathBuf,
        len: u64,
    },
}

impl WalStore {
    fn end(&self) -> u64 {
        match self {
            WalStore::Memory { buf, base } => base + buf.len() as u64,
            WalStore::File { len, .. } => *len,
        }
    }

    fn append(&mut self, bytes: &[u8]) -> DbResult<u64> {
        let at = self.end();
        match self {
            WalStore::Memory { buf, .. } => buf.extend_from_slice(bytes),
            WalStore::File { file, path, len } => {
                file.seek(SeekFrom::Start(*len))
                    .map_err(|e| DbError::io("seek", &path, e))?;
                file.write_all(bytes)
                    .map_err(|e| DbError::io("append", &path, e))?;
                *len += bytes.len() as u64;
            }
        }
        Ok(at)
    }

    fn read_at(&mut self, off: u64, out: &mut [u8]) -> DbResult<()> {
        match self {
            WalStore::Memory { buf, base } => {
                let start = off
                    .checked_sub(*base)
                    .ok_or_else(|| DbError::Corrupt("wal offset before retained base".into()))?
                    as usize;
                let end = start + out.len();
                if end > buf.len() {
                    return Err(DbError::Corrupt("wal offset past end".into()));
                }
                out.copy_from_slice(&buf[start..end]);
                Ok(())
            }
            WalStore::File { file, path, .. } => {
                file.seek(SeekFrom::Start(off))
                    .map_err(|e| DbError::io("seek", &path, e))?;
                file.read_exact(out)
                    .map_err(|e| DbError::io("read", &path, e))?;
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> DbResult<()> {
        crash_hook_before_sync();
        match self {
            WalStore::Memory { .. } => Ok(()),
            WalStore::File { file, path, .. } => {
                file.sync_all().map_err(|e| DbError::io("sync", &path, e))
            }
        }
    }
}

struct WalInner {
    store: WalStore,
    next_lsn: u64,
    /// Logical end offset of the last appended Commit/Checkpoint record.
    committed_end: u64,
    /// Logical end offset covered by the last fsync.
    durable_end: u64,
    /// LSN of the last Commit record (0 = none yet).
    last_commit_lsn: u64,
    /// LSN of the last *synced* Commit record.
    durable_commit_lsn: u64,
    /// pid → logical offset of its newest page image's page bytes.
    page_index: HashMap<PageId, u64>,
    commits_since_sync: usize,
    group_every: usize,
    /// Replication: committed chunks are broadcast here.
    subscribers: Vec<mpsc::Sender<Arc<Vec<u8>>>>,
    /// Logical offset up to which chunks have been published.
    published_end: u64,
    /// Bytes of not-yet-published records (Memory store slices the
    /// buffer; the File store can't cheaply read back, so both stage
    /// pending publish bytes here).
    publish_buf: Vec<u8>,
    /// Checkpoint records appended over this log's lifetime.
    checkpoints: u64,
}

/// The write-ahead log. Interior-mutable (`&self` everywhere) behind a
/// single leaf mutex; share via `Arc`.
pub struct Wal {
    inner: OrderedMutex<WalInner>,
}

impl Wal {
    fn with_store(store: WalStore, group_every: usize, next_lsn: u64) -> Wal {
        let end = store.end();
        Wal {
            inner: OrderedMutex::new(
                rank::WAL,
                WalInner {
                    store,
                    next_lsn,
                    committed_end: end,
                    durable_end: end,
                    last_commit_lsn: 0,
                    durable_commit_lsn: 0,
                    page_index: HashMap::new(),
                    commits_since_sync: 0,
                    group_every: group_every.max(1),
                    subscribers: Vec::new(),
                    published_end: end,
                    publish_buf: Vec::new(),
                    checkpoints: 0,
                },
            ),
        }
    }

    /// In-memory log (hermetic tests; replication without files).
    pub fn in_memory(group_every: usize) -> Wal {
        Self::with_store(
            WalStore::Memory {
                buf: Vec::new(),
                base: 0,
            },
            group_every,
            1,
        )
    }

    /// Create (truncate) a log file at `path`, starting at `next_lsn`.
    pub fn create_file(path: &Path, group_every: usize, next_lsn: u64) -> DbResult<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DbError::io("create", path, e))?;
        Ok(Self::with_store(
            WalStore::File {
                file,
                path: path.to_owned(),
                len: 0,
            },
            group_every,
            next_lsn,
        ))
    }

    /// Atomically rename the backing file (WAL rotation: recovery writes
    /// the fresh log at a temp path, syncs, then renames it over the old
    /// one so a crash mid-rotation leaves one valid log, never half of
    /// each). The open descriptor stays valid across the rename.
    pub fn rename_to(&self, dst: &Path) -> DbResult<()> {
        let mut g = self.inner.lock();
        g.store.sync()?;
        match &mut g.store {
            WalStore::Memory { .. } => {
                Err(DbError::Corrupt("cannot rename an in-memory wal".into()))
            }
            WalStore::File { path, .. } => {
                std::fs::rename(&*path, dst).map_err(|e| DbError::io("rename", dst, e))?;
                *path = dst.to_owned();
                Ok(())
            }
        }
    }

    fn append_locked(g: &mut WalInner, kind: u8, payload: &[u8]) -> DbResult<(u64, u64)> {
        let lsn = g.next_lsn;
        g.next_lsn += 1;
        let bytes = encode_record(lsn, kind, payload);
        let at = g.store.append(&bytes)?;
        g.publish_buf.extend_from_slice(&bytes);
        Ok((lsn, at))
    }

    /// Append a page image (write-ahead: called when a dirty page leaves
    /// the buffer pool). Does not sync — durability is commit-scoped.
    pub fn log_page(&self, pid: PageId, data: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let mut g = self.inner.lock();
        let mut payload = Vec::with_capacity(4 + PAGE_SIZE);
        payload.extend_from_slice(&pid.to_le_bytes());
        payload.extend_from_slice(data);
        let (_lsn, at) = Self::append_locked(&mut g, KIND_PAGE_IMAGE, &payload)?;
        // Page bytes start after the header and the pid.
        g.page_index.insert(pid, at + RECORD_HEADER as u64 + 4);
        Ok(())
    }

    /// Append a Commit record (catalog image + data-file page count),
    /// publish the newly committed byte range to subscribers, and fsync
    /// if the group-commit quota is due. Returns the commit's LSN.
    pub fn commit(&self, catalog_image: &[u8], num_pages: u32) -> DbResult<u64> {
        let mut g = self.inner.lock();
        let mut payload = Vec::with_capacity(4 + catalog_image.len());
        payload.extend_from_slice(&num_pages.to_le_bytes());
        payload.extend_from_slice(catalog_image);
        let (lsn, _) = Self::append_locked(&mut g, KIND_COMMIT, &payload)?;
        g.committed_end = g.store.end();
        g.last_commit_lsn = lsn;
        g.commits_since_sync += 1;
        Self::publish_locked(&mut g);
        if g.commits_since_sync >= g.group_every {
            Self::sync_locked(&mut g)?;
        }
        Ok(lsn)
    }

    /// Append a Checkpoint marker and forget the page index: every
    /// committed image is now in the data file, so future pool misses
    /// read there. The in-memory store also drops its retained bytes
    /// (they are published and checkpointed — nobody can need them).
    pub fn checkpoint_done(&self, num_pages: u32) -> DbResult<()> {
        let mut g = self.inner.lock();
        Self::append_locked(&mut g, KIND_CHECKPOINT, &num_pages.to_le_bytes())?;
        g.committed_end = g.store.end();
        g.checkpoints += 1;
        Self::publish_locked(&mut g);
        Self::sync_locked(&mut g)?;
        g.page_index.clear();
        if let WalStore::Memory { buf, base } = &mut g.store {
            *base += buf.len() as u64;
            buf.clear();
            buf.shrink_to(64 * 1024);
        }
        Ok(())
    }

    fn publish_locked(g: &mut WalInner) {
        if g.publish_buf.is_empty() {
            return;
        }
        g.published_end = g.committed_end;
        if g.subscribers.is_empty() {
            g.publish_buf.clear();
            return;
        }
        let chunk = Arc::new(std::mem::take(&mut g.publish_buf));
        g.subscribers
            .retain(|tx| tx.send(Arc::clone(&chunk)).is_ok());
    }

    fn sync_locked(g: &mut WalInner) -> DbResult<()> {
        g.store.sync()?;
        g.durable_end = g.committed_end;
        g.durable_commit_lsn = g.last_commit_lsn;
        g.commits_since_sync = 0;
        Ok(())
    }

    /// Force an fsync (the durable ack point).
    pub fn sync(&self) -> DbResult<()> {
        Self::sync_locked(&mut self.inner.lock())
    }

    /// Read the newest logged image of `pid` into `out`. Returns `false`
    /// when the log holds no image (the data file is authoritative).
    pub fn read_page_into(&self, pid: PageId, out: &mut [u8; PAGE_SIZE]) -> DbResult<bool> {
        let mut g = self.inner.lock();
        let Some(&off) = g.page_index.get(&pid) else {
            return Ok(false);
        };
        g.store.read_at(off, out)?;
        Ok(true)
    }

    /// Pages with a logged image newer than the data file.
    pub fn indexed_pages(&self) -> Vec<PageId> {
        self.inner.lock().page_index.keys().copied().collect()
    }

    /// Subscribe to committed record chunks. The caller must hold the
    /// single-writer role (no concurrent `commit`) while pairing this
    /// with its base snapshot, so no commit falls between the two.
    pub fn subscribe(&self) -> mpsc::Receiver<Arc<Vec<u8>>> {
        let (tx, rx) = mpsc::channel();
        self.inner.lock().subscribers.push(tx);
        rx
    }

    /// LSN of the last commit (not necessarily synced).
    pub fn last_commit_lsn(&self) -> u64 {
        self.inner.lock().last_commit_lsn
    }

    /// LSN of the last commit covered by an fsync.
    pub fn durable_commit_lsn(&self) -> u64 {
        self.inner.lock().durable_commit_lsn
    }

    /// Logical length of the log in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.inner.lock().store.end()
    }

    /// Commits per fsync (the group-commit knob).
    pub fn group_every(&self) -> usize {
        self.inner.lock().group_every
    }

    /// Checkpoint markers appended so far.
    pub fn checkpoints(&self) -> u64 {
        self.inner.lock().checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let payload = b"frontier page bytes".to_vec();
        let bytes = encode_record(42, KIND_PAGE_IMAGE, &payload);
        let (rec, used) = decode_record(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(rec.lsn, 42);
        assert_eq!(rec.kind, KIND_PAGE_IMAGE);
        assert_eq!(rec.payload, payload);
    }

    #[test]
    fn truncated_tail_is_clean_none() {
        let bytes = encode_record(1, KIND_COMMIT, b"catalog");
        for cut in 0..bytes.len() {
            let r = decode_record(&bytes[..cut]).unwrap();
            assert!(r.is_none(), "cut at {cut} must read as truncation");
        }
    }

    #[test]
    fn corrupt_byte_rejected() {
        let bytes = encode_record(7, KIND_COMMIT, b"catalog image");
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            match decode_record(&b) {
                Err(DbError::Corrupt(_)) => {}
                Ok(None) => {} // a flipped length byte can present as truncation
                other => panic!("flip at {i}: expected corruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn scan_stops_at_garbage() {
        let mut log = encode_record(1, KIND_COMMIT, b"a");
        log.extend_from_slice(&encode_record(2, KIND_COMMIT, b"b"));
        let good_len = log.len();
        log.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let (recs, valid) = scan_records(&log);
        assert_eq!(recs.len(), 2);
        assert_eq!(valid, good_len);
    }

    #[test]
    fn checksum_distinguishes_tails() {
        assert_ne!(checksum(&[b"ab"]), checksum(&[b"ab\0"]));
        assert_ne!(checksum(&[b""]), checksum(&[b"\0"]));
    }

    #[test]
    fn log_page_and_read_back() {
        let wal = Wal::in_memory(4);
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 11;
        wal.log_page(3, &page).unwrap();
        page[0] = 22;
        wal.log_page(3, &page).unwrap(); // newer image wins
        let mut out = [0u8; PAGE_SIZE];
        assert!(wal.read_page_into(3, &mut out).unwrap());
        assert_eq!(out[0], 22);
        assert!(!wal.read_page_into(99, &mut out).unwrap());
    }

    #[test]
    fn group_commit_counts_syncs() {
        let wal = Wal::in_memory(3);
        assert_eq!(wal.commit(b"", 0).unwrap(), 1);
        assert_eq!(wal.durable_commit_lsn(), 0, "not yet at the group quota");
        wal.commit(b"", 0).unwrap();
        wal.commit(b"", 0).unwrap();
        assert_eq!(wal.durable_commit_lsn(), 3, "third commit syncs the group");
    }

    #[test]
    fn subscriber_sees_committed_chunks() {
        let wal = Wal::in_memory(1);
        let rx = wal.subscribe();
        let mut page = [0u8; PAGE_SIZE];
        page[9] = 9;
        wal.log_page(5, &page).unwrap();
        wal.commit(b"cat", 7).unwrap();
        let chunk = rx.try_recv().expect("commit publishes");
        let (recs, _) = scan_records(&chunk);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, KIND_PAGE_IMAGE);
        assert_eq!(recs[1].kind, KIND_COMMIT);
        assert!(rx.try_recv().is_err(), "nothing published before a commit");
    }

    #[test]
    fn memory_checkpoint_reclaims_bytes() {
        let wal = Wal::in_memory(1);
        let page = [7u8; PAGE_SIZE];
        for pid in 0..16 {
            wal.log_page(pid, &page).unwrap();
        }
        wal.commit(b"", 16).unwrap();
        let before = wal.len_bytes();
        wal.checkpoint_done(16).unwrap();
        assert!(wal.indexed_pages().is_empty());
        // Logical length still grows (offsets stay stable)…
        assert!(wal.len_bytes() > before);
        // …but the next image starts a fresh retained buffer.
        wal.log_page(0, &page).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        assert!(wal.read_page_into(0, &mut out).unwrap());
        assert_eq!(out[0], 7);
    }
}
