//! Heap files: unordered collections of records over slotted pages.
//!
//! Each table's base data lives in one heap file. The page directory and
//! free-space hints are kept in memory (the catalog owns them); record
//! bytes flow through the buffer pool so scans and random `get`s are
//! charged to the I/O counters.

use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::page::{PageId, SlottedMut, SlottedRef, PAGE_SIZE};

/// Record id: physical address of a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page within the database file.
    pub page: PageId,
    /// Slot within that page.
    pub slot: u16,
}

/// A heap file. Cheap to clone would be wrong — the catalog owns exactly
/// one per table.
#[derive(Debug)]
pub struct HeapFile {
    pages: Vec<PageId>,
    /// Free-byte hints per page (same order as `pages`); refreshed on write.
    free_hints: Vec<u16>,
    live_records: u64,
}

impl HeapFile {
    /// Create a heap file with one empty page.
    pub fn create(pool: &BufferPool) -> DbResult<HeapFile> {
        let pid = pool.allocate()?;
        pool.with_page_mut(pid, |b| SlottedMut(b).init())?;
        Ok(HeapFile {
            pages: vec![pid],
            free_hints: vec![PAGE_SIZE as u16 - 4],
            live_records: 0,
        })
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.live_records
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.live_records == 0
    }

    /// Number of pages owned by this file.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page ids backing this file, in file order (used by streaming
    /// run readers in the external sort).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Snapshot of the in-memory metadata, for the WAL catalog image:
    /// (pages, free-space hints, live record count).
    pub(crate) fn snapshot_parts(&self) -> (&[PageId], &[u16], u64) {
        (&self.pages, &self.free_hints, self.live_records)
    }

    /// Rebuild from a catalog image decoded at recovery. The caller
    /// vouches that the parts came from [`HeapFile::snapshot_parts`] of
    /// a committed state (pages exist, hints match their content).
    pub(crate) fn from_parts(
        pages: Vec<PageId>,
        free_hints: Vec<u16>,
        live_records: u64,
    ) -> HeapFile {
        HeapFile {
            pages,
            free_hints,
            live_records,
        }
    }

    /// Insert a record, returning its address.
    pub fn insert(&mut self, pool: &BufferPool, rec: &[u8]) -> DbResult<Rid> {
        if rec.len() + 8 > PAGE_SIZE {
            return Err(DbError::RecordTooLarge(rec.len()));
        }
        let needed = (rec.len() + 4) as u16;
        // Try the last page first (append-mostly workloads), then any page
        // whose hint says it fits, then grow the file.
        let mut candidates: Vec<usize> = Vec::with_capacity(2);
        let last = self.pages.len() - 1;
        if self.free_hints[last] >= needed {
            candidates.push(last);
        }
        if candidates.is_empty() {
            if let Some(i) = self.free_hints.iter().position(|&f| f >= needed) {
                candidates.push(i);
            }
        }
        let idx = match candidates.first() {
            Some(&i) => i,
            None => {
                let pid = pool.allocate()?;
                pool.with_page_mut(pid, |b| SlottedMut(b).init())?;
                self.pages.push(pid);
                self.free_hints.push(PAGE_SIZE as u16 - 4);
                self.pages.len() - 1
            }
        };
        let pid = self.pages[idx];
        let (slot, free) = pool.with_page_mut(pid, |b| {
            let slot = SlottedMut(b).insert(rec);
            let free = SlottedRef(b).free_space() as u16;
            (slot, free)
        })?;
        self.free_hints[idx] = free;
        let slot = slot?;
        self.live_records += 1;
        Ok(Rid { page: pid, slot })
    }

    /// Insert a batch of records, returning their addresses in input
    /// order. Consecutive records landing on the same page share one
    /// page access instead of paying one per record — the heap half of
    /// the batch write path (the B+tree half is
    /// [`crate::btree::BTree::insert_many`]).
    pub fn insert_many(&mut self, pool: &BufferPool, recs: &[&[u8]]) -> DbResult<Vec<Rid>> {
        // Validate the whole batch before touching any page: a mid-batch
        // failure must not leave a prefix of the records inserted (the
        // caller's index maintenance runs only after all heap appends).
        for rec in recs {
            if rec.len() + 8 > PAGE_SIZE {
                return Err(DbError::RecordTooLarge(rec.len()));
            }
        }
        let mut rids = Vec::with_capacity(recs.len());
        let mut i = 0usize;
        while i < recs.len() {
            let needed = (recs[i].len() + 4) as u16;
            // Same placement policy as single insert: last page, any
            // page with room, else grow.
            let last = self.pages.len() - 1;
            let idx = if self.free_hints[last] >= needed {
                last
            } else if let Some(j) = self.free_hints.iter().position(|&f| f >= needed) {
                j
            } else {
                let pid = pool.allocate()?;
                pool.with_page_mut(pid, |b| SlottedMut(b).init())?;
                self.pages.push(pid);
                self.free_hints.push(PAGE_SIZE as u16 - 4);
                self.pages.len() - 1
            };
            let pid = self.pages[idx];
            // Pack as many of the remaining records as fit into this
            // page under a single page access.
            let (placed, free) = pool.with_page_mut(pid, |b| {
                let mut placed: Vec<Rid> = Vec::new();
                while i < recs.len() {
                    if SlottedRef(b).free_space() < recs[i].len() + 4 {
                        break;
                    }
                    match SlottedMut(b).insert(recs[i]) {
                        Ok(slot) => {
                            placed.push(Rid { page: pid, slot });
                            i += 1;
                        }
                        Err(_) => break,
                    }
                }
                let free = SlottedRef(b).free_space() as u16;
                (placed, free)
            })?;
            self.free_hints[idx] = free;
            self.live_records += placed.len() as u64;
            if placed.is_empty() {
                // Hint said it fits but the page disagreed; fall back to
                // the single-record path to surface the real error.
                rids.push(self.insert(pool, recs[i])?);
                i += 1;
                continue;
            }
            rids.extend(placed);
        }
        Ok(rids)
    }

    /// Fetch the record at `rid`.
    pub fn get(&self, pool: &BufferPool, rid: Rid) -> DbResult<Vec<u8>> {
        if !self.pages.contains(&rid.page) {
            return Err(DbError::BadRid {
                page: rid.page,
                slot: rid.slot,
            });
        }
        pool.with_page(rid.page, |b| {
            SlottedRef(b).record(rid.slot).map(<[u8]>::to_vec)
        })?
        .ok_or(DbError::BadRid {
            page: rid.page,
            slot: rid.slot,
        })
    }

    /// Fetch many records, one page access per *run* of same-page rids.
    /// Callers that sort their rid lists (the index-scan path) therefore
    /// pay one logical read per distinct page instead of one per record.
    /// Results are in input order.
    pub fn get_many(&self, pool: &BufferPool, rids: &[Rid]) -> DbResult<Vec<Vec<u8>>> {
        let mut out = Vec::with_capacity(rids.len());
        let mut i = 0usize;
        while i < rids.len() {
            let pid = rids[i].page;
            if !self.pages.contains(&pid) {
                return Err(DbError::BadRid {
                    page: pid,
                    slot: rids[i].slot,
                });
            }
            let mut j = i;
            while j < rids.len() && rids[j].page == pid {
                j += 1;
            }
            let recs: Vec<Option<Vec<u8>>> = pool.with_page(pid, |b| {
                let s = SlottedRef(b);
                rids[i..j]
                    .iter()
                    .map(|r| s.record(r.slot).map(<[u8]>::to_vec))
                    .collect()
            })?;
            for (r, rec) in rids[i..j].iter().zip(recs) {
                out.push(rec.ok_or(DbError::BadRid {
                    page: r.page,
                    slot: r.slot,
                })?);
            }
            i = j;
        }
        Ok(out)
    }

    /// Delete the record at `rid`.
    pub fn delete(&mut self, pool: &BufferPool, rid: Rid) -> DbResult<()> {
        let idx = self
            .pages
            .iter()
            .position(|&p| p == rid.page)
            .ok_or(DbError::BadRid {
                page: rid.page,
                slot: rid.slot,
            })?;
        let free = pool.with_page_mut(rid.page, |b| {
            SlottedMut(b).delete(rid.slot)?;
            Ok::<u16, DbError>(SlottedRef(b).free_space() as u16)
        })??;
        self.free_hints[idx] = free;
        self.live_records -= 1;
        Ok(())
    }

    /// Update in place when possible; otherwise delete + reinsert.
    /// Returns the (possibly new) rid.
    pub fn update(&mut self, pool: &BufferPool, rid: Rid, rec: &[u8]) -> DbResult<Rid> {
        if !self.pages.contains(&rid.page) {
            return Err(DbError::BadRid {
                page: rid.page,
                slot: rid.slot,
            });
        }
        let fit =
            pool.with_page_mut(rid.page, |b| SlottedMut(b).update_in_place(rid.slot, rec))??;
        if fit {
            return Ok(rid);
        }
        self.delete(pool, rid)?;
        self.insert(pool, rec)
    }

    /// Visit every live record in file order. The callback may not touch
    /// the pool (we hold it); collect rids if you need random access after.
    pub fn scan(&self, pool: &BufferPool, mut f: impl FnMut(Rid, &[u8])) -> DbResult<()> {
        for &pid in &self.pages {
            pool.with_page(pid, |b| {
                for (slot, rec) in SlottedRef(b).records() {
                    f(Rid { page: pid, slot }, rec);
                }
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::EvictionPolicy;
    use crate::disk::DiskManager;

    fn pool() -> BufferPool {
        BufferPool::new(DiskManager::in_memory(), 8, EvictionPolicy::Lru)
    }

    #[test]
    fn insert_get_roundtrip_many_pages() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let rec = format!("record-{i}-{}", "x".repeat(i as usize % 60));
            rids.push((hf.insert(&bp, rec.as_bytes()).unwrap(), rec));
        }
        assert!(hf.num_pages() > 1, "should have spilled to multiple pages");
        assert_eq!(hf.len(), 500);
        for (rid, rec) in &rids {
            assert_eq!(hf.get(&bp, *rid).unwrap(), rec.as_bytes());
        }
    }

    #[test]
    fn scan_sees_exactly_live_records() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let mut rids = Vec::new();
        for i in 0..50u32 {
            rids.push(hf.insert(&bp, &i.to_le_bytes()).unwrap());
        }
        for rid in rids.iter().step_by(2) {
            hf.delete(&bp, *rid).unwrap();
        }
        let mut seen = Vec::new();
        hf.scan(&bp, |_, rec| {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
        })
        .unwrap();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..50).filter(|i| i % 2 == 1).collect();
        assert_eq!(seen, expect);
        assert_eq!(hf.len(), 25);
    }

    #[test]
    fn update_in_place_and_relocating() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let rid = hf.insert(&bp, b"0123456789").unwrap();
        // Shrinking update stays put.
        let same = hf.update(&bp, rid, b"abc").unwrap();
        assert_eq!(same, rid);
        assert_eq!(hf.get(&bp, rid).unwrap(), b"abc");
        // Fill the page so a growing update must relocate.
        let filler = vec![b'z'; 300];
        while hf.num_pages() == 1 {
            hf.insert(&bp, &filler).unwrap();
        }
        let grown = vec![b'g'; 900];
        let moved = hf.update(&bp, rid, &grown).unwrap();
        assert_eq!(hf.get(&bp, moved).unwrap(), grown);
        if moved != rid {
            assert!(hf.get(&bp, rid).is_err(), "old rid must be dead");
        }
    }

    #[test]
    fn insert_many_matches_singular_inserts_with_fewer_page_touches() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let recs: Vec<Vec<u8>> = (0..500u32)
            .map(|i| format!("record-{i}-{}", "x".repeat((i % 40) as usize)).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = recs.iter().map(Vec::as_slice).collect();
        bp.reset_stats();
        let rids = hf.insert_many(&bp, &refs).unwrap();
        let batched_reads = bp.stats().logical_reads;
        assert_eq!(rids.len(), 500);
        assert_eq!(hf.len(), 500);
        for (rec, rid) in recs.iter().zip(&rids) {
            assert_eq!(&hf.get(&bp, *rid).unwrap(), rec);
        }
        // Same workload through the singular path touches far more pages.
        let bp2 = pool();
        let mut hf2 = HeapFile::create(&bp2).unwrap();
        bp2.reset_stats();
        for rec in &refs {
            hf2.insert(&bp2, rec).unwrap();
        }
        assert!(
            batched_reads * 2 <= bp2.stats().logical_reads,
            "batched {batched_reads} vs singular {}",
            bp2.stats().logical_reads
        );
        // Oversized records still error.
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            hf.insert_many(&bp, &[huge.as_slice()]),
            Err(DbError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn deleted_rid_is_dangling() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let rid = hf.insert(&bp, b"x").unwrap();
        hf.delete(&bp, rid).unwrap();
        assert!(matches!(hf.get(&bp, rid), Err(DbError::BadRid { .. })));
        assert!(hf.delete(&bp, rid).is_err());
    }

    #[test]
    fn foreign_rid_rejected() {
        let bp = pool();
        let hf = HeapFile::create(&bp).unwrap();
        let bad = Rid {
            page: 9999,
            slot: 0,
        };
        assert!(matches!(hf.get(&bp, bad), Err(DbError::BadRid { .. })));
    }

    #[test]
    fn record_too_large() {
        let bp = pool();
        let mut hf = HeapFile::create(&bp).unwrap();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            hf.insert(&bp, &huge),
            Err(DbError::RecordTooLarge(_))
        ));
    }
}
