//! B+tree secondary indexes over the buffer pool.
//!
//! Keys are memcomparable byte strings (see [`crate::value::encode_composite_key`]);
//! payloads are record ids. Duplicate keys are allowed — `(key, rid)` pairs
//! are unique. Every node visit goes through the buffer pool, so index
//! probes are charged to the physical-I/O counters; this is what makes the
//! `SingleProbe` classifier path of Figure 8(a/b) honest: *"there is little
//! locality of access, because the records are small and most storage
//! managers use page-level caching."*
//!
//! Deletion is lazy (no rebalancing/merging): pages may underflow but never
//! violate ordering invariants. The workloads here delete far less than
//! they insert, matching the paper's crawl tables.

use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::heap::Rid;
use crate::page::{PageId, INVALID_PAGE, PAGE_SIZE};
use std::ops::Bound;

const LEAF: u8 = 0;
const INTERNAL: u8 = 1;

/// In-memory image of a leaf node.
struct Leaf {
    next: PageId,
    /// Sorted by key, ties broken by rid.
    entries: Vec<(Vec<u8>, Rid)>,
}

/// In-memory image of an internal node.
struct Internal {
    leftmost: PageId,
    /// `entries[i] = (key_i, child_i)`: `child_i` holds keys `>= key_i`
    /// (and `< key_{i+1}`); `leftmost` holds keys `< key_0`.
    entries: Vec<(Vec<u8>, PageId)>,
}

enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

fn encode_rid(rid: Rid, out: &mut Vec<u8>) {
    out.extend_from_slice(&rid.page.to_le_bytes());
    out.extend_from_slice(&rid.slot.to_le_bytes());
}

/// Augmented key: user key ++ big-endian rid. Internal-node navigation
/// always uses augmented keys so that *duplicate* user keys spanning a
/// split stay reachable (the separator alone cannot disambiguate them).
fn aug_key(key: &[u8], rid: Rid) -> Vec<u8> {
    let mut k = Vec::with_capacity(key.len() + 6);
    k.extend_from_slice(key);
    k.extend_from_slice(&rid.page.to_be_bytes());
    k.extend_from_slice(&rid.slot.to_be_bytes());
    k
}

/// Minimal rid: the augmented key lower bound for a user key.
const MIN_RID: Rid = Rid { page: 0, slot: 0 };

fn decode_rid(b: &[u8]) -> Rid {
    Rid {
        page: u32::from_le_bytes(b[0..4].try_into().expect("rid page")),
        slot: u16::from_le_bytes(b[4..6].try_into().expect("rid slot")),
    }
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        match self {
            Node::Leaf(l) => {
                out.push(LEAF);
                out.extend_from_slice(&(l.entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&l.next.to_le_bytes());
                for (k, rid) in &l.entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    encode_rid(*rid, &mut out);
                }
            }
            Node::Internal(n) => {
                out.push(INTERNAL);
                out.extend_from_slice(&(n.entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&n.leftmost.to_le_bytes());
                for (k, child) in &n.entries {
                    out.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&child.to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(b: &[u8]) -> DbResult<Node> {
        let ty = b[0];
        let n = u16::from_le_bytes([b[1], b[2]]) as usize;
        let first = u32::from_le_bytes(b[3..7].try_into().expect("node header"));
        let mut off = 7;
        let read_key = |off: &mut usize| -> DbResult<Vec<u8>> {
            if *off + 2 > b.len() {
                return Err(DbError::Page("truncated btree node".into()));
            }
            let klen = u16::from_le_bytes([b[*off], b[*off + 1]]) as usize;
            *off += 2;
            if *off + klen > b.len() {
                return Err(DbError::Page("truncated btree key".into()));
            }
            let k = b[*off..*off + klen].to_vec();
            *off += klen;
            Ok(k)
        };
        match ty {
            LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = read_key(&mut off)?;
                    let rid = decode_rid(&b[off..off + 6]);
                    off += 6;
                    entries.push((k, rid));
                }
                Ok(Node::Leaf(Leaf {
                    next: first,
                    entries,
                }))
            }
            INTERNAL => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = read_key(&mut off)?;
                    let child = u32::from_le_bytes(b[off..off + 4].try_into().expect("child ptr"));
                    off += 4;
                    entries.push((k, child));
                }
                Ok(Node::Internal(Internal {
                    leftmost: first,
                    entries,
                }))
            }
            t => Err(DbError::Page(format!("bad btree node type {t}"))),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            Node::Leaf(l) => {
                7 + l
                    .entries
                    .iter()
                    .map(|(k, _)| 2 + k.len() + 6)
                    .sum::<usize>()
            }
            Node::Internal(n) => {
                7 + n
                    .entries
                    .iter()
                    .map(|(k, _)| 2 + k.len() + 4)
                    .sum::<usize>()
            }
        }
    }
}

fn read_node(pool: &BufferPool, pid: PageId) -> DbResult<Node> {
    pool.with_page(pid, Node::decode)?
}

// ---------------------------------------------------------------- raw access
//
// The hot paths (descent, point lookup, single insert/delete, batch
// partitioning) never materialize a [`Node`]: decoding allocates one
// `Vec<u8>` per key, and a crawl touches dozens of nodes per page
// fetched, so the decode/encode churn — not disk — was the dominant
// per-page cost. These helpers parse the encoded bytes in place; the
// decode path survives for structural changes (splits), which are rare.

/// Header bytes before the first entry (type, u16 count, u32 next/leftmost).
const HDR: usize = 7;
/// Payload width after each key: a 6-byte rid in leaves…
const LEAF_PAYLOAD: usize = 6;
/// …or a 4-byte child pointer in internal nodes.
const INTERNAL_PAYLOAD: usize = 4;

/// A validated, borrowed view of an encoded node: one bounds-checking
/// walk up front, then allocation-free iteration.
struct RawNode<'a> {
    b: &'a [u8],
    leaf: bool,
    n: usize,
    /// Bytes used by header + entries (the in-place insert bound).
    used: usize,
}

impl<'a> RawNode<'a> {
    fn parse(b: &'a [u8]) -> DbResult<RawNode<'a>> {
        let leaf = match b[0] {
            LEAF => true,
            INTERNAL => false,
            t => return Err(DbError::Page(format!("bad btree node type {t}"))),
        };
        let n = u16::from_le_bytes([b[1], b[2]]) as usize;
        let payload = if leaf { LEAF_PAYLOAD } else { INTERNAL_PAYLOAD };
        let mut off = HDR;
        for _ in 0..n {
            if off + 2 > b.len() {
                return Err(DbError::Page("truncated btree node".into()));
            }
            let klen = u16::from_le_bytes([b[off], b[off + 1]]) as usize;
            off += 2 + klen + payload;
            if off > b.len() {
                return Err(DbError::Page("truncated btree key".into()));
            }
        }
        Ok(RawNode {
            b,
            leaf,
            n,
            used: off,
        })
    }

    /// `next` pointer of a leaf / `leftmost` child of an internal node.
    fn first(&self) -> u32 {
        u32::from_le_bytes(self.b[3..7].try_into().expect("node header"))
    }

    /// Iterate `(entry_offset, key, payload)` without allocating.
    fn entries(&self) -> RawEntries<'a> {
        RawEntries {
            b: self.b,
            payload: if self.leaf {
                LEAF_PAYLOAD
            } else {
                INTERNAL_PAYLOAD
            },
            off: HDR,
            left: self.n,
        }
    }
}

struct RawEntries<'a> {
    b: &'a [u8],
    payload: usize,
    off: usize,
    left: usize,
}

impl<'a> Iterator for RawEntries<'a> {
    type Item = (usize, &'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 {
            return None;
        }
        let off = self.off;
        let klen = u16::from_le_bytes([self.b[off], self.b[off + 1]]) as usize;
        let key = &self.b[off + 2..off + 2 + klen];
        let payload = &self.b[off + 2 + klen..off + 2 + klen + self.payload];
        self.off = off + 2 + klen + self.payload;
        self.left -= 1;
        Some((off, key, payload))
    }
}

fn set_count(b: &mut [u8], n: usize) {
    b[1..3].copy_from_slice(&(n as u16).to_le_bytes());
}

fn payload_rid(p: &[u8]) -> Rid {
    decode_rid(p)
}

fn payload_child(p: &[u8]) -> PageId {
    u32::from_le_bytes(p.try_into().expect("child ptr"))
}

/// Compare `(key ++ rid_be)` against `sep` without building the
/// augmented key (the descent/partition comparisons run once per node
/// entry — materializing each one allocated on every hop).
fn cmp_aug(key: &[u8], rid: Rid, sep: &[u8]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let mut rb = [0u8; 6];
    rb[..4].copy_from_slice(&rid.page.to_be_bytes());
    rb[4..].copy_from_slice(&rid.slot.to_be_bytes());
    if sep.len() <= key.len() {
        match key[..sep.len()].cmp(sep) {
            // Augmented key strictly longer: it sorts after its prefix.
            Ordering::Equal => Ordering::Greater,
            c => c,
        }
    } else {
        match key.cmp(&sep[..key.len()]) {
            Ordering::Equal => rb[..].cmp(&sep[key.len()..]),
            c => c,
        }
    }
}

/// Leaf-entry order: `(key, rid)` tuples.
fn cmp_entry(k: &[u8], r: Rid, probe_key: &[u8], probe_rid: Rid) -> std::cmp::Ordering {
    k.cmp(probe_key).then_with(|| r.cmp(&probe_rid))
}

/// Child of an internal node that should contain `akey` (augmented):
/// rightmost child whose separator is `<= akey` (equal separators send
/// the search right, exactly like [`child_index`] on the decoded form).
fn raw_child_for(node: &RawNode<'_>, akey: &[u8]) -> PageId {
    let mut child = node.first();
    for (_, sep, p) in node.entries() {
        if sep <= akey {
            child = payload_child(p);
        } else {
            break;
        }
    }
    child
}

/// Outcome of an in-place leaf insert attempt.
enum FastInsert {
    Inserted,
    Duplicate,
    /// The entry does not fit: the caller takes the decode-and-split path.
    NoFit,
}

/// Insert `(key, rid)` into the encoded leaf `b` by shifting the entry
/// tail, without decoding. One memmove, zero allocations.
fn raw_leaf_insert(b: &mut [u8], key: &[u8], rid: Rid) -> DbResult<FastInsert> {
    let (n, used, ins_off, dup) = {
        let node = RawNode::parse(b)?;
        if !node.leaf {
            return Err(DbError::Page("expected leaf node".into()));
        }
        let mut ins = node.used;
        let mut dup = false;
        for (off, k, p) in node.entries() {
            match cmp_entry(k, payload_rid(p), key, rid) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    dup = true;
                    break;
                }
                std::cmp::Ordering::Greater => {
                    ins = off;
                    break;
                }
            }
        }
        (node.n, node.used, ins, dup)
    };
    if dup {
        return Ok(FastInsert::Duplicate);
    }
    let esz = 2 + key.len() + LEAF_PAYLOAD;
    if used + esz > b.len() {
        return Ok(FastInsert::NoFit);
    }
    b.copy_within(ins_off..used, ins_off + esz);
    b[ins_off..ins_off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    b[ins_off + 2..ins_off + 2 + key.len()].copy_from_slice(key);
    let rid_off = ins_off + 2 + key.len();
    b[rid_off..rid_off + 4].copy_from_slice(&rid.page.to_le_bytes());
    b[rid_off + 4..rid_off + 6].copy_from_slice(&rid.slot.to_le_bytes());
    set_count(b, n + 1);
    Ok(FastInsert::Inserted)
}

/// Remove `(key, rid)` from the encoded leaf `b` in place; returns
/// whether it existed.
fn raw_leaf_delete(b: &mut [u8], key: &[u8], rid: Rid) -> DbResult<bool> {
    let (n, used, hit) = {
        let node = RawNode::parse(b)?;
        if !node.leaf {
            return Err(DbError::Page("expected leaf node".into()));
        }
        let mut hit: Option<(usize, usize)> = None;
        for (off, k, p) in node.entries() {
            match cmp_entry(k, payload_rid(p), key, rid) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    hit = Some((off, 2 + k.len() + LEAF_PAYLOAD));
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        (node.n, node.used, hit)
    };
    match hit {
        None => Ok(false),
        Some((off, esz)) => {
            b.copy_within(off + esz..used, off);
            set_count(b, n - 1);
            Ok(true)
        }
    }
}

fn write_node(pool: &BufferPool, pid: PageId, node: &Node) -> DbResult<()> {
    let bytes = node.encode();
    if bytes.len() > PAGE_SIZE {
        return Err(DbError::Page("btree node overflow after split".into()));
    }
    pool.with_page_mut(pid, |b| {
        b[..bytes.len()].copy_from_slice(&bytes);
    })
}

/// A persistent B+tree index.
#[derive(Debug)]
pub struct BTree {
    root: PageId,
    len: u64,
}

impl BTree {
    /// Create an empty tree (root is an empty leaf).
    pub fn create(pool: &BufferPool) -> DbResult<BTree> {
        let root = pool.allocate()?;
        write_node(
            pool,
            root,
            &Node::Leaf(Leaf {
                next: INVALID_PAGE,
                entries: vec![],
            }),
        )?;
        Ok(BTree { root, len: 0 })
    }

    /// Number of `(key, rid)` entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Root page id (persisted in the WAL catalog image).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Rebuild from a catalog image decoded at recovery; the node pages
    /// themselves are recovered through the data file / WAL replay.
    pub(crate) fn from_parts(root: PageId, len: u64) -> BTree {
        BTree { root, len }
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. Duplicate `(key, rid)` pairs are ignored.
    ///
    /// Fast path: descend without decoding, splice the entry into the
    /// leaf in place. Only a full leaf falls back to the decode-and-
    /// split machinery.
    pub fn insert(&mut self, pool: &BufferPool, key: &[u8], rid: Rid) -> DbResult<()> {
        let leaf_pid = self.find_leaf(pool, &aug_key(key, rid))?;
        let outcome = pool.with_page_mut_if(leaf_pid, |b| {
            let r = raw_leaf_insert(b, key, rid);
            let dirtied = matches!(r, Ok(FastInsert::Inserted));
            (r, dirtied)
        })??;
        match outcome {
            FastInsert::Inserted => {
                self.len += 1;
                return Ok(());
            }
            FastInsert::Duplicate => return Ok(()),
            FastInsert::NoFit => {}
        }
        if let Some((sep, right)) = self.insert_rec(pool, self.root, key, rid)? {
            // Root split: grow the tree by one level.
            let new_root = pool.allocate()?;
            let node = Node::Internal(Internal {
                leftmost: self.root,
                entries: vec![(sep, right)],
            });
            write_node(pool, new_root, &node)?;
            self.root = new_root;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_page))` when
    /// the child split.
    fn insert_rec(
        &mut self,
        pool: &BufferPool,
        pid: PageId,
        key: &[u8],
        rid: Rid,
    ) -> DbResult<Option<(Vec<u8>, PageId)>> {
        match read_node(pool, pid)? {
            Node::Leaf(mut leaf) => {
                let probe = (key.to_vec(), rid);
                let pos = match leaf.entries.binary_search_by(|e| e.cmp(&probe)) {
                    Ok(_) => return Ok(None), // exact duplicate
                    Err(p) => p,
                };
                leaf.entries.insert(pos, probe);
                self.len += 1;
                let node = Node::Leaf(leaf);
                if node.encoded_len() <= PAGE_SIZE {
                    write_node(pool, pid, &node)?;
                    return Ok(None);
                }
                // Split: move upper half right.
                let mut leaf = match node {
                    Node::Leaf(l) => l,
                    _ => unreachable!(),
                };
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let sep = aug_key(&right_entries[0].0, right_entries[0].1);
                let right_pid = pool.allocate()?;
                let right = Leaf {
                    next: leaf.next,
                    entries: right_entries,
                };
                leaf.next = right_pid;
                write_node(pool, right_pid, &Node::Leaf(right))?;
                write_node(pool, pid, &Node::Leaf(leaf))?;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal(mut node) => {
                let akey = aug_key(key, rid);
                let child_idx = child_index(&node, &akey);
                let child = if child_idx == 0 {
                    node.leftmost
                } else {
                    node.entries[child_idx - 1].1
                };
                if let Some((sep, right)) = self.insert_rec(pool, child, key, rid)? {
                    let pos = node
                        .entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(&sep[..]))
                        .unwrap_or_else(|p| p);
                    node.entries.insert(pos, (sep, right));
                    let enc = Node::Internal(node);
                    if enc.encoded_len() <= PAGE_SIZE {
                        write_node(pool, pid, &enc)?;
                        return Ok(None);
                    }
                    let mut node = match enc {
                        Node::Internal(n) => n,
                        _ => unreachable!(),
                    };
                    let mid = node.entries.len() / 2;
                    let mut right_entries = node.entries.split_off(mid);
                    // Middle key moves up; its child becomes right's leftmost.
                    let (sep_up, sep_child) = right_entries.remove(0);
                    let right_pid = pool.allocate()?;
                    let right = Internal {
                        leftmost: sep_child,
                        entries: right_entries,
                    };
                    write_node(pool, right_pid, &Node::Internal(right))?;
                    write_node(pool, pid, &Node::Internal(node))?;
                    Ok(Some((sep_up, right_pid)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Remove an exact `(key, rid)` entry; returns whether it existed.
    /// In-place shift; deletion stays lazy (no rebalancing), so no
    /// structural fallback is ever needed.
    pub fn delete(&mut self, pool: &BufferPool, key: &[u8], rid: Rid) -> DbResult<bool> {
        let leaf_pid = self.find_leaf(pool, &aug_key(key, rid))?;
        let existed = pool.with_page_mut_if(leaf_pid, |b| {
            let r = raw_leaf_delete(b, key, rid);
            let dirtied = matches!(r, Ok(true));
            (r, dirtied)
        })??;
        if existed {
            self.len -= 1;
        }
        Ok(existed)
    }

    /// Descend to the leaf that would hold `akey` (an *augmented* key).
    /// Each hop reads the node bytes in place — no decode, no allocation.
    fn find_leaf(&self, pool: &BufferPool, akey: &[u8]) -> DbResult<PageId> {
        let mut pid = self.root;
        loop {
            let next = pool.with_page(pid, |b| -> DbResult<Option<PageId>> {
                let node = RawNode::parse(b)?;
                if node.leaf {
                    return Ok(None);
                }
                Ok(Some(raw_child_for(&node, akey)))
            })??;
            match next {
                None => return Ok(pid),
                Some(child) => pid = child,
            }
        }
    }

    /// All rids for each of `keys`, answered in one ordered pass.
    ///
    /// `keys` must be sorted ascending (duplicates allowed). Instead of
    /// one root-to-leaf descent per key, the pass holds its current leaf
    /// and only re-descends when the next key falls beyond it — the
    /// "sort once, merge once" batch access path of §3.1, applied to
    /// point lookups. Buffer-pool reads drop from `O(keys × depth)` to
    /// roughly one visit per distinct leaf touched.
    pub fn lookup_many(&self, pool: &BufferPool, keys: &[Vec<u8>]) -> DbResult<Vec<Vec<Rid>>> {
        // The current leaf is held as a page-sized scratch copy and
        // re-parsed per key — one 4 KB memcpy per leaf visited instead
        // of a per-entry-allocating decode.
        let mut out: Vec<Vec<Rid>> = Vec::with_capacity(keys.len());
        let mut scratch: Box<[u8; PAGE_SIZE]> = Box::new([0u8; PAGE_SIZE]);
        let mut have_leaf = false;
        let load = |pool: &BufferPool, scratch: &mut [u8; PAGE_SIZE], pid: PageId| {
            pool.with_page(pid, |b| scratch.copy_from_slice(b))
        };
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                debug_assert!(keys[i - 1] <= *key, "lookup_many requires sorted keys");
                if keys[i - 1] == *key {
                    // Equal neighbor: the pass has already advanced past
                    // this key's entries; reuse the previous answer.
                    let prev = out[i - 1].clone();
                    out.push(prev);
                    continue;
                }
            }
            // The current leaf can serve `key` only if `key` does not
            // sort past its last entry; otherwise descend afresh.
            let reuse = have_leaf && {
                let node = RawNode::parse(&scratch[..])?;
                node.entries()
                    .last()
                    .is_some_and(|(_, k, _)| k >= key.as_slice())
            };
            if !reuse {
                let pid = self.find_leaf(pool, &aug_key(key, MIN_RID))?;
                load(pool, &mut scratch, pid)?;
                have_leaf = true;
            }
            let mut rids = Vec::new();
            loop {
                let node = RawNode::parse(&scratch[..])?;
                if !node.leaf {
                    return Err(DbError::Page("expected leaf node".into()));
                }
                let mut last_key_le = true;
                for (_, k, p) in node.entries() {
                    match k.cmp(key.as_slice()) {
                        std::cmp::Ordering::Less => {}
                        std::cmp::Ordering::Equal => rids.push(payload_rid(p)),
                        std::cmp::Ordering::Greater => {
                            last_key_le = false;
                            break;
                        }
                    }
                }
                // Matches can only continue in the next leaf when this
                // leaf ends at or before `key` (duplicate span, or a key
                // that sits on a leaf boundary).
                let spills = node.first() != INVALID_PAGE && last_key_le;
                if !spills {
                    break;
                }
                let next = node.first();
                load(pool, &mut scratch, next)?;
            }
            out.push(rids);
        }
        Ok(out)
    }

    /// Insert a sorted batch of `(key, rid)` entries in one ordered
    /// pass: the batch is partitioned over the tree's subtrees and each
    /// affected node is read and written once, instead of once per
    /// entry. Exact duplicate pairs are ignored, as in
    /// [`BTree::insert`]. Entries must be sorted by `(key, rid)`.
    pub fn insert_many(&mut self, pool: &BufferPool, entries: &[(Vec<u8>, Rid)]) -> DbResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        debug_assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "insert_many requires sorted entries"
        );
        let mut pending = self.insert_many_rec(pool, self.root, entries)?;
        // Root split(s): grow by one level per round until the new root
        // fits (a huge batch can hand back more separators than one
        // internal node holds).
        while !pending.is_empty() {
            let new_root = pool.allocate()?;
            let node = Internal {
                leftmost: self.root,
                entries: pending,
            };
            self.root = new_root;
            pending = write_internal_split(pool, new_root, node)?;
        }
        Ok(())
    }

    /// Partition the (sorted) batch among this node's children by the
    /// same augmented-key rule the single-entry descent uses — reading
    /// the node bytes in place, so a no-split batch never decodes an
    /// internal node.
    fn raw_partition(
        &self,
        pool: &BufferPool,
        pid: PageId,
        entries: &[(Vec<u8>, Rid)],
    ) -> DbResult<Option<Vec<(PageId, usize, usize)>>> {
        pool.with_page(pid, |b| -> DbResult<Option<Vec<(PageId, usize, usize)>>> {
            let node = RawNode::parse(b)?;
            if node.leaf {
                return Ok(None);
            }
            let mut segs: Vec<(PageId, usize, usize)> = Vec::new();
            let mut lo = 0usize;
            let mut child = node.first();
            for (_, sep, p) in node.entries() {
                let hi = lo
                    + entries[lo..]
                        .partition_point(|(k, r)| cmp_aug(k, *r, sep) == std::cmp::Ordering::Less);
                if hi > lo {
                    segs.push((child, lo, hi));
                }
                lo = hi;
                child = payload_child(p);
                if lo == entries.len() {
                    break;
                }
            }
            if lo < entries.len() {
                segs.push((child, lo, entries.len()));
            }
            Ok(Some(segs))
        })?
    }

    fn insert_many_rec(
        &mut self,
        pool: &BufferPool,
        pid: PageId,
        entries: &[(Vec<u8>, Rid)],
    ) -> DbResult<Vec<(Vec<u8>, PageId)>> {
        match self.raw_partition(pool, pid, entries)? {
            None => {
                // Leaf. Fast path: splice entries in place until one
                // does not fit; only then decode what the page now
                // holds and take the multi-way split path for the rest.
                let (placed, done) = pool.with_page_mut_if(pid, |b| {
                    let mut placed = 0u64;
                    let mut i = 0usize;
                    let mut err = None;
                    while i < entries.len() {
                        match raw_leaf_insert(b, &entries[i].0, entries[i].1) {
                            Ok(FastInsert::Inserted) => {
                                placed += 1;
                                i += 1;
                            }
                            Ok(FastInsert::Duplicate) => i += 1,
                            Ok(FastInsert::NoFit) => break,
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    let dirtied = placed > 0;
                    (
                        match err {
                            Some(e) => Err(e),
                            None => Ok((placed, i)),
                        },
                        dirtied,
                    )
                })??;
                self.len += placed;
                if done == entries.len() {
                    return Ok(Vec::new());
                }
                let mut leaf = match read_node(pool, pid)? {
                    Node::Leaf(l) => l,
                    Node::Internal(_) => unreachable!("raw_partition said leaf"),
                };
                for (key, rid) in &entries[done..] {
                    match leaf
                        .entries
                        .binary_search_by(|(k, r)| cmp_entry(k, *r, key, *rid))
                    {
                        Ok(_) => {}
                        Err(pos) => {
                            leaf.entries.insert(pos, (key.clone(), *rid));
                            self.len += 1;
                        }
                    }
                }
                write_leaf_split(pool, pid, leaf)
            }
            Some(segs) => {
                let mut seps: Vec<(Vec<u8>, PageId)> = Vec::new();
                for (child, lo, hi) in segs {
                    seps.extend(self.insert_many_rec(pool, child, &entries[lo..hi])?);
                }
                if seps.is_empty() {
                    return Ok(Vec::new());
                }
                // A child split: decode this node, thread the new
                // separators in, and split it too if needed.
                let mut node = match read_node(pool, pid)? {
                    Node::Internal(n) => n,
                    Node::Leaf(_) => unreachable!("raw_partition said internal"),
                };
                for sep in seps {
                    let pos = node
                        .entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(&sep.0[..]))
                        .unwrap_or_else(|p| p);
                    node.entries.insert(pos, sep);
                }
                write_internal_split(pool, pid, node)
            }
        }
    }

    /// Remove a sorted batch of exact `(key, rid)` entries in one
    /// ordered pass; returns how many existed and were removed.
    /// Deletion stays lazy (no rebalancing), like [`BTree::delete`].
    pub fn delete_many(
        &mut self,
        pool: &BufferPool,
        entries: &[(Vec<u8>, Rid)],
    ) -> DbResult<usize> {
        if entries.is_empty() {
            return Ok(0);
        }
        debug_assert!(
            entries.windows(2).all(|w| w[0] <= w[1]),
            "delete_many requires sorted entries"
        );
        let removed = self.delete_many_rec(pool, self.root, entries)?;
        self.len -= removed as u64;
        Ok(removed)
    }

    fn delete_many_rec(
        &mut self,
        pool: &BufferPool,
        pid: PageId,
        entries: &[(Vec<u8>, Rid)],
    ) -> DbResult<usize> {
        match self.raw_partition(pool, pid, entries)? {
            None => {
                // Leaf: in-place shifts, no decode/encode round-trip.
                pool.with_page_mut_if(pid, |b| {
                    let mut removed = 0usize;
                    let mut err = None;
                    for (key, rid) in entries {
                        match raw_leaf_delete(b, key, *rid) {
                            Ok(true) => removed += 1,
                            Ok(false) => {}
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    let dirtied = removed > 0;
                    (
                        match err {
                            Some(e) => Err(e),
                            None => Ok(removed),
                        },
                        dirtied,
                    )
                })?
            }
            Some(segs) => {
                let mut removed = 0;
                for (child, lo, hi) in segs {
                    removed += self.delete_many_rec(pool, child, &entries[lo..hi])?;
                }
                Ok(removed)
            }
        }
    }

    /// All rids stored under exactly `key`.
    pub fn lookup(&self, pool: &BufferPool, key: &[u8]) -> DbResult<Vec<Rid>> {
        let mut out = Vec::new();
        self.scan_range(
            pool,
            Bound::Included(key),
            Bound::Included(key),
            |_, rid| {
                out.push(rid);
                true
            },
        )?;
        Ok(out)
    }

    /// All `(key, rid)` entries whose key starts with `prefix`.
    pub fn lookup_prefix(&self, pool: &BufferPool, prefix: &[u8]) -> DbResult<Vec<(Vec<u8>, Rid)>> {
        let mut out = Vec::new();
        self.scan_range(pool, Bound::Included(prefix), Bound::Unbounded, |k, rid| {
            if !k.starts_with(prefix) {
                return false;
            }
            out.push((k.to_vec(), rid));
            true
        })?;
        Ok(out)
    }

    /// In-order scan over `[lo, hi]`; the callback returns `false` to stop.
    ///
    /// Each leaf is copied into a page-sized scratch buffer once (so the
    /// callback runs outside the buffer-pool latch and may safely call
    /// back into the pool), then iterated without decoding.
    pub fn scan_range(
        &self,
        pool: &BufferPool,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], Rid) -> bool,
    ) -> DbResult<()> {
        let start_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut pid = self.find_leaf(pool, &aug_key(start_key, MIN_RID))?;
        let mut scratch: Box<[u8; PAGE_SIZE]> = Box::new([0u8; PAGE_SIZE]);
        loop {
            pool.with_page(pid, |b| scratch.copy_from_slice(b))?;
            let node = RawNode::parse(&scratch[..])?;
            if !node.leaf {
                return Err(DbError::Page("scan hit internal".into()));
            }
            for (_, k, p) in node.entries() {
                let after_lo = match lo {
                    Bound::Included(l) => k >= l,
                    Bound::Excluded(l) => k > l,
                    Bound::Unbounded => true,
                };
                if !after_lo {
                    continue;
                }
                let before_hi = match hi {
                    Bound::Included(h) => k <= h,
                    Bound::Excluded(h) => k < h,
                    Bound::Unbounded => true,
                };
                if !before_hi {
                    return Ok(());
                }
                if !f(k, payload_rid(p)) {
                    return Ok(());
                }
            }
            if node.first() == INVALID_PAGE {
                return Ok(());
            }
            pid = node.first();
        }
    }

    /// First entry at or after `key` (frontier pop support).
    pub fn first_at_or_after(
        &self,
        pool: &BufferPool,
        key: &[u8],
    ) -> DbResult<Option<(Vec<u8>, Rid)>> {
        Ok(self.first_n_at_or_after(pool, key, 1)?.pop())
    }

    /// Up to `n` entries at or after `key`, in order, from a single
    /// descent plus a leaf walk (range-pop support: the frontier's
    /// batch claim takes the n best entries in one pass instead of n
    /// full descents).
    pub fn first_n_at_or_after(
        &self,
        pool: &BufferPool,
        key: &[u8],
        n: usize,
    ) -> DbResult<Vec<(Vec<u8>, Rid)>> {
        let mut out = Vec::new();
        if n == 0 {
            return Ok(out);
        }
        self.scan_range(pool, Bound::Included(key), Bound::Unbounded, |k, rid| {
            out.push((k.to_vec(), rid));
            out.len() < n
        })?;
        Ok(out)
    }

    /// Structural check used by property tests: keys sorted within and
    /// across leaves; `len` matches entry count.
    pub fn validate(&self, pool: &BufferPool) -> DbResult<()> {
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0u64;
        self.scan_range(pool, Bound::Unbounded, Bound::Unbounded, |k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() <= k, "btree order violated");
            }
            prev = Some(k.to_vec());
            count += 1;
            true
        })?;
        if count != self.len {
            return Err(DbError::Page(format!(
                "btree len {} != scanned {}",
                self.len, count
            )));
        }
        Ok(())
    }
}

/// Batch splits target this fill so a freshly split node absorbs more
/// inserts before splitting again (a 100%-full chunk would split on the
/// very next insert).
const SPLIT_FILL: usize = (PAGE_SIZE * 2) / 3;

/// Write `leaf` back to `pid`, splitting it into however many chained
/// leaves a batch insert requires. Returns the separators of every new
/// right sibling (empty when the node fit as-is).
fn write_leaf_split(
    pool: &BufferPool,
    pid: PageId,
    leaf: Leaf,
) -> DbResult<Vec<(Vec<u8>, PageId)>> {
    let node = Node::Leaf(leaf);
    if node.encoded_len() <= PAGE_SIZE {
        write_node(pool, pid, &node)?;
        return Ok(Vec::new());
    }
    let leaf = match node {
        Node::Leaf(l) => l,
        _ => unreachable!(),
    };
    // Greedy chunking under the split-fill target; each chunk becomes
    // one leaf in the original chain position.
    let mut chunks: Vec<Vec<(Vec<u8>, Rid)>> = vec![Vec::new()];
    let mut size = 7usize;
    for e in leaf.entries {
        let esz = 2 + e.0.len() + 6;
        if size + esz > SPLIT_FILL && !chunks.last().expect("non-empty").is_empty() {
            chunks.push(Vec::new());
            size = 7;
        }
        size += esz;
        chunks.last_mut().expect("non-empty").push(e);
    }
    let tail_next = leaf.next;
    let mut seps = Vec::with_capacity(chunks.len() - 1);
    let mut pids = vec![pid];
    for chunk in &chunks[1..] {
        let new_pid = pool.allocate()?;
        seps.push((aug_key(&chunk[0].0, chunk[0].1), new_pid));
        pids.push(new_pid);
    }
    for (i, chunk) in chunks.into_iter().enumerate() {
        let next = pids.get(i + 1).copied().unwrap_or(tail_next);
        write_node(
            pool,
            pids[i],
            &Node::Leaf(Leaf {
                next,
                entries: chunk,
            }),
        )?;
    }
    Ok(seps)
}

/// Write internal `node` back to `pid`, splitting it into however many
/// internal nodes a batch insert requires; between chunks, one entry's
/// key moves up as the separator and its child becomes the next chunk's
/// leftmost (the multi-way generalization of the single-insert split).
fn write_internal_split(
    pool: &BufferPool,
    pid: PageId,
    node: Internal,
) -> DbResult<Vec<(Vec<u8>, PageId)>> {
    let enc = Node::Internal(node);
    if enc.encoded_len() <= PAGE_SIZE {
        write_node(pool, pid, &enc)?;
        return Ok(Vec::new());
    }
    let node = match enc {
        Node::Internal(n) => n,
        _ => unreachable!(),
    };
    let mut seps = Vec::new();
    let mut cur = Internal {
        leftmost: node.leftmost,
        entries: Vec::new(),
    };
    let mut cur_pid = pid;
    let mut size = 7usize;
    for (key, child) in node.entries {
        let esz = 2 + key.len() + 4;
        if size + esz > SPLIT_FILL && !cur.entries.is_empty() {
            // `key` moves up; `child` seeds the next chunk.
            write_node(pool, cur_pid, &Node::Internal(cur))?;
            let new_pid = pool.allocate()?;
            seps.push((key, new_pid));
            cur = Internal {
                leftmost: child,
                entries: Vec::new(),
            };
            cur_pid = new_pid;
            size = 7;
            continue;
        }
        size += esz;
        cur.entries.push((key, child));
    }
    write_node(pool, cur_pid, &Node::Internal(cur))?;
    Ok(seps)
}

/// Index of the child of `node` that should contain `key`:
/// 0 → `leftmost`, i → `entries[i-1].1`.
fn child_index(node: &Internal, key: &[u8]) -> usize {
    // First entry with key_i > key; descend just before it.
    match node
        .entries
        .binary_search_by(|(k, _)| match k.as_slice().cmp(key) {
            std::cmp::Ordering::Equal => std::cmp::Ordering::Less, // equal → right side
            o => o,
        }) {
        Ok(_) => unreachable!("comparator never returns Equal"),
        Err(p) => p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::EvictionPolicy;
    use crate::disk::DiskManager;
    use crate::value::{encode_composite_key, Value};

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(DiskManager::in_memory(), frames, EvictionPolicy::Lru)
    }

    fn rid(i: u32) -> Rid {
        Rid {
            page: i,
            slot: (i % 7) as u16,
        }
    }

    fn key_i(i: i64) -> Vec<u8> {
        encode_composite_key(&[Value::Int(i)])
    }

    #[test]
    fn insert_lookup_small() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..100i64 {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        assert_eq!(bt.len(), 100);
        for i in 0..100i64 {
            assert_eq!(bt.lookup(&bp, &key_i(i)).unwrap(), vec![rid(i as u32)]);
        }
        assert!(bt.lookup(&bp, &key_i(1000)).unwrap().is_empty());
        bt.validate(&bp).unwrap();
    }

    #[test]
    fn many_inserts_force_splits_random_order() {
        let bp = pool(64);
        let mut bt = BTree::create(&bp).unwrap();
        // Pseudo-random insertion order without rand dependency here.
        let n = 5000i64;
        let mut x = 1i64;
        let mut keys = Vec::new();
        for _ in 0..n {
            x = (x * 1103515245 + 12345) % 100_000;
            keys.push(x);
        }
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        // Deterministic shuffle.
        let len = shuffled.len();
        for i in 0..len {
            let j = (i * 7919 + 13) % len;
            shuffled.swap(i, j);
        }
        for (i, &k) in shuffled.iter().enumerate() {
            bt.insert(&bp, &key_i(k), rid(i as u32)).unwrap();
        }
        assert_eq!(bt.len() as usize, keys.len());
        bt.validate(&bp).unwrap();
        // Ordered scan returns sorted unique keys.
        let mut scanned = Vec::new();
        bt.scan_range(&bp, Bound::Unbounded, Bound::Unbounded, |k, _| {
            scanned.push(k.to_vec());
            true
        })
        .unwrap();
        let expect: Vec<Vec<u8>> = keys.iter().map(|&k| key_i(k)).collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn duplicates_under_one_key() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..50u32 {
            bt.insert(&bp, &key_i(7), rid(i)).unwrap();
        }
        // Exact duplicate (key, rid) ignored.
        bt.insert(&bp, &key_i(7), rid(3)).unwrap();
        assert_eq!(bt.len(), 50);
        let rids = bt.lookup(&bp, &key_i(7)).unwrap();
        assert_eq!(rids.len(), 50);
    }

    #[test]
    fn duplicate_keys_across_splits_stay_deletable() {
        // Regression: with separators carrying only the user key, equal
        // keys split across leaves became unreachable for delete/lookup
        // (this corrupted the crawler's frontier index).
        let bp = pool(32);
        let mut bt = BTree::create(&bp).unwrap();
        // Thousands of identical keys forces multi-level splits.
        for i in 0..3000u32 {
            bt.insert(&bp, &key_i(7), rid(i)).unwrap();
        }
        // Sprinkle other keys around them.
        for i in 0..200i64 {
            bt.insert(&bp, &key_i(i * 1000), rid(900_000 + i as u32))
                .unwrap();
        }
        assert_eq!(bt.lookup(&bp, &key_i(7)).unwrap().len(), 3000);
        bt.validate(&bp).unwrap();
        // Every duplicate must be individually deletable.
        for i in 0..3000u32 {
            assert!(
                bt.delete(&bp, &key_i(7), rid(i)).unwrap(),
                "duplicate {i} unreachable"
            );
        }
        assert!(bt.lookup(&bp, &key_i(7)).unwrap().is_empty());
        bt.validate(&bp).unwrap();
    }

    #[test]
    fn delete_and_dangling() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..200i64 {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        for i in (0..200i64).step_by(2) {
            assert!(bt.delete(&bp, &key_i(i), rid(i as u32)).unwrap());
        }
        assert!(!bt.delete(&bp, &key_i(0), rid(0)).unwrap());
        assert_eq!(bt.len(), 100);
        for i in 0..200i64 {
            let hit = !bt.lookup(&bp, &key_i(i)).unwrap().is_empty();
            assert_eq!(hit, i % 2 == 1, "key {i}");
        }
        bt.validate(&bp).unwrap();
    }

    #[test]
    fn range_scan_bounds() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..100i64 {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        let collect = |bp: &BufferPool, lo: Bound<i64>, hi: Bound<i64>| -> Vec<u32> {
            let lo_k = match lo {
                Bound::Included(v) => Bound::Included(key_i(v)),
                Bound::Excluded(v) => Bound::Excluded(key_i(v)),
                Bound::Unbounded => Bound::Unbounded,
            };
            let hi_k = match hi {
                Bound::Included(v) => Bound::Included(key_i(v)),
                Bound::Excluded(v) => Bound::Excluded(key_i(v)),
                Bound::Unbounded => Bound::Unbounded,
            };
            let mut out = Vec::new();
            bt.scan_range(
                bp,
                match &lo_k {
                    Bound::Included(k) => Bound::Included(k.as_slice()),
                    Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                    Bound::Unbounded => Bound::Unbounded,
                },
                match &hi_k {
                    Bound::Included(k) => Bound::Included(k.as_slice()),
                    Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
                    Bound::Unbounded => Bound::Unbounded,
                },
                |_, r| {
                    out.push(r.page);
                    true
                },
            )
            .unwrap();
            out
        };
        assert_eq!(
            collect(&bp, Bound::Included(10), Bound::Excluded(13)),
            vec![10, 11, 12]
        );
        assert_eq!(
            collect(&bp, Bound::Excluded(97), Bound::Unbounded),
            vec![98, 99]
        );
        assert_eq!(
            collect(&bp, Bound::Unbounded, Bound::Included(1)),
            vec![0, 1]
        );
    }

    #[test]
    fn prefix_scan_on_composite_keys() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for c0 in 0..5i64 {
            for t in 0..20i64 {
                let k = encode_composite_key(&[Value::Int(c0), Value::Int(t)]);
                bt.insert(&bp, &k, rid((c0 * 100 + t) as u32)).unwrap();
            }
        }
        let prefix = encode_composite_key(&[Value::Int(3)]);
        let hits = bt.lookup_prefix(&bp, &prefix).unwrap();
        assert_eq!(hits.len(), 20);
        for (_, r) in hits {
            assert!((300..320).contains(&r.page));
        }
    }

    #[test]
    fn first_at_or_after() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in [10i64, 20, 30] {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        let (k, r) = bt.first_at_or_after(&bp, &key_i(15)).unwrap().unwrap();
        assert_eq!(k, key_i(20));
        assert_eq!(r.page, 20);
        assert!(bt.first_at_or_after(&bp, &key_i(31)).unwrap().is_none());
    }

    #[test]
    fn lookup_many_agrees_with_singular_lookups() {
        let bp = pool(32);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..4000i64 {
            bt.insert(&bp, &key_i((i * 7919) % 1000), rid(i as u32))
                .unwrap();
        }
        // Sorted probe set with misses, duplicates, and heavy-duplicate
        // keys spanning leaves.
        let probes: Vec<Vec<u8>> = (0..1200i64).step_by(3).map(key_i).collect();
        let batch = bt.lookup_many(&bp, &probes).unwrap();
        for (k, rids) in probes.iter().zip(&batch) {
            let mut single = bt.lookup(&bp, k).unwrap();
            let mut got = rids.clone();
            single.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, single, "mismatch for key {k:?}");
        }
        // Equal neighboring keys are served too.
        let dup = vec![key_i(7), key_i(7), key_i(700)];
        let batch = bt.lookup_many(&bp, &dup).unwrap();
        assert_eq!(batch[0], batch[1]);
        // One ordered pass touches far fewer pages than per-key descents.
        bp.reset_stats();
        bt.lookup_many(&bp, &probes).unwrap();
        let batched = bp.stats().logical_reads;
        bp.reset_stats();
        for k in &probes {
            bt.lookup(&bp, k).unwrap();
        }
        let singular = bp.stats().logical_reads;
        assert!(
            batched * 2 <= singular,
            "batched pass {batched} reads vs {singular} singular"
        );
    }

    #[test]
    fn insert_many_matches_repeated_insert() {
        let bp_a = pool(64);
        let mut a = BTree::create(&bp_a).unwrap();
        let bp_b = pool(64);
        let mut b = BTree::create(&bp_b).unwrap();
        // Pre-populate both identically, then add a large sorted batch
        // (with duplicates of existing pairs) to each via the two paths.
        for i in 0..500i64 {
            a.insert(&bp_a, &key_i(i * 3), rid(i as u32)).unwrap();
            b.insert(&bp_b, &key_i(i * 3), rid(i as u32)).unwrap();
        }
        let mut batch: Vec<(Vec<u8>, Rid)> = (0..3000i64)
            .map(|i| (key_i((i * 31) % 2000), rid(50_000 + i as u32)))
            .collect();
        // Exact duplicates of existing entries must be ignored.
        batch.push((key_i(0), rid(0)));
        batch.push((key_i(3), rid(1)));
        batch.sort_unstable();
        a.insert_many(&bp_a, &batch).unwrap();
        for (k, r) in &batch {
            b.insert(&bp_b, k, *r).unwrap();
        }
        assert_eq!(a.len(), b.len());
        a.validate(&bp_a).unwrap();
        b.validate(&bp_b).unwrap();
        let mut scan_a = Vec::new();
        a.scan_range(&bp_a, Bound::Unbounded, Bound::Unbounded, |k, r| {
            scan_a.push((k.to_vec(), r));
            true
        })
        .unwrap();
        let mut scan_b = Vec::new();
        b.scan_range(&bp_b, Bound::Unbounded, Bound::Unbounded, |k, r| {
            scan_b.push((k.to_vec(), r));
            true
        })
        .unwrap();
        assert_eq!(scan_a, scan_b);
    }

    #[test]
    fn insert_many_into_empty_tree_grows_levels() {
        let bp = pool(128);
        let mut bt = BTree::create(&bp).unwrap();
        // One huge batch from empty: forces multi-way leaf splits and at
        // least one root-growth round in a single call.
        let batch: Vec<(Vec<u8>, Rid)> =
            (0..20_000i64).map(|i| (key_i(i), rid(i as u32))).collect();
        bt.insert_many(&bp, &batch).unwrap();
        assert_eq!(bt.len(), 20_000);
        bt.validate(&bp).unwrap();
        for i in (0..20_000i64).step_by(977) {
            assert_eq!(bt.lookup(&bp, &key_i(i)).unwrap(), vec![rid(i as u32)]);
        }
    }

    #[test]
    fn delete_many_removes_exactly_the_batch() {
        let bp = pool(64);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..2000i64 {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        let mut batch: Vec<(Vec<u8>, Rid)> = (0..2000i64)
            .step_by(2)
            .map(|i| (key_i(i), rid(i as u32)))
            .collect();
        // Misses are counted out, not errors.
        batch.push((key_i(99_999), rid(1)));
        batch.sort_unstable();
        let removed = bt.delete_many(&bp, &batch).unwrap();
        assert_eq!(removed, 1000);
        assert_eq!(bt.len(), 1000);
        bt.validate(&bp).unwrap();
        for i in 0..2000i64 {
            let hit = !bt.lookup(&bp, &key_i(i)).unwrap().is_empty();
            assert_eq!(hit, i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn first_n_at_or_after_walks_in_order() {
        let bp = pool(16);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..100i64 {
            bt.insert(&bp, &key_i(i * 10), rid(i as u32)).unwrap();
        }
        let hits = bt.first_n_at_or_after(&bp, &key_i(55), 4).unwrap();
        let keys: Vec<Vec<u8>> = hits.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![key_i(60), key_i(70), key_i(80), key_i(90)]);
        // Asking past the end returns what exists.
        assert_eq!(
            bt.first_n_at_or_after(&bp, &key_i(985), 10).unwrap().len(),
            1
        );
        assert!(bt
            .first_n_at_or_after(&bp, &key_i(0), 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn survives_tiny_buffer_pool() {
        // Every node access must round-trip through a 2-frame pool.
        let bp = pool(2);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..2000i64 {
            bt.insert(&bp, &key_i(i), rid(i as u32)).unwrap();
        }
        for i in (0..2000i64).step_by(97) {
            assert_eq!(bt.lookup(&bp, &key_i(i)).unwrap(), vec![rid(i as u32)]);
        }
        bt.validate(&bp).unwrap();
        assert!(bp.stats().evictions > 0);
    }

    #[test]
    fn long_string_keys_split_correctly() {
        let bp = pool(32);
        let mut bt = BTree::create(&bp).unwrap();
        for i in 0..300 {
            let k = encode_composite_key(&[Value::Str(format!(
                "http://server-{:03}.example.org/a/very/long/path/segment/page-{i}.html",
                i % 40
            ))]);
            bt.insert(&bp, &k, rid(i)).unwrap();
        }
        assert_eq!(bt.len(), 300);
        bt.validate(&bp).unwrap();
    }
}
