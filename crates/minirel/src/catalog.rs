//! The catalog: tables, their schemas, heap files, and secondary indexes,
//! plus the row-level mutation paths that keep indexes consistent.
//!
//! The paper §3.1: *"Keeping all crawl tables and indices consistent by
//! hand amounted to reinventing the wheel"* — this module is that wheel:
//! every insert/delete/update maintains all of a table's B+tree indexes.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::heap::{HeapFile, Rid};
use crate::schema::Schema;
use crate::value::{decode_row, encode_composite_key, encode_row, Row, Value};

/// Dense table identifier.
pub type TableId = usize;

/// A secondary index over a subset of a table's columns.
#[derive(Debug)]
pub struct IndexInfo {
    /// Index name (unique per database).
    pub name: String,
    /// Indexed column positions, in key order.
    pub cols: Vec<usize>,
    /// The underlying B+tree.
    pub btree: BTree,
}

impl IndexInfo {
    /// Encode the index key for `row`.
    pub fn key_of(&self, row: &[Value]) -> Vec<u8> {
        let vals: Vec<Value> = self.cols.iter().map(|&c| row[c].clone()).collect();
        encode_composite_key(&vals)
    }
}

/// A table: schema + heap file + indexes.
#[derive(Debug)]
pub struct TableInfo {
    /// Table name (lower-cased).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Base data.
    pub heap: HeapFile,
    /// Secondary indexes.
    pub indexes: Vec<IndexInfo>,
}

/// All tables of one database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<TableInfo>,
    by_name: std::collections::HashMap<String, TableId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new table.
    pub fn create_table(
        &mut self,
        pool: &BufferPool,
        name: &str,
        schema: Schema,
    ) -> DbResult<TableId> {
        let name = name.to_ascii_lowercase();
        if self.by_name.contains_key(&name) {
            return Err(DbError::Catalog(format!("table {name} already exists")));
        }
        let heap = HeapFile::create(pool)?;
        let id = self.tables.len();
        self.tables.push(TableInfo {
            name: name.clone(),
            schema,
            heap,
            indexes: Vec::new(),
        });
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Drop a table (its pages are leaked in the file; fine for benches).
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let name = name.to_ascii_lowercase();
        let id = self
            .by_name
            .remove(&name)
            .ok_or_else(|| DbError::Catalog(format!("no table {name}")))?;
        // Keep slot (ids are stable); mark unusable by clearing the name.
        self.tables[id].name = String::new();
        Ok(())
    }

    /// Resolve a table id.
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| DbError::Catalog(format!("no table {name}")))
    }

    /// Table metadata by id.
    pub fn table(&self, id: TableId) -> &TableInfo {
        &self.tables[id]
    }

    /// `(row count, heap pages)` for planner cost estimates. Always
    /// current — the heap tracks both incrementally, so the planner
    /// never works from stale statistics.
    pub fn table_stats(&self, id: TableId) -> (u64, usize) {
        let t = &self.tables[id];
        (t.heap.len(), t.heap.num_pages())
    }

    /// Mutable table metadata by id.
    pub fn table_mut(&mut self, id: TableId) -> &mut TableInfo {
        &mut self.tables[id]
    }

    /// All live table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables
            .iter()
            .filter(|t| !t.name.is_empty())
            .map(|t| t.name.as_str())
            .collect()
    }

    /// Create a B+tree index on `cols` of `table`, backfilling existing rows.
    pub fn create_index(
        &mut self,
        pool: &BufferPool,
        index_name: &str,
        table: &str,
        cols: &[&str],
    ) -> DbResult<()> {
        let tid = self.table_id(table)?;
        let t = &self.tables[tid];
        if t.indexes.iter().any(|i| i.name == index_name) {
            return Err(DbError::Catalog(format!(
                "index {index_name} already exists"
            )));
        }
        let col_idx: Vec<usize> = cols
            .iter()
            .map(|c| {
                t.schema
                    .index_of(c)
                    .ok_or_else(|| DbError::Binding(format!("no column {c} in {table}")))
            })
            .collect::<DbResult<_>>()?;
        let mut btree = BTree::create(pool)?;
        // Backfill: materialize (key, rid) then insert (cannot hold pool
        // borrow across the scan).
        let mut entries: Vec<(Vec<u8>, Rid)> = Vec::new();
        let info = IndexInfo {
            name: index_name.to_owned(),
            cols: col_idx,
            btree: BTree::create(pool)?,
        };
        self.tables[tid].heap.scan(pool, |rid, bytes| {
            if let Ok(row) = decode_row(bytes) {
                entries.push((info.key_of(&row), rid));
            }
        })?;
        for (k, rid) in entries {
            btree.insert(pool, &k, rid)?;
        }
        let mut info = info;
        info.btree = btree;
        self.tables[tid].indexes.push(info);
        Ok(())
    }

    /// Insert a row (validates, widens, maintains indexes).
    pub fn insert_row(&mut self, pool: &BufferPool, tid: TableId, mut row: Row) -> DbResult<Rid> {
        let t = &mut self.tables[tid];
        t.schema.check_row(&mut row)?;
        let rid = t.heap.insert(pool, &encode_row(&row))?;
        for idx in &mut t.indexes {
            let key = idx.key_of(&row);
            idx.btree.insert(pool, &key, rid)?;
        }
        Ok(rid)
    }

    /// Insert many rows in one batch. Heap appends happen row by row,
    /// but every secondary index is then maintained with a single
    /// sorted [`crate::btree::BTree::insert_many`] pass — the batch
    /// write path the crawler's frontier flush rides on.
    pub fn insert_many(
        &mut self,
        pool: &BufferPool,
        tid: TableId,
        rows: Vec<Row>,
    ) -> DbResult<Vec<Rid>> {
        let t = &mut self.tables[tid];
        let mut rows = rows;
        for row in &mut rows {
            t.schema.check_row(row)?;
        }
        let encoded: Vec<Vec<u8>> = rows.iter().map(|row| encode_row(row)).collect();
        let recs: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        let rids = t.heap.insert_many(pool, &recs)?;
        for idx in &mut t.indexes {
            let mut entries: Vec<(Vec<u8>, Rid)> = rows
                .iter()
                .zip(&rids)
                .map(|(row, &rid)| (idx.key_of(row), rid))
                .collect();
            entries.sort_unstable();
            idx.btree.insert_many(pool, &entries)?;
        }
        Ok(rids)
    }

    /// Replace many rows in one batch; index maintenance is two sorted
    /// passes per index (`delete_many` the stale keys, `insert_many`
    /// the new ones) instead of one descent pair per row. Returns each
    /// row's (possibly new) rid, in input order.
    ///
    /// `updates` are `(rid, old_row, new_row)`; `old_row` must be
    /// exactly the row currently stored at `rid`. Callers on the hot
    /// path (the frontier's claim/upsert batches) just read those rows
    /// to decide the update, so taking them here instead of re-fetching
    /// halves the heap traffic of the batch. Rows are validated and
    /// encoded *before* the first heap write, so a schema violation or
    /// oversized row anywhere in the batch mutates nothing.
    pub fn update_many(
        &mut self,
        pool: &BufferPool,
        tid: TableId,
        updates: Vec<(Rid, Row, Row)>,
    ) -> DbResult<Vec<Rid>> {
        let t = &mut self.tables[tid];
        let mut rids = Vec::with_capacity(updates.len());
        let mut old_rows = Vec::with_capacity(updates.len());
        let mut new_rows = Vec::with_capacity(updates.len());
        let mut encoded = Vec::with_capacity(updates.len());
        for (rid, old_row, mut new_row) in updates {
            t.schema.check_row(&mut new_row)?;
            let enc = encode_row(&new_row);
            if enc.len() + 8 > crate::page::PAGE_SIZE {
                return Err(DbError::RecordTooLarge(enc.len()));
            }
            rids.push(rid);
            old_rows.push(old_row);
            new_rows.push(new_row);
            encoded.push(enc);
        }
        let mut new_rids = Vec::with_capacity(rids.len());
        for (&rid, enc) in rids.iter().zip(&encoded) {
            new_rids.push(t.heap.update(pool, rid, enc)?);
        }
        for idx in &mut t.indexes {
            let mut stale: Vec<(Vec<u8>, Rid)> = Vec::new();
            let mut fresh: Vec<(Vec<u8>, Rid)> = Vec::new();
            for (((old_row, new_row), &old_rid), &new_rid) in
                old_rows.iter().zip(&new_rows).zip(&rids).zip(&new_rids)
            {
                let old_key = idx.key_of(old_row);
                let new_key = idx.key_of(new_row);
                if old_key != new_key || new_rid != old_rid {
                    stale.push((old_key, old_rid));
                    fresh.push((new_key, new_rid));
                }
            }
            stale.sort_unstable();
            fresh.sort_unstable();
            idx.btree.delete_many(pool, &stale)?;
            idx.btree.insert_many(pool, &fresh)?;
        }
        Ok(new_rids)
    }

    /// Read the row at `rid`.
    pub fn get_row(&self, pool: &BufferPool, tid: TableId, rid: Rid) -> DbResult<Row> {
        let bytes = self.tables[tid].heap.get(pool, rid)?;
        decode_row(&bytes)
    }

    /// Delete the row at `rid`, removing its index entries.
    pub fn delete_row(&mut self, pool: &BufferPool, tid: TableId, rid: Rid) -> DbResult<()> {
        let row = self.get_row(pool, tid, rid)?;
        let t = &mut self.tables[tid];
        for idx in &mut t.indexes {
            let key = idx.key_of(&row);
            idx.btree.delete(pool, &key, rid)?;
        }
        t.heap.delete(pool, rid)
    }

    /// Replace the row at `rid`; returns the row's (possibly new) rid.
    pub fn update_row(
        &mut self,
        pool: &BufferPool,
        tid: TableId,
        rid: Rid,
        mut new_row: Row,
    ) -> DbResult<Rid> {
        let old_row = self.get_row(pool, tid, rid)?;
        let t = &mut self.tables[tid];
        t.schema.check_row(&mut new_row)?;
        let new_rid = t.heap.update(pool, rid, &encode_row(&new_row))?;
        for idx in &mut t.indexes {
            let old_key = idx.key_of(&old_row);
            let new_key = idx.key_of(&new_row);
            if old_key != new_key || new_rid != rid {
                idx.btree.delete(pool, &old_key, rid)?;
                idx.btree.insert(pool, &new_key, new_rid)?;
            }
        }
        Ok(new_rid)
    }

    /// Materialize rows of a table with only the columns marked in
    /// `keep` decoded (the rest are `Null` placeholders at their
    /// original positions). The scan half of SELECT column pruning:
    /// unreferenced text columns never allocate.
    pub fn scan_rows_pruned(
        &self,
        pool: &BufferPool,
        tid: TableId,
        keep: &[bool],
    ) -> DbResult<Vec<Row>> {
        let mut out = Vec::with_capacity(self.tables[tid].heap.len() as usize);
        let mut err = None;
        self.tables[tid].heap.scan(pool, |_, bytes| {
            match crate::value::decode_row_pruned(bytes, keep) {
                Ok(row) => out.push(row),
                Err(e) => err = Some(e),
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Materialize every row of a table (decoded).
    pub fn scan_table(&self, pool: &BufferPool, tid: TableId) -> DbResult<Vec<(Rid, Row)>> {
        let mut out = Vec::with_capacity(self.tables[tid].heap.len() as usize);
        let mut err = None;
        self.tables[tid]
            .heap
            .scan(pool, |rid, bytes| match decode_row(bytes) {
                Ok(row) => out.push((rid, row)),
                Err(e) => err = Some(e),
            })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Every table slot in id order, **including dropped slots** (empty
    /// name) — the WAL catalog image must preserve slot positions so
    /// `TableId`s stay stable across recovery.
    pub(crate) fn slots(&self) -> &[TableInfo] {
        &self.tables
    }

    /// Rebuild a catalog from decoded slots (recovery / replica apply).
    /// `by_name` is reconstructed; dropped slots keep their position.
    pub(crate) fn from_slots(tables: Vec<TableInfo>) -> Catalog {
        let by_name = tables
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.name.is_empty())
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
        Catalog { tables, by_name }
    }

    /// Find the index (if any) on `table` whose key columns start with `cols`.
    pub fn find_index(&self, tid: TableId, cols: &[usize]) -> Option<usize> {
        self.tables[tid]
            .indexes
            .iter()
            .position(|i| i.cols.len() >= cols.len() && i.cols[..cols.len()] == *cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::EvictionPolicy;
    use crate::disk::DiskManager;
    use crate::schema::ColumnType;

    fn setup() -> (BufferPool, Catalog, TableId) {
        let pool = BufferPool::new(DiskManager::in_memory(), 32, EvictionPolicy::Lru);
        let mut cat = Catalog::new();
        let tid = cat
            .create_table(
                &pool,
                "crawl",
                Schema::new([
                    ("oid", ColumnType::Int),
                    ("url", ColumnType::Str),
                    ("relevance", ColumnType::Float),
                ]),
            )
            .unwrap();
        (pool, cat, tid)
    }

    #[test]
    fn create_and_duplicate_table() {
        let (pool, mut cat, _) = setup();
        assert!(cat
            .create_table(&pool, "CRAWL", Schema::new([("x", ColumnType::Int)]))
            .is_err());
        assert_eq!(cat.table_names(), vec!["crawl"]);
        assert!(cat.table_id("nope").is_err());
    }

    #[test]
    fn insert_and_index_lookup() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "crawl_oid", "crawl", &["oid"])
            .unwrap();
        for i in 0..100i64 {
            cat.insert_row(
                &pool,
                tid,
                vec![
                    Value::Int(i),
                    Value::Str(format!("u{i}")),
                    Value::Float(i as f64 / 100.0),
                ],
            )
            .unwrap();
        }
        let key = encode_composite_key(&[Value::Int(42)]);
        let t = cat.table(tid);
        let rids = t.indexes[0].btree.lookup(&pool, &key).unwrap();
        assert_eq!(rids.len(), 1);
        let row = cat.get_row(&pool, tid, rids[0]).unwrap();
        assert_eq!(row[1], Value::Str("u42".into()));
    }

    #[test]
    fn backfilled_index_matches_fresh_index() {
        let (pool, mut cat, tid) = setup();
        for i in 0..50i64 {
            cat.insert_row(
                &pool,
                tid,
                vec![Value::Int(i), Value::Str("u".into()), Value::Float(0.5)],
            )
            .unwrap();
        }
        // Index created after the fact must see all rows.
        cat.create_index(&pool, "late", "crawl", &["oid"]).unwrap();
        assert_eq!(cat.table(tid).indexes[0].btree.len(), 50);
    }

    #[test]
    fn delete_maintains_indexes() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "byoid", "crawl", &["oid"]).unwrap();
        let rid = cat
            .insert_row(
                &pool,
                tid,
                vec![Value::Int(5), Value::Str("u5".into()), Value::Float(0.1)],
            )
            .unwrap();
        cat.delete_row(&pool, tid, rid).unwrap();
        let key = encode_composite_key(&[Value::Int(5)]);
        assert!(cat.table(tid).indexes[0]
            .btree
            .lookup(&pool, &key)
            .unwrap()
            .is_empty());
        assert!(cat.get_row(&pool, tid, rid).is_err());
    }

    #[test]
    fn update_moves_index_entries() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "byrel", "crawl", &["relevance"])
            .unwrap();
        let rid = cat
            .insert_row(
                &pool,
                tid,
                vec![Value::Int(1), Value::Str("u".into()), Value::Float(0.2)],
            )
            .unwrap();
        let new_rid = cat
            .update_row(
                &pool,
                tid,
                rid,
                vec![Value::Int(1), Value::Str("u".into()), Value::Float(0.9)],
            )
            .unwrap();
        let old_key = encode_composite_key(&[Value::Float(0.2)]);
        let new_key = encode_composite_key(&[Value::Float(0.9)]);
        assert!(cat.table(tid).indexes[0]
            .btree
            .lookup(&pool, &old_key)
            .unwrap()
            .is_empty());
        assert_eq!(
            cat.table(tid).indexes[0]
                .btree
                .lookup(&pool, &new_key)
                .unwrap(),
            vec![new_rid]
        );
    }

    #[test]
    fn insert_many_maintains_all_indexes() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "byoid", "crawl", &["oid"]).unwrap();
        cat.create_index(&pool, "byrel", "crawl", &["relevance"])
            .unwrap();
        let rows: Vec<Row> = (0..200i64)
            .map(|i| {
                vec![
                    Value::Int((i * 37) % 500),
                    Value::Str(format!("u{i}")),
                    Value::Float((i % 10) as f64 / 10.0),
                ]
            })
            .collect();
        let rids = cat.insert_many(&pool, tid, rows.clone()).unwrap();
        assert_eq!(rids.len(), 200);
        for (row, rid) in rows.iter().zip(&rids) {
            let key = encode_composite_key(&[row[0].clone()]);
            let hits = cat.table(tid).indexes[0].btree.lookup(&pool, &key).unwrap();
            assert!(hits.contains(rid), "oid index lost {row:?}");
        }
        assert_eq!(cat.table(tid).indexes[1].btree.len(), 200);
    }

    #[test]
    fn update_many_moves_index_entries() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "byrel", "crawl", &["relevance"])
            .unwrap();
        let mut rids = Vec::new();
        for i in 0..50i64 {
            rids.push(
                cat.insert_row(
                    &pool,
                    tid,
                    vec![Value::Int(i), Value::Str("u".into()), Value::Float(0.2)],
                )
                .unwrap(),
            );
        }
        let updates: Vec<(Rid, Row, Row)> = rids
            .iter()
            .map(|&rid| {
                (
                    rid,
                    cat.get_row(&pool, tid, rid).unwrap(),
                    vec![Value::Int(-1), Value::Str("u".into()), Value::Float(0.9)],
                )
            })
            .collect();
        let new_rids = cat.update_many(&pool, tid, updates).unwrap();
        let old_key = encode_composite_key(&[Value::Float(0.2)]);
        let new_key = encode_composite_key(&[Value::Float(0.9)]);
        assert!(cat.table(tid).indexes[0]
            .btree
            .lookup(&pool, &old_key)
            .unwrap()
            .is_empty());
        let mut hits = cat.table(tid).indexes[0]
            .btree
            .lookup(&pool, &new_key)
            .unwrap();
        hits.sort_unstable();
        let mut want = new_rids.clone();
        want.sort_unstable();
        assert_eq!(hits, want);
        for rid in new_rids {
            assert_eq!(cat.get_row(&pool, tid, rid).unwrap()[0], Value::Int(-1));
        }
    }

    #[test]
    fn batch_mutations_are_all_or_nothing_on_validation_errors() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "byoid", "crawl", &["oid"]).unwrap();
        let rid = cat
            .insert_row(
                &pool,
                tid,
                vec![Value::Int(1), Value::Str("u1".into()), Value::Float(0.1)],
            )
            .unwrap();
        let old = cat.get_row(&pool, tid, rid).unwrap();
        // A schema-violating row *later* in the batch must leave the
        // earlier row untouched in heap AND indexes.
        let res = cat.update_many(
            &pool,
            tid,
            vec![
                (
                    rid,
                    old.clone(),
                    vec![Value::Int(2), Value::Str("u1".into()), Value::Float(0.9)],
                ),
                (
                    rid,
                    old.clone(),
                    vec![Value::Str("not an oid".into()), Value::Null, Value::Null],
                ),
            ],
        );
        assert!(res.is_err());
        assert_eq!(cat.get_row(&pool, tid, rid).unwrap(), old);
        let key = encode_composite_key(&[Value::Int(1)]);
        assert_eq!(
            cat.table(tid).indexes[0].btree.lookup(&pool, &key).unwrap(),
            vec![rid],
            "index must still carry the untouched row"
        );
        // An oversized row anywhere in an insert batch inserts nothing.
        let heap_before = cat.table(tid).heap.len();
        let idx_before = cat.table(tid).indexes[0].btree.len();
        let res = cat.insert_many(
            &pool,
            tid,
            vec![
                vec![Value::Int(5), Value::Str("ok".into()), Value::Float(0.0)],
                vec![
                    Value::Int(6),
                    Value::Str("x".repeat(crate::page::PAGE_SIZE)),
                    Value::Float(0.0),
                ],
            ],
        );
        assert!(matches!(res, Err(DbError::RecordTooLarge(_))));
        assert_eq!(cat.table(tid).heap.len(), heap_before);
        assert_eq!(cat.table(tid).indexes[0].btree.len(), idx_before);
    }

    #[test]
    fn schema_violation_rejected() {
        let (pool, mut cat, tid) = setup();
        assert!(cat
            .insert_row(
                &pool,
                tid,
                vec![Value::Str("no".into()), Value::Null, Value::Null]
            )
            .is_err());
        assert!(cat.insert_row(&pool, tid, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn find_index_prefix_match() {
        let (pool, mut cat, tid) = setup();
        cat.create_index(&pool, "c2", "crawl", &["oid", "relevance"])
            .unwrap();
        assert_eq!(cat.find_index(tid, &[0]), Some(0));
        assert_eq!(cat.find_index(tid, &[0, 2]), Some(0));
        assert_eq!(cat.find_index(tid, &[2]), None);
    }
}
