//! Table schemas: named, typed columns, and row validation.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::fmt;

/// Column type. `Int` covers all of the paper's id/counter columns
/// (64-bit `oid`, 32-bit `tid`, 16-bit `cid`, `numtries`, timestamps);
/// `Float` covers scores and log-probabilities; `Str` covers URLs/names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl ColumnType {
    /// Does `v` inhabit this type? NULL inhabits every type.
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Float, Value::Int(_)) // widening is fine
                | (ColumnType::Str, Value::Str(_))
        )
    }

    /// Parse a SQL type name.
    pub fn parse(name: &str) -> Option<ColumnType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" | "smallint" => Some(ColumnType::Int),
            "float" | "double" | "real" => Some(ColumnType::Float),
            "str" | "text" | "varchar" | "char" => Some(ColumnType::Str),
            _ => None,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "int"),
            ColumnType::Float => write!(f, "float"),
            ColumnType::Str => write!(f, "str"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased column name.
    pub name: String,
    /// Value domain.
    pub ty: ColumnType,
}

impl Column {
    /// Construct (name is lower-cased; SQL identifiers are case-insensitive).
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// Columns in storage order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(cols: impl IntoIterator<Item = (impl Into<String>, ColumnType)>) -> Self {
        Schema {
            columns: cols.into_iter().map(|(n, t)| Column::new(n, t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Validate a row against this schema, widening ints stored in float
    /// columns so downstream arithmetic sees a consistent type.
    #[allow(clippy::ptr_arg)] // callers hold Vec rows; arity check needs len anyway
    pub fn check_row(&self, row: &mut Vec<Value>) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::Schema(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter_mut().zip(&self.columns) {
            if !c.ty.admits(v) {
                return Err(DbError::Schema(format!(
                    "value {v} does not fit column {} of type {}",
                    c.name, c.ty
                )));
            }
            if c.ty == ColumnType::Float {
                if let Value::Int(i) = v {
                    *v = Value::Float(*i as f64);
                }
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (join output shape).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crawl_schema() -> Schema {
        Schema::new([
            ("oid", ColumnType::Int),
            ("url", ColumnType::Str),
            ("relevance", ColumnType::Float),
        ])
    }

    #[test]
    fn index_is_case_insensitive() {
        let s = crawl_schema();
        assert_eq!(s.index_of("OID"), Some(0));
        assert_eq!(s.index_of("Relevance"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn check_row_validates_and_widens() {
        let s = crawl_schema();
        let mut ok = vec![Value::Int(7), Value::Str("u".into()), Value::Int(1)];
        s.check_row(&mut ok).unwrap();
        assert_eq!(ok[2], Value::Float(1.0)); // widened
        let mut bad_arity = vec![Value::Int(7)];
        assert!(s.check_row(&mut bad_arity).is_err());
        let mut bad_type = vec![Value::Str("x".into()), Value::Str("u".into()), Value::Null];
        assert!(s.check_row(&mut bad_type).is_err());
        let mut nulls = vec![Value::Null, Value::Null, Value::Null];
        s.check_row(&mut nulls).unwrap(); // NULL inhabits every type
    }

    #[test]
    fn type_parsing() {
        assert_eq!(ColumnType::parse("BIGINT"), Some(ColumnType::Int));
        assert_eq!(ColumnType::parse("double"), Some(ColumnType::Float));
        assert_eq!(ColumnType::parse("varchar"), Some(ColumnType::Str));
        assert_eq!(ColumnType::parse("blob"), None);
    }

    #[test]
    fn join_concatenates() {
        let j = crawl_schema().join(&Schema::new([("score", ColumnType::Float)]));
        assert_eq!(j.arity(), 4);
        assert_eq!(j.index_of("score"), Some(3));
    }
}
