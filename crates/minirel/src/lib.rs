//! # minirel
//!
//! A small, from-scratch relational engine standing in for the IBM DB2 UDB
//! instance of the paper ("Distributed Hypertext Resource Discovery Through
//! Examples", VLDB 1999). It provides exactly the machinery the paper's
//! I/O-efficiency arguments rest on:
//!
//! * slotted-page **heap files** over a 4 KB paged file,
//! * a **buffer pool** with a configurable frame count, LRU/clock eviction
//!   and physical/logical I/O counters (the paper's Figure 8(b) sweeps the
//!   DB2 buffer pool; we sweep this one),
//! * **B+tree** secondary indexes (the `PROBE` path of `SingleProbe`),
//! * relational operators: scans, filters, **external sort**, sort-merge /
//!   hash / nested-loop joins, **left outer merge join** (the one-inner-one-
//!   outer-join rewrite of Figure 3), and group-by aggregation,
//! * a **SQL subset** (lexer → parser → planner → executor) large enough to
//!   run every statement printed in the paper: the `BulkProbe` CTE query of
//!   Figure 3, the distillation statements of Figure 4, and the ad-hoc
//!   monitoring queries of §3.7.
//!
//! * a **write-ahead log** ([`wal`]) with redo-on-open crash recovery
//!   ([`recovery`]), group commit, incremental checkpoints, and
//!   WAL-shipping read [`Replica`]s — the durability the paper gets for
//!   free from DB2, reproduced so a days-long crawl survives a crash and
//!   monitors can read a follower instead of the authoritative store.
//!
//! Durability is opt-in per database ([`Database::open`] /
//! [`Database::in_memory_durable`]); the plain in-memory constructors
//! stay crash-simple for the access-path experiments. All page traffic
//! flows through the buffer pool so that physical-read counters are
//! meaningful and machine-independent.
//!
//! ## Quick start
//!
//! ```
//! use minirel::{Database, Value};
//!
//! let mut db = Database::in_memory();
//! db.execute("create table crawl (oid int, relevance float, numtries int)").unwrap();
//! db.execute("insert into crawl (oid, relevance, numtries) values (1, 0.9, 0)").unwrap();
//! db.execute("insert into crawl (oid, relevance, numtries) values (2, 0.1, 3)").unwrap();
//! let rs = db.execute("select oid from crawl where relevance > 0.5").unwrap();
//! assert_eq!(rs.rows.len(), 1);
//! assert_eq!(rs.rows[0][0], Value::Int(1));
//! ```

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod disk;
pub mod error;
pub mod exec;
pub mod heap;
pub mod page;
pub mod recovery;
pub mod schema;
pub mod sql;
pub mod value;
pub mod wal;

pub use buffer::{BufferPool, EvictionPolicy, IoStats};
pub use catalog::{Catalog, IndexInfo, TableId, TableInfo};
pub use db::{wal_path_for, Database, Prepared, ResultSet};
pub use error::{DbError, DbResult};
pub use heap::Rid;
pub use recovery::Replica;
pub use schema::{Column, ColumnType, Schema};
pub use sql::ExecPlan;
pub use value::Value;
pub use wal::{Wal, DEFAULT_GROUP_COMMIT};
