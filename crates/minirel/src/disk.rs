//! The backing store for pages: a real file or an in-memory vector.
//!
//! The buffer pool talks to this and *only* this; its physical-read /
//! physical-write counters count calls into `DiskManager`. The in-memory
//! backend exists so tests and CI are hermetic, while the file backend is
//! used by benchmarks that want OS-level I/O too. Counter behaviour is
//! identical for both.

use crate::error::{DbError, DbResult};
use crate::page::{PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

enum Backend {
    Memory(Vec<Box<[u8; PAGE_SIZE]>>),
    File {
        file: File,
        path: PathBuf,
        delete_on_drop: bool,
        num_pages: u32,
    },
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Backend,
}

impl DiskManager {
    /// Pages live in process memory (hermetic tests, CI).
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Backend::Memory(Vec::new()),
        }
    }

    /// Pages live in the file at `path` (created/truncated).
    pub fn at_path(path: &Path) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                delete_on_drop: false,
                num_pages: 0,
            },
        })
    }

    /// Pages live in a unique temp file removed on drop.
    pub fn temp() -> DbResult<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "minirel-{}-{}-{n}.db",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let mut dm = Self::at_path(&path)?;
        if let Backend::File { delete_on_drop, .. } = &mut dm.backend {
            *delete_on_drop = true;
        }
        Ok(dm)
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        match &self.backend {
            Backend::Memory(v) => v.len() as u32,
            Backend::File { num_pages, .. } => *num_pages,
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&mut self) -> DbResult<PageId> {
        match &mut self.backend {
            Backend::Memory(v) => {
                v.push(Box::new([0u8; PAGE_SIZE]));
                Ok((v.len() - 1) as PageId)
            }
            Backend::File {
                file, num_pages, ..
            } => {
                let id = *num_pages;
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                file.write_all(&[0u8; PAGE_SIZE])?;
                *num_pages += 1;
                Ok(id)
            }
        }
    }

    /// Read page `id` into `buf`.
    pub fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        match &mut self.backend {
            Backend::Memory(v) => {
                let page = v
                    .get(id as usize)
                    .ok_or_else(|| DbError::Page(format!("page {id} not allocated")))?;
                buf.copy_from_slice(&page[..]);
                Ok(())
            }
            Backend::File {
                file, num_pages, ..
            } => {
                if id >= *num_pages {
                    return Err(DbError::Page(format!("page {id} not allocated")));
                }
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                file.read_exact(buf)?;
                Ok(())
            }
        }
    }

    /// Write `buf` to page `id`.
    pub fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        match &mut self.backend {
            Backend::Memory(v) => {
                let page = v
                    .get_mut(id as usize)
                    .ok_or_else(|| DbError::Page(format!("page {id} not allocated")))?;
                page.copy_from_slice(buf);
                Ok(())
            }
            Backend::File {
                file, num_pages, ..
            } => {
                if id >= *num_pages {
                    return Err(DbError::Page(format!("page {id} not allocated")));
                }
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
                file.write_all(buf)?;
                Ok(())
            }
        }
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if let Backend::File {
            path,
            delete_on_drop: true,
            ..
        } = &self.backend
        {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut dm: DiskManager) {
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(dm.num_pages(), 2);
        let mut wbuf = [0u8; PAGE_SIZE];
        wbuf[0] = 0xAB;
        wbuf[PAGE_SIZE - 1] = 0xCD;
        dm.write(b, &wbuf).unwrap();
        let mut rbuf = [0u8; PAGE_SIZE];
        dm.read(b, &mut rbuf).unwrap();
        assert_eq!(rbuf[0], 0xAB);
        assert_eq!(rbuf[PAGE_SIZE - 1], 0xCD);
        dm.read(a, &mut rbuf).unwrap();
        assert!(rbuf.iter().all(|&x| x == 0), "fresh page must be zeroed");
        assert!(dm.read(99, &mut rbuf).is_err());
        assert!(dm.write(99, &wbuf).is_err());
    }

    #[test]
    fn memory_backend() {
        exercise(DiskManager::in_memory());
    }

    #[test]
    fn file_backend_and_cleanup() {
        let dm = DiskManager::temp().unwrap();
        let path = match &dm.backend {
            Backend::File { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        exercise(dm);
        // dm dropped by exercise()
        assert!(!path.exists(), "temp file should be removed on drop");
    }
}
