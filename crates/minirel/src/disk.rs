//! The backing store for pages: a real file or an in-memory vector.
//!
//! The buffer pool talks to this and *only* this; its physical-read /
//! physical-write counters count calls into `DiskManager`. The in-memory
//! backend exists so tests and CI are hermetic, while the file backend is
//! used by benchmarks that want OS-level I/O too. Counter behaviour is
//! identical for both.
//!
//! File-backed managers are **durable-safe**: opening an existing file
//! never truncates it (`num_pages` is recovered from the file length),
//! and every I/O error surfaces as a [`DbError::Io`] carrying the
//! operation and path, so a failed `sync` is never silently swallowed.

use crate::error::{DbError, DbResult};
use crate::page::{PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

enum Backend {
    Memory(Vec<Box<[u8; PAGE_SIZE]>>),
    File {
        file: File,
        path: PathBuf,
        delete_on_drop: bool,
        num_pages: u32,
    },
}

/// Allocates, reads and writes fixed-size pages.
pub struct DiskManager {
    backend: Backend,
}

impl DiskManager {
    /// Pages live in process memory (hermetic tests, CI).
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Backend::Memory(Vec::new()),
        }
    }

    /// Pages live in the file at `path`, **created if absent, reopened if
    /// present** — an existing file's pages survive and `num_pages` is
    /// recovered from the file length. A trailing partial page (torn
    /// final write) is excluded from the page count rather than read as
    /// garbage.
    pub fn at_path(path: &Path) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| DbError::io("open", path, e))?;
        let len = file
            .metadata()
            .map_err(|e| DbError::io("stat", path, e))?
            .len();
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                delete_on_drop: false,
                num_pages,
            },
        })
    }

    /// Pages live in the file at `path`, created fresh (any existing
    /// content is truncated). The explicit "start over" constructor;
    /// [`DiskManager::at_path`] reopens.
    pub fn create_at_path(path: &Path) -> DbResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| DbError::io("create", path, e))?;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                delete_on_drop: false,
                num_pages: 0,
            },
        })
    }

    /// Pages live in a unique temp file removed on drop.
    pub fn temp() -> DbResult<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "minirel-{}-{}-{n}.db",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let mut dm = Self::create_at_path(&path)?;
        if let Backend::File { delete_on_drop, .. } = &mut dm.backend {
            *delete_on_drop = true;
        }
        Ok(dm)
    }

    /// Path of the backing file, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        match &self.backend {
            Backend::Memory(_) => None,
            Backend::File { path, .. } => Some(path),
        }
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        match &self.backend {
            Backend::Memory(v) => v.len() as u32,
            Backend::File { num_pages, .. } => *num_pages,
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&mut self) -> DbResult<PageId> {
        match &mut self.backend {
            Backend::Memory(v) => {
                v.push(Box::new([0u8; PAGE_SIZE]));
                Ok((v.len() - 1) as PageId)
            }
            Backend::File {
                file,
                path,
                num_pages,
                ..
            } => {
                let id = *num_pages;
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
                    .map_err(|e| DbError::io("seek", &path, e))?;
                file.write_all(&[0u8; PAGE_SIZE])
                    .map_err(|e| DbError::io("extend", &path, e))?;
                *num_pages += 1;
                Ok(id)
            }
        }
    }

    /// Read page `id` into `buf`.
    pub fn read(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        match &mut self.backend {
            Backend::Memory(v) => {
                let page = v
                    .get(id as usize)
                    .ok_or_else(|| DbError::Page(format!("page {id} not allocated")))?;
                buf.copy_from_slice(&page[..]);
                Ok(())
            }
            Backend::File {
                file,
                path,
                num_pages,
                ..
            } => {
                if id >= *num_pages {
                    return Err(DbError::Page(format!("page {id} not allocated")));
                }
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
                    .map_err(|e| DbError::io("seek", &path, e))?;
                file.read_exact(buf)
                    .map_err(|e| DbError::io("read", &path, e))?;
                Ok(())
            }
        }
    }

    /// Write `buf` to page `id`.
    pub fn write(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        match &mut self.backend {
            Backend::Memory(v) => {
                let page = v
                    .get_mut(id as usize)
                    .ok_or_else(|| DbError::Page(format!("page {id} not allocated")))?;
                page.copy_from_slice(buf);
                Ok(())
            }
            Backend::File {
                file,
                path,
                num_pages,
                ..
            } => {
                if id >= *num_pages {
                    return Err(DbError::Page(format!("page {id} not allocated")));
                }
                file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
                    .map_err(|e| DbError::io("seek", &path, e))?;
                file.write_all(buf)
                    .map_err(|e| DbError::io("write", &path, e))?;
                Ok(())
            }
        }
    }

    /// Write `buf` to page `id`, zero-extending the store first if `id`
    /// lies beyond the current allocation. The WAL-replay entry point:
    /// recovery installs committed page images into a data file that may
    /// be shorter than the log's view of it (the crash beat the
    /// extension write).
    pub fn write_ensure(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        while self.num_pages() <= id {
            self.allocate()?;
        }
        self.write(id, buf)
    }

    /// Flush OS buffers to stable storage. A no-op for the memory
    /// backend; for files, a failed `fsync` surfaces as [`DbError::Io`]
    /// instead of being dropped.
    pub fn sync_all(&mut self) -> DbResult<()> {
        match &mut self.backend {
            Backend::Memory(_) => Ok(()),
            Backend::File { file, path, .. } => {
                file.sync_all().map_err(|e| DbError::io("sync", &path, e))
            }
        }
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if let Backend::File {
            path,
            delete_on_drop: true,
            ..
        } = &self.backend
        {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut dm: DiskManager) {
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(dm.num_pages(), 2);
        let mut wbuf = [0u8; PAGE_SIZE];
        wbuf[0] = 0xAB;
        wbuf[PAGE_SIZE - 1] = 0xCD;
        dm.write(b, &wbuf).unwrap();
        let mut rbuf = [0u8; PAGE_SIZE];
        dm.read(b, &mut rbuf).unwrap();
        assert_eq!(rbuf[0], 0xAB);
        assert_eq!(rbuf[PAGE_SIZE - 1], 0xCD);
        dm.read(a, &mut rbuf).unwrap();
        assert!(rbuf.iter().all(|&x| x == 0), "fresh page must be zeroed");
        assert!(dm.read(99, &mut rbuf).is_err());
        assert!(dm.write(99, &wbuf).is_err());
        dm.sync_all().unwrap();
    }

    #[test]
    fn memory_backend() {
        exercise(DiskManager::in_memory());
    }

    #[test]
    fn file_backend_and_cleanup() {
        let dm = DiskManager::temp().unwrap();
        let path = match &dm.backend {
            Backend::File { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        exercise(dm);
        // dm dropped by exercise()
        assert!(!path.exists(), "temp file should be removed on drop");
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("minirel-reopen-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut dm = DiskManager::at_path(&path).unwrap();
            assert_eq!(dm.num_pages(), 0, "fresh file starts empty");
            let p0 = dm.allocate().unwrap();
            let p1 = dm.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[17] = 0x5A;
            dm.write(p0, &buf).unwrap();
            buf[17] = 0xA5;
            dm.write(p1, &buf).unwrap();
            dm.sync_all().unwrap();
        }
        {
            // Reopen: pages and their bytes must survive.
            let mut dm = DiskManager::at_path(&path).unwrap();
            assert_eq!(dm.num_pages(), 2, "reopen must recover the page count");
            let mut buf = [0u8; PAGE_SIZE];
            dm.read(0, &mut buf).unwrap();
            assert_eq!(buf[17], 0x5A);
            dm.read(1, &mut buf).unwrap();
            assert_eq!(buf[17], 0xA5);
            // And keep growing from where it left off.
            assert_eq!(dm.allocate().unwrap(), 2);
        }
        {
            // create_at_path is the explicit wipe.
            let dm = DiskManager::create_at_path(&path).unwrap();
            assert_eq!(dm.num_pages(), 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trailing_partial_page_is_not_counted() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("minirel-torn-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, vec![7u8; PAGE_SIZE + 100]).unwrap();
        let dm = DiskManager::at_path(&path).unwrap();
        assert_eq!(dm.num_pages(), 1, "torn tail must not count as a page");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_ensure_extends() {
        let mut dm = DiskManager::in_memory();
        let buf = [9u8; PAGE_SIZE];
        dm.write_ensure(4, &buf).unwrap();
        assert_eq!(dm.num_pages(), 5);
        let mut rbuf = [0u8; PAGE_SIZE];
        dm.read(4, &mut rbuf).unwrap();
        assert_eq!(rbuf[0], 9);
        dm.read(0, &mut rbuf).unwrap();
        assert!(rbuf.iter().all(|&x| x == 0));
    }
}
