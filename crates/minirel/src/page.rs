//! Fixed-size pages and the slotted-page layout.
//!
//! Every on-disk structure (heap files, B+trees, external-sort runs) is
//! built from 4 KB pages — the same unit DB2's buffer pool manages — so
//! that buffer-pool frame counts and physical I/O counters are comparable
//! with the paper's Figure 8(b).
//!
//! Slotted layout:
//!
//! ```text
//! +-------------+-------------+---------+----------------------+
//! | n_slots u16 | free_end u16| slots.. |  ...gap...  records  |
//! +-------------+-------------+---------+----------------------+
//! ```
//!
//! Slots grow forward from the 4-byte header, record bodies grow backward
//! from the end of the page. A slot is `(offset u16, len u16)`; a deleted
//! slot has `offset == 0` and may be reused by later inserts.

use crate::error::{DbError, DbResult};

/// Page size in bytes (DB2 default page size of the era).
pub const PAGE_SIZE: usize = 4096;

/// Page identifier within one paged file.
pub type PageId = u32;

/// Sentinel "no page".
pub const INVALID_PAGE: PageId = u32::MAX;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Read-only view over a slotted page.
pub struct SlottedRef<'a>(pub &'a [u8]);

/// Mutable view over a slotted page.
pub struct SlottedMut<'a>(pub &'a mut [u8]);

#[inline]
fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

#[inline]
fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

impl<'a> SlottedRef<'a> {
    /// Number of slots ever allocated on this page (including deleted).
    pub fn slot_count(&self) -> u16 {
        get_u16(self.0, 0)
    }

    /// Record bytes for `slot`, or `None` if the slot is deleted/out of range.
    pub fn record(&self, slot: u16) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let base = HEADER + slot as usize * SLOT;
        let off = get_u16(self.0, base) as usize;
        let len = get_u16(self.0, base + 2) as usize;
        if off == 0 {
            return None;
        }
        Some(&self.0[off..off + len])
    }

    /// Iterate `(slot, record)` over live records.
    pub fn records(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        let n = self.slot_count();
        (0..n).filter_map(move |s| self.record(s).map(|r| (s, r)))
    }

    /// Contiguous free bytes available for one more record (incl. its slot).
    pub fn free_space(&self) -> usize {
        let n = self.slot_count() as usize;
        let free_end = get_u16(self.0, 2) as usize;
        let slots_end = HEADER + n * SLOT;
        free_end.saturating_sub(slots_end)
    }
}

impl<'a> SlottedMut<'a> {
    /// Initialize an empty slotted page.
    pub fn init(&mut self) {
        put_u16(self.0, 0, 0);
        put_u16(self.0, 2, PAGE_SIZE as u16);
    }

    fn as_ref(&self) -> SlottedRef<'_> {
        SlottedRef(self.0)
    }

    /// Can a record of `len` bytes be inserted?
    pub fn fits(&self, len: usize) -> bool {
        // Worst case needs a fresh slot entry plus the record body.
        self.as_ref().free_space() >= len + SLOT
    }

    /// Insert a record; returns its slot. Fails when the page is full.
    pub fn insert(&mut self, rec: &[u8]) -> DbResult<u16> {
        if rec.len() + HEADER + SLOT > PAGE_SIZE {
            return Err(DbError::RecordTooLarge(rec.len()));
        }
        let n = get_u16(self.0, 0);
        // Reuse a deleted slot when possible (keeps slot ids dense-ish).
        let mut slot = n;
        for s in 0..n {
            if get_u16(self.0, HEADER + s as usize * SLOT) == 0 {
                slot = s;
                break;
            }
        }
        let new_slot = slot == n;
        let needed = rec.len() + if new_slot { SLOT } else { 0 };
        if self.as_ref().free_space() < needed {
            return Err(DbError::Page("page full".into()));
        }
        let free_end = get_u16(self.0, 2) as usize;
        let off = free_end - rec.len();
        self.0[off..free_end].copy_from_slice(rec);
        put_u16(self.0, 2, off as u16);
        let base = HEADER + slot as usize * SLOT;
        put_u16(self.0, base, off as u16);
        put_u16(self.0, base + 2, rec.len() as u16);
        if new_slot {
            put_u16(self.0, 0, n + 1);
        }
        Ok(slot)
    }

    /// Delete the record in `slot` (tombstones the slot; space within the
    /// body region is not compacted — heap files trade space for simplicity,
    /// matching the era's storage managers between reorgs).
    pub fn delete(&mut self, slot: u16) -> DbResult<()> {
        let n = get_u16(self.0, 0);
        if slot >= n {
            return Err(DbError::Page(format!("slot {slot} out of range")));
        }
        let base = HEADER + slot as usize * SLOT;
        if get_u16(self.0, base) == 0 {
            return Err(DbError::Page(format!("slot {slot} already deleted")));
        }
        put_u16(self.0, base, 0);
        put_u16(self.0, base + 2, 0);
        Ok(())
    }

    /// Overwrite `slot` in place when the new record is no longer than the
    /// old one; returns `false` when it does not fit (caller relocates).
    pub fn update_in_place(&mut self, slot: u16, rec: &[u8]) -> DbResult<bool> {
        let n = get_u16(self.0, 0);
        if slot >= n {
            return Err(DbError::Page(format!("slot {slot} out of range")));
        }
        let base = HEADER + slot as usize * SLOT;
        let off = get_u16(self.0, base) as usize;
        let len = get_u16(self.0, base + 2) as usize;
        if off == 0 {
            return Err(DbError::Page(format!("slot {slot} deleted")));
        }
        if rec.len() > len {
            return Ok(false);
        }
        self.0[off..off + rec.len()].copy_from_slice(rec);
        put_u16(self.0, base + 2, rec.len() as u16);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        SlottedMut(&mut buf).init();
        buf
    }

    #[test]
    fn insert_read_delete_cycle() {
        let mut buf = fresh();
        let s0 = SlottedMut(&mut buf).insert(b"hello").unwrap();
        let s1 = SlottedMut(&mut buf).insert(b"world!").unwrap();
        assert_ne!(s0, s1);
        assert_eq!(SlottedRef(&buf).record(s0).unwrap(), b"hello");
        assert_eq!(SlottedRef(&buf).record(s1).unwrap(), b"world!");
        SlottedMut(&mut buf).delete(s0).unwrap();
        assert!(SlottedRef(&buf).record(s0).is_none());
        assert_eq!(SlottedRef(&buf).records().count(), 1);
        // Deleted slot is reused.
        let s2 = SlottedMut(&mut buf).insert(b"xy").unwrap();
        assert_eq!(s2, s0);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut buf = fresh();
        let rec = [7u8; 100];
        let mut inserted = 0;
        loop {
            if !SlottedMut(&mut buf).fits(rec.len()) {
                break;
            }
            SlottedMut(&mut buf).insert(&rec).unwrap();
            inserted += 1;
        }
        // 4096 / (100 + 4 slot) ≈ 39
        assert!(inserted >= 35, "only {inserted} records fit");
        assert!(SlottedMut(&mut buf).insert(&rec).is_err());
        // All still readable.
        assert_eq!(SlottedRef(&buf).records().count(), inserted);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut buf = fresh();
        let too_big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            SlottedMut(&mut buf).insert(&too_big),
            Err(DbError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn update_in_place_only_when_fits() {
        let mut buf = fresh();
        let s = SlottedMut(&mut buf).insert(b"0123456789").unwrap();
        assert!(SlottedMut(&mut buf).update_in_place(s, b"abc").unwrap());
        assert_eq!(SlottedRef(&buf).record(s).unwrap(), b"abc");
        assert!(!SlottedMut(&mut buf)
            .update_in_place(s, b"longer than before")
            .unwrap());
        // Unchanged after failed grow.
        assert_eq!(SlottedRef(&buf).record(s).unwrap(), b"abc");
    }

    #[test]
    fn delete_errors() {
        let mut buf = fresh();
        assert!(SlottedMut(&mut buf).delete(0).is_err());
        let s = SlottedMut(&mut buf).insert(b"x").unwrap();
        SlottedMut(&mut buf).delete(s).unwrap();
        assert!(SlottedMut(&mut buf).delete(s).is_err());
    }
}
