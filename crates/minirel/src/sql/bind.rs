//! Name resolution: SQL identifiers → positional references.
//!
//! This is the layer both engines share. The planner ([`super::plan`]) and
//! the reference interpreter ([`super::reference`]) must resolve
//! `[qualifier.]name` to the same column index, agree on which conjuncts
//! are pushable into a single source, and prune the same columns from base
//! table scans — otherwise the planner-equivalence suite could not compare
//! them row for row. Everything here is pure: no I/O, no catalog access,
//! no subquery evaluation.
//!
//! **Contract.** A relation's shape is a `Vec<BoundCol>`; [`resolve_col`]
//! is the single source of truth for name lookup (first match wins on
//! same-named self-join columns). [`bindable`] answers "could this
//! expression be bound against exactly these columns" without side
//! effects, which is what predicate pushdown keys off. [`gather_cols`]
//! over-approximates the set of referenced column names for scan pruning
//! (`None` = a `*` somewhere needs everything). [`equi_keys`] extracts
//! equi-join key pairs, rejecting columns that resolve ambiguously on
//! both sides.

use crate::error::{DbError, DbResult};
use crate::exec::agg::AggKind;
use crate::exec::expr::BinOp;
use crate::sql::ast::*;
use std::collections::HashSet;

/// A named output column of an intermediate relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundCol {
    /// Binding qualifier (table alias / CTE name); `None` for computed.
    pub qualifier: Option<String>,
    /// Column name (lower-cased).
    pub name: String,
}

/// Resolve `[qualifier.]name` against `cols`.
pub fn resolve_col(cols: &[BoundCol], qualifier: Option<&str>, name: &str) -> DbResult<usize> {
    let hits: Vec<usize> = cols
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            c.name == name
                && match qualifier {
                    Some(q) => c.qualifier.as_deref() == Some(q),
                    None => true,
                }
        })
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [i] => Ok(*i),
        [] => Err(DbError::Binding(format!(
            "unknown column {}{name} (available: {})",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
            cols.iter()
                .map(|c| match &c.qualifier {
                    Some(q) => format!("{q}.{}", c.name),
                    None => c.name.clone(),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ))),
        // Same-named columns from a self-join: first match wins, like the
        // paper's DB2 queries that rely on unambiguous names.
        many => Ok(many[0]),
    }
}

/// Can `e` be fully bound against `cols`? (No side effects.)
pub fn bindable(e: &AstExpr, cols: &[BoundCol]) -> bool {
    match e {
        AstExpr::Column { qualifier, name } => {
            resolve_col(cols, qualifier.as_deref(), name).is_ok()
        }
        AstExpr::Int(_)
        | AstExpr::Float(_)
        | AstExpr::Str(_)
        | AstExpr::Null
        | AstExpr::CurrentTimestamp
        | AstExpr::Param(_) => true,
        AstExpr::Bin(_, l, r) => bindable(l, cols) && bindable(r, cols),
        AstExpr::Neg(x) | AstExpr::Not(x) => bindable(x, cols),
        AstExpr::IsNull { expr, .. } => bindable(expr, cols),
        AstExpr::InList { expr, .. } => bindable(expr, cols),
        AstExpr::InSubquery { expr, .. } => bindable(expr, cols),
        AstExpr::ScalarSubquery(_) => true,
        AstExpr::Call { name, args, .. } => {
            AggKind::parse(name).is_none() && args.iter().all(|a| bindable(a, cols))
        }
    }
}

/// Column names referenced anywhere in a statement, for scan pruning.
/// `None` means "needs every column" (a `*` projection somewhere).
/// Over-approximates freely — names are collected unqualified and
/// across subqueries — because pruning an extra column is a correctness
/// bug while keeping one is only a few wasted nanoseconds.
pub fn gather_cols(sel: &SelectStmt) -> Option<HashSet<String>> {
    fn walk_expr(e: &AstExpr, out: &mut HashSet<String>) -> bool {
        match e {
            AstExpr::Column { name, .. } => {
                out.insert(name.clone());
                true
            }
            AstExpr::Int(_)
            | AstExpr::Float(_)
            | AstExpr::Str(_)
            | AstExpr::Null
            | AstExpr::CurrentTimestamp
            | AstExpr::Param(_) => true,
            AstExpr::Bin(_, l, r) => walk_expr(l, out) && walk_expr(r, out),
            AstExpr::Neg(x) | AstExpr::Not(x) => walk_expr(x, out),
            AstExpr::IsNull { expr, .. } => walk_expr(expr, out),
            AstExpr::InList { expr, list, .. } => {
                walk_expr(expr, out) && list.iter().all(|x| walk_expr(x, out))
            }
            AstExpr::InSubquery { expr, query, .. } => walk_expr(expr, out) && walk_sel(query, out),
            AstExpr::ScalarSubquery(q) => walk_sel(q, out),
            AstExpr::Call { args, .. } => args.iter().all(|a| walk_expr(a, out)),
        }
    }
    fn walk_sel(sel: &SelectStmt, out: &mut HashSet<String>) -> bool {
        for cte in &sel.ctes {
            if !walk_sel(&cte.query, out) {
                return false;
            }
        }
        for p in &sel.projections {
            match p {
                Projection::Star => return false,
                Projection::Expr { expr, .. } => {
                    if !walk_expr(expr, out) {
                        return false;
                    }
                }
            }
        }
        for fc in &sel.from {
            if let Some(on) = &fc.on {
                if !walk_expr(on, out) {
                    return false;
                }
            }
        }
        if let Some(w) = &sel.where_ {
            if !walk_expr(w, out) {
                return false;
            }
        }
        for g in &sel.group_by {
            if !walk_expr(g, out) {
                return false;
            }
        }
        for (e, _) in &sel.order_by {
            if !walk_expr(e, out) {
                return false;
            }
        }
        true
    }
    let mut out = HashSet::new();
    walk_sel(sel, &mut out).then_some(out)
}

/// Extract equi-join key pairs from `conjuncts` connecting `left` and
/// `right` bindings. Returns (used conjunct indexes, left cols, right cols).
pub fn equi_keys(
    conjuncts: &[AstExpr],
    left: &[BoundCol],
    right: &[BoundCol],
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut used = Vec::new();
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        if let AstExpr::Bin(BinOp::Eq, a, b) = c {
            let try_pair = |x: &AstExpr, y: &AstExpr| -> Option<(usize, usize)> {
                let (xq, xn) = match x {
                    AstExpr::Column { qualifier, name } => (qualifier.as_deref(), name),
                    _ => return None,
                };
                let (yq, yn) = match y {
                    AstExpr::Column { qualifier, name } => (qualifier.as_deref(), name),
                    _ => return None,
                };
                let li = resolve_col(left, xq, xn).ok()?;
                // x must NOT be resolvable on the right under its qualifier,
                // unless it is qualified and clearly belongs to the left.
                let rj = resolve_col(right, yq, yn).ok()?;
                if resolve_col(right, xq, xn).is_ok() && xq.is_none() {
                    return None; // ambiguous side
                }
                if resolve_col(left, yq, yn).is_ok() && yq.is_none() {
                    return None;
                }
                Some((li, rj))
            };
            if let Some((li, rj)) = try_pair(a, b).or_else(|| try_pair(b, a)) {
                used.push(i);
                lk.push(li);
                rk.push(rj);
            }
        }
    }
    (used, lk, rk)
}

/// Replace a bare column that names a projection alias with the projection's
/// defining expression (ORDER BY `cnt` where `cnt` aliases `count(oid)`).
pub fn dealias(e: &AstExpr, aliases: &[(Option<String>, AstExpr)]) -> AstExpr {
    if let AstExpr::Column {
        qualifier: None,
        name,
    } = e
    {
        for (alias, def) in aliases {
            if alias.as_deref() == Some(name.as_str()) {
                return def.clone();
            }
        }
    }
    e.clone()
}

/// Output column name of a projection: alias, else source name, else `colN`.
pub fn output_name(expr: &AstExpr, alias: Option<&String>, i: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match expr {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::Call { name, .. } => name.clone(),
        _ => format!("col{i}"),
    }
}

/// Loose structural equality used to match projections against GROUP BY
/// expressions: qualifiers may be omitted on one side.
pub fn ast_eq_loose(a: &AstExpr, b: &AstExpr) -> bool {
    match (a, b) {
        (
            AstExpr::Column {
                qualifier: qa,
                name: na,
            },
            AstExpr::Column {
                qualifier: qb,
                name: nb,
            },
        ) => na == nb && (qa == qb || qa.is_none() || qb.is_none()),
        (AstExpr::Bin(oa, la, ra), AstExpr::Bin(ob, lb, rb)) => {
            oa == ob && ast_eq_loose(la, lb) && ast_eq_loose(ra, rb)
        }
        (AstExpr::Neg(xa), AstExpr::Neg(xb)) | (AstExpr::Not(xa), AstExpr::Not(xb)) => {
            ast_eq_loose(xa, xb)
        }
        (
            AstExpr::Call {
                name: na,
                args: aa,
                star: sa,
            },
            AstExpr::Call {
                name: nb,
                args: ab,
                star: sb,
            },
        ) => {
            na == nb
                && sa == sb
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| ast_eq_loose(x, y))
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(specs: &[(&str, &str)]) -> Vec<BoundCol> {
        specs
            .iter()
            .map(|(q, n)| BoundCol {
                qualifier: (!q.is_empty()).then(|| (*q).to_owned()),
                name: (*n).to_owned(),
            })
            .collect()
    }

    #[test]
    fn resolve_prefers_first_match_and_honors_qualifier() {
        let cs = cols(&[("a", "x"), ("b", "x"), ("b", "y")]);
        assert_eq!(resolve_col(&cs, None, "x").unwrap(), 0);
        assert_eq!(resolve_col(&cs, Some("b"), "x").unwrap(), 1);
        assert_eq!(resolve_col(&cs, None, "y").unwrap(), 2);
        assert!(resolve_col(&cs, Some("c"), "x").is_err());
    }

    #[test]
    fn params_are_bindable_anywhere() {
        let e = AstExpr::Bin(
            BinOp::Eq,
            Box::new(AstExpr::Column {
                qualifier: None,
                name: "x".into(),
            }),
            Box::new(AstExpr::Param(0)),
        );
        assert!(bindable(&e, &cols(&[("t", "x")])));
        assert!(!bindable(&e, &cols(&[("t", "y")])));
    }

    #[test]
    fn gather_cols_sees_through_params() {
        let stmt =
            crate::sql::parser::parse_statement("select a from t where b = ? and c > 1").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected select")
        };
        let names = gather_cols(&sel).unwrap();
        assert!(names.contains("a") && names.contains("b") && names.contains("c"));
    }
}
