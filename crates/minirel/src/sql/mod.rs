//! SQL front-end: lexer → parser → binder/planner/runner.
//!
//! The dialect is sized to the paper: every statement printed in Figures
//! 3–4 and §3.7 parses and runs (see `sql::parser` tests for the verbatim
//! texts).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod run;

pub use ast::{AstExpr, InsertSource, SelectStmt, Statement};
pub use parser::{parse_script, parse_statement};
pub use run::{run_select, run_statement, BoundCol, Relation, SqlCtx, StmtResult};
