//! SQL front-end: lexer → parser → binder → planner → lowering → executor.
//!
//! The dialect is sized to the paper: every statement printed in Figures
//! 3–4 and §3.7 parses and runs (see `sql::parser` tests for the verbatim
//! texts).
//!
//! Two engines share the parser and binder:
//!
//! * the staged pipeline ([`bind`] → [`plan`] → [`lower`]) serves all
//!   SELECTs — it pushes predicates into scans, prunes columns, reorders
//!   equi-joins, picks B+tree access paths, and produces cacheable
//!   [`lower::ExecPlan`]s for prepared statements;
//! * the reference interpreter ([`reference`]) runs DML/DDL and doubles
//!   as the correctness oracle the planner-equivalence suite compares
//!   the pipeline against.

pub mod ast;
pub mod bind;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod plan;
pub mod reference;

pub use ast::{AstExpr, InsertSource, SelectStmt, Statement};
pub use bind::BoundCol;
pub use lower::{execute_plan, prepare_plan, ExecPlan};
pub use parser::{parse_script, parse_statement};
pub use reference::{run_select, run_statement, Relation, SqlCtx, StmtResult};
