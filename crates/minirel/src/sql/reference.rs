//! The reference interpreter: bind-and-evaluate execution of parsed
//! statements.
//!
//! SELECTs normally run through the staged planner ([`super::plan`] →
//! [`super::lower`]); this module is the original one-pass engine, kept
//! for two jobs:
//!
//! * **DML.** INSERT/UPDATE/DELETE (and DDL) still bind and evaluate
//!   here — their read phases are tiny and their subtle points (e.g. an
//!   UPDATE's scalar subquery seeing pre-update state) are encoded in
//!   this code.
//! * **Oracle.** The planner-equivalence suite runs every generated
//!   query through both engines and compares row multisets, so this
//!   interpreter is the executable spec the planner is tested against.
//!
//! Its planning is deliberately simple but covers the shapes the paper's
//! SQL needs: CTEs materialize in order (Figure 3); equi-joins run as
//! sort-merge through the external sorter; single-relation predicates
//! are pushed below joins; uncorrelated IN subqueries materialize to
//! value lists; uncorrelated scalar subqueries evaluate once at bind
//! time; aggregation rewrites projections over GROUP BY outputs.
//!
//! Prepared-statement parameters (`?`) are *not* supported here — only
//! planned queries take parameters, so this engine reports a binding
//! error when it meets one.

use crate::buffer::BufferPool;
use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::exec::agg::{aggregate, AggCall, AggKind};
use crate::exec::expr::{Expr, Func, UnOp};
use crate::exec::join::{merge_join_inner, merge_join_left_outer, nested_loop_join};
use crate::exec::sort::{external_sort, SortKey};
use crate::sql::ast::*;
use crate::sql::bind::{
    ast_eq_loose, bindable, dealias, equi_keys, gather_cols, output_name, resolve_col, BoundCol,
};
use crate::value::{Row, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// A materialized intermediate relation.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Output columns.
    pub cols: Vec<BoundCol>,
    /// Rows.
    pub rows: Vec<Row>,
}

/// Execution context for the **read-only** half of the engine: SELECT
/// binding, planning, and evaluation. Holds shared borrows only, so a
/// SELECT can run from `&Database` concurrently with other readers
/// (mutating statements go through [`run_statement`], which owns the
/// `&mut Catalog` and builds read contexts for its scan/bind phases).
pub struct SqlCtx<'a> {
    /// Buffer pool (all I/O flows through it; interior-mutable, `&self`).
    pub pool: &'a BufferPool,
    /// Table catalog (shared: reads only).
    pub catalog: &'a Catalog,
    /// Session clock for `current timestamp` (seconds).
    pub current_timestamp: i64,
    /// External-sort memory budget in rows.
    pub sort_budget_rows: usize,
    /// In-scope CTE results.
    pub ctes: HashMap<String, Rc<Relation>>,
}

impl<'a> SqlCtx<'a> {
    /// A fresh context with an empty CTE scope.
    pub fn new(
        pool: &'a BufferPool,
        catalog: &'a Catalog,
        current_timestamp: i64,
        sort_budget_rows: usize,
    ) -> SqlCtx<'a> {
        SqlCtx {
            pool,
            catalog,
            current_timestamp,
            sort_budget_rows,
            ctes: HashMap::new(),
        }
    }
}

/// Result of running one statement.
pub enum StmtResult {
    /// SELECT output.
    Rows(Relation),
    /// Row count for DML.
    Affected(u64),
    /// DDL.
    Done,
}

/// Run a parsed statement. DML/DDL takes the catalog exclusively; the
/// read phases (binding, subqueries, table scans) run through a shared
/// [`SqlCtx`] reborrowed from it, and mutations are applied afterwards.
pub fn run_statement(
    pool: &BufferPool,
    catalog: &mut Catalog,
    current_timestamp: i64,
    sort_budget_rows: usize,
    stmt: &Statement,
) -> DbResult<StmtResult> {
    match stmt {
        Statement::Select(q) => {
            let mut ctx = SqlCtx::new(pool, catalog, current_timestamp, sort_budget_rows);
            Ok(StmtResult::Rows(run_select(&mut ctx, q)?))
        }
        Statement::CreateTable { name, cols } => {
            let schema = crate::schema::Schema::new(cols.iter().map(|(n, t)| (n.clone(), *t)));
            catalog.create_table(pool, name, schema)?;
            Ok(StmtResult::Done)
        }
        Statement::CreateIndex { name, table, cols } => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            catalog.create_index(pool, name, table, &refs)?;
            Ok(StmtResult::Done)
        }
        Statement::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(StmtResult::Done)
        }
        Statement::Insert {
            table,
            cols,
            source,
        } => run_insert(
            pool,
            catalog,
            current_timestamp,
            sort_budget_rows,
            table,
            cols,
            source,
        ),
        Statement::Update {
            table,
            sets,
            where_,
        } => run_update(
            pool,
            catalog,
            current_timestamp,
            sort_budget_rows,
            table,
            sets,
            where_.as_ref(),
        ),
        Statement::Delete { table, where_ } => run_delete(
            pool,
            catalog,
            current_timestamp,
            sort_budget_rows,
            table,
            where_.as_ref(),
        ),
        // EXPLAIN is a planner artifact; the interpreter has no plan to show.
        Statement::Explain(_) => Err(DbError::Binding(
            "EXPLAIN requires the planner (run it through Database::query)".into(),
        )),
    }
}

// ---------------------------------------------------------------- binding

fn bind(ctx: &mut SqlCtx<'_>, e: &AstExpr, cols: &[BoundCol]) -> DbResult<Expr> {
    match e {
        AstExpr::Column { qualifier, name } => {
            let i = resolve_col(cols, qualifier.as_deref(), name)?;
            Ok(Expr::Col(i))
        }
        AstExpr::Int(i) => Ok(Expr::Lit(Value::Int(*i))),
        AstExpr::Float(f) => Ok(Expr::Lit(Value::Float(*f))),
        AstExpr::Str(s) => Ok(Expr::Lit(Value::Str(s.clone()))),
        AstExpr::Null => Ok(Expr::Lit(Value::Null)),
        AstExpr::CurrentTimestamp => Ok(Expr::Lit(Value::Int(ctx.current_timestamp))),
        AstExpr::Bin(op, l, r) => Ok(Expr::bin(*op, bind(ctx, l, cols)?, bind(ctx, r, cols)?)),
        AstExpr::Neg(x) => Ok(Expr::Un(UnOp::Neg, Box::new(bind(ctx, x, cols)?))),
        AstExpr::Not(x) => Ok(Expr::Un(UnOp::Not, Box::new(bind(ctx, x, cols)?))),
        AstExpr::IsNull { expr, negated } => {
            Ok(Expr::IsNull(Box::new(bind(ctx, expr, cols)?), *negated))
        }
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            let bound = bind(ctx, expr, cols)?;
            let mut vals = Vec::with_capacity(list.len());
            for item in list {
                let le = bind(ctx, item, &[])?;
                vals.push(le.eval(&vec![])?);
            }
            Ok(Expr::InList(Box::new(bound), vals, *negated))
        }
        AstExpr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let bound = bind(ctx, expr, cols)?;
            let rel = run_select(ctx, query)?;
            if rel.cols.len() != 1 {
                return Err(DbError::Binding(
                    "IN subquery must produce exactly one column".into(),
                ));
            }
            let vals: Vec<Value> = rel.rows.into_iter().map(|mut r| r.remove(0)).collect();
            Ok(Expr::InList(Box::new(bound), vals, *negated))
        }
        AstExpr::ScalarSubquery(query) => {
            let rel = run_select(ctx, query)?;
            if rel.cols.len() != 1 {
                return Err(DbError::Binding(
                    "scalar subquery must produce exactly one column".into(),
                ));
            }
            let v = match rel.rows.len() {
                0 => Value::Null,
                1 => rel.rows[0][0].clone(),
                n => {
                    return Err(DbError::Binding(format!(
                        "scalar subquery produced {n} rows"
                    )))
                }
            };
            Ok(Expr::Lit(v))
        }
        AstExpr::Call { name, args, star } => {
            if *star || AggKind::parse(name).is_some() {
                return Err(DbError::Binding(format!(
                    "aggregate {name}() is not allowed in this context"
                )));
            }
            let f = Func::parse(name)
                .ok_or_else(|| DbError::Binding(format!("unknown function {name}()")))?;
            let bound: Vec<Expr> = args
                .iter()
                .map(|a| bind(ctx, a, cols))
                .collect::<DbResult<_>>()?;
            Ok(Expr::Call(f, bound))
        }
        AstExpr::Param(i) => Err(DbError::Binding(format!(
            "parameter ?{} requires a prepared statement (use query_with)",
            i + 1
        ))),
    }
}

// ---------------------------------------------------------------- select

/// Run a SELECT (CTE scope handled here).
pub fn run_select(ctx: &mut SqlCtx<'_>, sel: &SelectStmt) -> DbResult<Relation> {
    let saved = ctx.ctes.clone();
    let result = (|| {
        for cte in &sel.ctes {
            let mut rel = run_select(ctx, &cte.query)?;
            if !cte.cols.is_empty() {
                if cte.cols.len() != rel.cols.len() {
                    return Err(DbError::Binding(format!(
                        "CTE {} declares {} columns but query produces {}",
                        cte.name,
                        cte.cols.len(),
                        rel.cols.len()
                    )));
                }
                rel.cols = cte
                    .cols
                    .iter()
                    .map(|n| BoundCol {
                        qualifier: Some(cte.name.clone()),
                        name: n.clone(),
                    })
                    .collect();
            } else {
                for c in &mut rel.cols {
                    c.qualifier = Some(cte.name.clone());
                }
            }
            ctx.ctes.insert(cte.name.clone(), Rc::new(rel));
        }
        run_select_body(ctx, sel)
    })();
    ctx.ctes = saved;
    result
}

fn load_source(
    ctx: &mut SqlCtx<'_>,
    item: &FromItem,
    wanted: Option<&std::collections::HashSet<String>>,
) -> DbResult<Relation> {
    let binding = item.binding_name().to_ascii_lowercase();
    if let Some(rel) = ctx.ctes.get(&item.table) {
        let mut r = (**rel).clone();
        for c in &mut r.cols {
            c.qualifier = Some(binding.clone());
        }
        return Ok(r);
    }
    let tid = ctx.catalog.table_id(&item.table)?;
    let cols: Vec<BoundCol> = ctx
        .catalog
        .table(tid)
        .schema
        .columns
        .iter()
        .map(|c| BoundCol {
            qualifier: Some(binding.clone()),
            name: c.name.clone(),
        })
        .collect();
    let rows: Vec<Row> = match wanted {
        // Column pruning: decode only the referenced columns of a base
        // table; the rest stay Null placeholders nothing will read.
        Some(names) => {
            let keep: Vec<bool> = cols.iter().map(|c| names.contains(&c.name)).collect();
            ctx.catalog.scan_rows_pruned(ctx.pool, tid, &keep)?
        }
        None => ctx
            .catalog
            .scan_table(ctx.pool, tid)?
            .into_iter()
            .map(|(_, r)| r)
            .collect(),
    };
    Ok(Relation { cols, rows })
}

fn join_relations(
    ctx: &mut SqlCtx<'_>,
    left: Relation,
    right: Relation,
    lk: &[usize],
    rk: &[usize],
    outer: bool,
) -> DbResult<Relation> {
    let cols: Vec<BoundCol> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
    // Pad unmatched left rows to the right side's declared arity — taking
    // the width from the first right row mispads when the right side is
    // empty.
    let right_arity = right.cols.len();
    let budget = ctx.sort_budget_rows;
    let lkeys: Vec<SortKey> = lk.iter().map(|&i| SortKey::asc(i)).collect();
    let rkeys: Vec<SortKey> = rk.iter().map(|&i| SortKey::asc(i)).collect();
    let ls = external_sort(ctx.pool, left.rows, &lkeys, budget)?;
    let rs = external_sort(ctx.pool, right.rows, &rkeys, budget)?;
    let rows = if outer {
        merge_join_left_outer(&ls, &rs, lk, rk, right_arity)?
    } else {
        merge_join_inner(&ls, &rs, lk, rk)?
    };
    Ok(Relation { cols, rows })
}

fn filter_rel(ctx: &mut SqlCtx<'_>, rel: &mut Relation, pred: &AstExpr) -> DbResult<()> {
    let e = bind(ctx, pred, &rel.cols)?;
    let mut kept = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        if e.eval(&row)?.is_truthy() {
            kept.push(row);
        }
    }
    rel.rows = kept;
    Ok(())
}

fn run_select_body(ctx: &mut SqlCtx<'_>, sel: &SelectStmt) -> DbResult<Relation> {
    // ----- FROM + WHERE (join graph) -----
    let wanted = gather_cols(sel);
    let mut where_conjuncts: Vec<AstExpr> = sel
        .where_
        .clone()
        .map(AstExpr::conjuncts)
        .unwrap_or_default();
    let mut consumed = vec![false; where_conjuncts.len()];

    let mut acc: Relation = if sel.from.is_empty() {
        Relation {
            cols: vec![],
            rows: vec![vec![]],
        }
    } else {
        load_source(ctx, &sel.from[0].item, wanted.as_ref())?
    };

    // Pending comma-joined sources with single-source pushdown applied.
    let mut pending: Vec<Relation> = Vec::new();
    #[allow(clippy::type_complexity)]
    let apply_pushdown = |ctx: &mut SqlCtx<'_>,
                          rel: &mut Relation,
                          conjs: &mut Vec<AstExpr>,
                          consumed: &mut Vec<bool>|
     -> DbResult<()> {
        for (i, c) in conjs.iter().enumerate() {
            if !consumed[i] && bindable(c, &rel.cols) {
                consumed[i] = true;
                filter_rel(ctx, rel, c)?;
            }
        }
        Ok(())
    };
    apply_pushdown(ctx, &mut acc, &mut where_conjuncts, &mut consumed)?;

    for fc in sel.from.iter().skip(1) {
        match fc.kind {
            JoinKind::Cross => {
                let mut rel = load_source(ctx, &fc.item, wanted.as_ref())?;
                apply_pushdown(ctx, &mut rel, &mut where_conjuncts, &mut consumed)?;
                pending.push(rel);
            }
            JoinKind::Inner | JoinKind::LeftOuter => {
                let mut rel = load_source(ctx, &fc.item, wanted.as_ref())?;
                if fc.kind == JoinKind::Inner {
                    apply_pushdown(ctx, &mut rel, &mut where_conjuncts, &mut consumed)?;
                }
                let on = fc
                    .on
                    .clone()
                    .ok_or_else(|| DbError::Binding("JOIN requires an ON predicate".into()))?;
                let on_conj = on.clone().conjuncts();
                let (used, lk, rk) = equi_keys(&on_conj, &acc.cols, &rel.cols);
                if used.len() == on_conj.len() && !lk.is_empty() {
                    acc = join_relations(ctx, acc, rel, &lk, &rk, fc.kind == JoinKind::LeftOuter)?;
                } else {
                    // Non-equi ON: nested loop over the concatenation.
                    let cols: Vec<BoundCol> =
                        acc.cols.iter().chain(rel.cols.iter()).cloned().collect();
                    let pred = bind(ctx, &on, &cols)?;
                    let rows = nested_loop_join(
                        &acc.rows,
                        &rel.rows,
                        &pred,
                        fc.kind == JoinKind::LeftOuter,
                    )?;
                    acc = Relation { cols, rows };
                }
            }
        }
    }

    // Greedily join pending comma sources using WHERE equi conjuncts.
    // (pending index, consumed conjunct ids, left keys, right keys)
    type JoinChoice = (usize, Vec<usize>, Vec<usize>, Vec<usize>);
    while !pending.is_empty() {
        let mut chosen: Option<JoinChoice> = None;
        let unconsumed: Vec<AstExpr> = where_conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed[*i])
            .map(|(_, c)| c.clone())
            .collect();
        let unconsumed_idx: Vec<usize> = (0..where_conjuncts.len())
            .filter(|i| !consumed[*i])
            .collect();
        for (pi, rel) in pending.iter().enumerate() {
            let (used, lk, rk) = equi_keys(&unconsumed, &acc.cols, &rel.cols);
            if !lk.is_empty() {
                let global_used: Vec<usize> = used.iter().map(|&u| unconsumed_idx[u]).collect();
                chosen = Some((pi, global_used, lk, rk));
                break;
            }
        }
        match chosen {
            Some((pi, used, lk, rk)) => {
                let rel = pending.remove(pi);
                for u in used {
                    consumed[u] = true;
                }
                acc = join_relations(ctx, acc, rel, &lk, &rk, false)?;
            }
            None => {
                // True cartesian product (small dimension tables only, e.g.
                // DOCLEN × TAXONOMY in Figure 3).
                let rel = pending.remove(0);
                let cols: Vec<BoundCol> = acc.cols.iter().chain(rel.cols.iter()).cloned().collect();
                let pred = Expr::Lit(Value::Int(1));
                let rows = nested_loop_join(&acc.rows, &rel.rows, &pred, false)?;
                acc = Relation { cols, rows };
            }
        }
    }

    // Residual WHERE conjuncts.
    for i in 0..where_conjuncts.len() {
        if !consumed[i] {
            let c = where_conjuncts[i].clone();
            filter_rel(ctx, &mut acc, &c)?;
        }
    }

    // ----- aggregation or plain projection -----
    let has_agg = !sel.group_by.is_empty()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => expr.has_aggregate(),
            Projection::Star => false,
        });

    let aliases: Vec<(Option<String>, AstExpr)> = sel
        .projections
        .iter()
        .filter_map(|p| match p {
            Projection::Expr { expr, alias } => Some((alias.clone(), expr.clone())),
            Projection::Star => None,
        })
        .collect();

    let (mut rows, proj_exprs, out_cols) = if has_agg {
        // Bind group exprs and collect aggregates from projections.
        let mut aggs: Vec<AggCall> = Vec::new();
        let group_bound: Vec<Expr> = sel
            .group_by
            .iter()
            .map(|g| bind(ctx, g, &acc.cols))
            .collect::<DbResult<_>>()?;
        let mut proj_exprs = Vec::new();
        let mut out_cols = Vec::new();
        for (i, p) in sel.projections.iter().enumerate() {
            match p {
                Projection::Star => {
                    return Err(DbError::Binding(
                        "SELECT * is not allowed with GROUP BY/aggregates".into(),
                    ))
                }
                Projection::Expr { expr, alias } => {
                    let e = rewrite_agg(ctx, expr, &sel.group_by, &acc.cols, &mut aggs)?;
                    proj_exprs.push(e);
                    out_cols.push(BoundCol {
                        qualifier: None,
                        name: output_name(expr, alias.as_ref(), i),
                    });
                }
            }
        }
        // ORDER BY binding in aggregate context.
        let order_keys: Vec<SortKey> = sel
            .order_by
            .iter()
            .map(|(e, desc)| {
                let target = dealias(e, &aliases);
                let bound = rewrite_agg(ctx, &target, &sel.group_by, &acc.cols, &mut aggs)?;
                Ok(SortKey {
                    expr: bound,
                    desc: *desc,
                })
            })
            .collect::<DbResult<_>>()?;
        let agg_rows = aggregate(&acc.rows, &group_bound, &aggs)?;
        let sorted = if order_keys.is_empty() {
            agg_rows
        } else {
            external_sort(ctx.pool, agg_rows, &order_keys, ctx.sort_budget_rows)?
        };
        (sorted, proj_exprs, out_cols)
    } else {
        // Plain projection; ORDER BY binds against the input (aliases
        // resolve to their defining expressions).
        let order_keys: Vec<SortKey> = sel
            .order_by
            .iter()
            .map(|(e, desc)| {
                let target = dealias(e, &aliases);
                Ok(SortKey {
                    expr: bind(ctx, &target, &acc.cols)?,
                    desc: *desc,
                })
            })
            .collect::<DbResult<_>>()?;
        let sorted = if order_keys.is_empty() {
            acc.rows
        } else {
            external_sort(ctx.pool, acc.rows, &order_keys, ctx.sort_budget_rows)?
        };
        let mut proj_exprs = Vec::new();
        let mut out_cols = Vec::new();
        for (i, p) in sel.projections.iter().enumerate() {
            match p {
                Projection::Star => {
                    for (j, c) in acc.cols.iter().enumerate() {
                        proj_exprs.push(Expr::Col(j));
                        out_cols.push(c.clone());
                    }
                }
                Projection::Expr { expr, alias } => {
                    proj_exprs.push(bind(ctx, expr, &acc.cols)?);
                    out_cols.push(BoundCol {
                        qualifier: None,
                        name: output_name(expr, alias.as_ref(), i),
                    });
                }
            }
        }
        (sorted, proj_exprs, out_cols)
    };

    if let Some(n) = sel.limit {
        rows.truncate(n as usize);
    }

    let mut out_rows = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            out.push(e.eval(row)?);
        }
        out_rows.push(out);
    }

    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| seen.insert(r.clone()));
    }

    Ok(Relation {
        cols: out_cols,
        rows: out_rows,
    })
}

/// Rewrite a projection/order expression in aggregate context into an
/// expression over `[group values ++ aggregate results]`.
fn rewrite_agg(
    ctx: &mut SqlCtx<'_>,
    e: &AstExpr,
    group_by: &[AstExpr],
    input: &[BoundCol],
    aggs: &mut Vec<AggCall>,
) -> DbResult<Expr> {
    // Whole expression equals a group expression?
    for (i, g) in group_by.iter().enumerate() {
        if ast_eq_loose(e, g) {
            return Ok(Expr::Col(i));
        }
    }
    match e {
        AstExpr::Call { name, args, star } => {
            if let Some(kind) = AggKind::parse(name) {
                let kind = if *star { AggKind::CountStar } else { kind };
                let arg = if *star {
                    Expr::Lit(Value::Int(1))
                } else {
                    if args.len() != 1 {
                        return Err(DbError::Binding(format!(
                            "{name}() takes exactly one argument"
                        )));
                    }
                    bind(ctx, &args[0], input)?
                };
                let idx = group_by.len() + aggs.len();
                aggs.push(AggCall { kind, arg });
                return Ok(Expr::Col(idx));
            }
            let f = Func::parse(name)
                .ok_or_else(|| DbError::Binding(format!("unknown function {name}()")))?;
            let rewritten: Vec<Expr> = args
                .iter()
                .map(|a| rewrite_agg(ctx, a, group_by, input, aggs))
                .collect::<DbResult<_>>()?;
            Ok(Expr::Call(f, rewritten))
        }
        AstExpr::Bin(op, l, r) => Ok(Expr::bin(
            *op,
            rewrite_agg(ctx, l, group_by, input, aggs)?,
            rewrite_agg(ctx, r, group_by, input, aggs)?,
        )),
        AstExpr::Neg(x) => Ok(Expr::Un(
            UnOp::Neg,
            Box::new(rewrite_agg(ctx, x, group_by, input, aggs)?),
        )),
        AstExpr::Not(x) => Ok(Expr::Un(
            UnOp::Not,
            Box::new(rewrite_agg(ctx, x, group_by, input, aggs)?),
        )),
        AstExpr::Int(_)
        | AstExpr::Float(_)
        | AstExpr::Str(_)
        | AstExpr::Null
        | AstExpr::CurrentTimestamp
        | AstExpr::ScalarSubquery(_) => bind(ctx, e, &[]),
        AstExpr::Column { qualifier, name } => Err(DbError::Binding(format!(
            "column {}{name} must appear in GROUP BY or inside an aggregate",
            qualifier
                .as_deref()
                .map(|q| format!("{q}."))
                .unwrap_or_default()
        ))),
        other => Err(DbError::Binding(format!(
            "unsupported expression in aggregate context: {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------- DML

#[allow(clippy::too_many_arguments)]
fn run_insert(
    pool: &BufferPool,
    catalog: &mut Catalog,
    current_timestamp: i64,
    sort_budget_rows: usize,
    table: &str,
    cols: &[String],
    source: &InsertSource,
) -> DbResult<StmtResult> {
    let tid = catalog.table_id(table)?;
    let arity = catalog.table(tid).schema.arity();
    let positions: Vec<usize> = if cols.is_empty() {
        (0..arity).collect()
    } else {
        cols.iter()
            .map(|c| {
                catalog
                    .table(tid)
                    .schema
                    .index_of(c)
                    .ok_or_else(|| DbError::Binding(format!("no column {c} in {table}")))
            })
            .collect::<DbResult<_>>()?
    };
    // Read phase: evaluate the source rows (VALUES expressions may hold
    // scalar subqueries; INSERT..SELECT is a full query) against a
    // shared-borrow context, before any mutation.
    let source_rows: Vec<Row> = {
        let mut ctx = SqlCtx::new(pool, catalog, current_timestamp, sort_budget_rows);
        match source {
            InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut row = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        let bound = bind(&mut ctx, e, &[])?;
                        row.push(bound.eval(&vec![])?);
                    }
                    out.push(row);
                }
                out
            }
            InsertSource::Select(q) => run_select(&mut ctx, q)?.rows,
        }
    };
    let mut n = 0u64;
    for src in source_rows {
        if src.len() != positions.len() {
            return Err(DbError::Schema(format!(
                "INSERT provides {} values for {} columns",
                src.len(),
                positions.len()
            )));
        }
        let mut row = vec![Value::Null; arity];
        for (v, &p) in src.into_iter().zip(&positions) {
            row[p] = v;
        }
        catalog.insert_row(pool, tid, row)?;
        n += 1;
    }
    Ok(StmtResult::Affected(n))
}

fn table_cols(catalog: &Catalog, tid: crate::catalog::TableId, name: &str) -> Vec<BoundCol> {
    catalog
        .table(tid)
        .schema
        .columns
        .iter()
        .map(|c| BoundCol {
            qualifier: Some(name.to_owned()),
            name: c.name.clone(),
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_update(
    pool: &BufferPool,
    catalog: &mut Catalog,
    current_timestamp: i64,
    sort_budget_rows: usize,
    table: &str,
    sets: &[(String, AstExpr)],
    where_: Option<&AstExpr>,
) -> DbResult<StmtResult> {
    let tid = catalog.table_id(table)?;
    // Read phase: bind SET expressions and the predicate (both may hold
    // subqueries), scan the table, and compute every new row — all
    // against shared borrows, then apply.
    let updates =
        {
            let mut ctx = SqlCtx::new(pool, catalog, current_timestamp, sort_budget_rows);
            let cols = table_cols(ctx.catalog, tid, table);
            let set_bound: Vec<(usize, Expr)> =
                sets.iter()
                    .map(|(c, e)| {
                        let pos =
                            ctx.catalog.table(tid).schema.index_of(c).ok_or_else(|| {
                                DbError::Binding(format!("no column {c} in {table}"))
                            })?;
                        Ok((pos, bind(&mut ctx, e, &cols)?))
                    })
                    .collect::<DbResult<Vec<_>>>()?;
            let pred = where_.map(|w| bind(&mut ctx, w, &cols)).transpose()?;
            let all = ctx.catalog.scan_table(ctx.pool, tid)?;
            let mut updates = Vec::new();
            for (rid, row) in all {
                let hit = match &pred {
                    Some(p) => p.eval(&row)?.is_truthy(),
                    None => true,
                };
                if hit {
                    let mut new_row = row.clone();
                    for (pos, e) in &set_bound {
                        new_row[*pos] = e.eval(&row)?;
                    }
                    updates.push((rid, new_row));
                }
            }
            updates
        };
    let n = updates.len() as u64;
    for (rid, new_row) in updates {
        catalog.update_row(pool, tid, rid, new_row)?;
    }
    Ok(StmtResult::Affected(n))
}

fn run_delete(
    pool: &BufferPool,
    catalog: &mut Catalog,
    current_timestamp: i64,
    sort_budget_rows: usize,
    table: &str,
    where_: Option<&AstExpr>,
) -> DbResult<StmtResult> {
    let tid = catalog.table_id(table)?;
    let victims = {
        let mut ctx = SqlCtx::new(pool, catalog, current_timestamp, sort_budget_rows);
        let cols = table_cols(ctx.catalog, tid, table);
        let pred = where_.map(|w| bind(&mut ctx, w, &cols)).transpose()?;
        let all = ctx.catalog.scan_table(ctx.pool, tid)?;
        let mut victims = Vec::new();
        for (rid, row) in all {
            let hit = match &pred {
                Some(p) => p.eval(&row)?.is_truthy(),
                None => true,
            };
            if hit {
                victims.push(rid);
            }
        }
        victims
    };
    let n = victims.len() as u64;
    for rid in victims {
        catalog.delete_row(pool, tid, rid)?;
    }
    Ok(StmtResult::Affected(n))
}
