//! Lowering and execution: logical plan → physical plan → rows.
//!
//! [`prepare_plan`] turns a parsed SELECT into an [`ExecPlan`]: an
//! immutable, `Send + Sync` physical operator tree that can be cached and
//! re-executed with different parameter bindings. Lowering is where
//! access paths are chosen — a [`Phys::SeqScan`] becomes a
//! [`Phys::IndexScan`] when a B+tree covers the pushed-down predicates
//! and the cost model (rows × selectivity vs. heap pages) says the probe
//! is cheaper than the scan — and where equi-joins pick between
//! sort-merge and nested-loop by estimated input cardinality.
//!
//! **Execution contract.** Plans keep parameters (`?`), `current
//! timestamp`, and subquery results symbolic. [`execute_plan`]
//! *specializes* each operator's expressions — substituting
//! [`Expr::Param`]/[`Expr::Now`]/[`Expr::SubScalar`]/[`Expr::InSub`]
//! leaves with literals — and then runs the same operator kernels
//! ([`external_sort`], the merge joins, [`aggregate`]) the reference
//! interpreter uses. Uncorrelated subqueries and CTEs are (re-)executed
//! on every call, so a cached plan observes source-table mutations,
//! fresh parameters, and clock updates.
//!
//! **Row-order contract.** Index probes collect rids, sort them, and
//! fetch page-grouped ([`crate::heap::HeapFile::get_many`]), so eq/range/
//! IN probes return rows in heap order — byte-identical to what the
//! interpreter's sequential scan produces. The single accepted
//! divergence is the index-only scan, which returns rows in key order.

use crate::buffer::BufferPool;
use crate::catalog::{Catalog, TableId};
use crate::error::{DbError, DbResult};
use crate::exec::agg::{aggregate, AggCall};
use crate::exec::expr::{BinOp, Expr};
use crate::exec::join::{merge_join_inner, merge_join_left_outer, nested_loop_join};
use crate::exec::sort::{external_sort, SortKey};
use crate::heap::Rid;
use crate::schema::ColumnType;
use crate::sql::ast::SelectStmt;
use crate::sql::plan::{arity, plan_select_stmt, Logical, SelectPlan, SubKind};
use crate::value::{
    decode_composite_key, decode_row, decode_row_pruned, encode_composite_key, Row, Value,
};
use std::ops::Bound;
use std::rc::Rc;

/// A prepared, executable physical plan.
#[derive(Debug)]
pub struct ExecPlan {
    /// Number of `?` parameters the statement takes.
    pub param_count: usize,
    /// Number of CTE materialization slots across the whole statement.
    pub num_slots: usize,
    /// The physical tree (plus its CTE and subquery plans).
    pub root: PhysSelect,
    /// Output column names.
    pub columns: Vec<String>,
    /// Rendered EXPLAIN text (logical + physical sections).
    pub explain: Vec<String>,
    /// `EXPLAIN <select>`: executing returns the plan text, not the rows.
    pub explain_only: bool,
}

/// A physical select: CTE plans, uncorrelated subquery plans, and the
/// operator tree that consumes them.
#[derive(Debug)]
pub struct PhysSelect {
    /// `(slot, name, plan)` in definition order.
    pub ctes: Vec<(usize, String, PhysSelect)>,
    /// Subquery plans in [`Expr::SubScalar`]/[`Expr::InSub`] slot order.
    pub subs: Vec<(SubKind, PhysSelect)>,
    /// The operator tree.
    pub node: Phys,
}

/// Source of an index IN-probe's key list.
#[derive(Debug)]
pub enum InSrc {
    /// Literal list (from `IN (v, v, …)`).
    List(Vec<Value>),
    /// Subquery slot (from `IN (select …)`).
    Sub(usize),
}

/// Range bound pair on the index column after the eq prefix.
#[derive(Debug)]
pub struct RangeProbe {
    /// Lower bound expression (row-free), and whether it is exclusive.
    pub lo: Option<(Expr, bool)>,
    /// Upper bound expression (row-free), and whether it is exclusive.
    pub hi: Option<(Expr, bool)>,
}

/// Physical operators.
///
/// `IndexScan` dwarfs the other variants, but plan nodes are built once
/// per prepared statement and traversed by reference — boxing the probe
/// metadata would buy nothing at execution time.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Phys {
    /// SELECT without FROM: one empty row.
    Nothing,
    /// Full heap scan with pruned decode and residual filters.
    SeqScan {
        /// Catalog id.
        tid: TableId,
        /// Table name (for EXPLAIN).
        table: String,
        /// Columns to decode (`None` = all).
        keep: Option<Vec<bool>>,
        /// Filters applied in order.
        filters: Vec<Expr>,
    },
    /// B+tree probe: eq-prefix and/or range scan, or single-column IN.
    IndexScan {
        /// Catalog id.
        tid: TableId,
        /// Table name (for EXPLAIN).
        table: String,
        /// Position in the table's index list.
        index_no: usize,
        /// Index name (for EXPLAIN).
        index_name: String,
        /// Row-free expressions producing the eq-prefix key values, in
        /// index column order.
        eq: Vec<Expr>,
        /// Optional range on index column `eq.len()`.
        range: Option<RangeProbe>,
        /// Single-column IN probe (mutually exclusive with eq/range).
        in_probe: Option<InSrc>,
        /// Columns to decode on heap fetch (`None` = all).
        keep: Option<Vec<bool>>,
        /// Full original pushed-down filters — always re-applied, which
        /// makes lossy probe bounds (dropped range ends, overscans)
        /// harmless.
        filters: Vec<Expr>,
        /// Serve rows from decoded index keys without heap fetches.
        index_only: bool,
        /// The index's key columns.
        index_cols: Vec<usize>,
        /// Declared column types (drives probe-value coercion).
        col_types: Vec<ColumnType>,
        /// Table arity.
        arity: usize,
    },
    /// Scan of a materialized CTE slot.
    CteScan {
        /// CTE name (for EXPLAIN).
        name: String,
        /// Materialization slot.
        slot: usize,
        /// Filters applied in order.
        filters: Vec<Expr>,
    },
    /// Sort-merge equi-join (sorts both inputs).
    MergeJoin {
        /// Left input.
        left: Box<Phys>,
        /// Right input.
        right: Box<Phys>,
        /// Left key columns.
        lk: Vec<usize>,
        /// Right key columns.
        rk: Vec<usize>,
        /// LEFT OUTER?
        outer: bool,
        /// Right arity (NULL padding width for outer).
        right_arity: usize,
    },
    /// Nested-loop join (`Lit(1)` predicate = cartesian product).
    NlJoin {
        /// Left input.
        left: Box<Phys>,
        /// Right input.
        right: Box<Phys>,
        /// Predicate over the concatenated row.
        pred: Expr,
        /// LEFT OUTER?
        outer: bool,
    },
    /// Column permutation (canonical order restoration).
    Permute {
        /// Input.
        input: Box<Phys>,
        /// Output position → input position.
        map: Vec<usize>,
    },
    /// Residual filter.
    Filter {
        /// Input.
        input: Box<Phys>,
        /// Predicates applied in order.
        preds: Vec<Expr>,
    },
    /// Hash aggregation.
    Agg {
        /// Input.
        input: Box<Phys>,
        /// Group-by expressions.
        group: Vec<Expr>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// External sort.
    Sort {
        /// Input.
        input: Box<Phys>,
        /// `(key, descending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// LIMIT.
    Limit {
        /// Input.
        input: Box<Phys>,
        /// Max rows.
        n: u64,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<Phys>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// DISTINCT.
    Distinct {
        /// Input.
        input: Box<Phys>,
    },
}

/// Plan and lower a SELECT. `explain_only` marks `EXPLAIN <select>`:
/// the plan is built (and cached) identically but executing it returns
/// the rendered plan text.
pub fn prepare_plan(catalog: &Catalog, sel: &SelectStmt, explain_only: bool) -> DbResult<ExecPlan> {
    let (plan, num_slots, param_count) = plan_select_stmt(catalog, sel)?;
    let columns = plan.out_cols.iter().map(|c| c.name.clone()).collect();
    let mut explain = vec!["== logical ==".to_owned()];
    render_sel_logical(&plan, 0, &mut explain);
    let root = lower_select(catalog, &plan)?;
    explain.push("== physical ==".to_owned());
    render_sel_phys(&root, 0, &mut explain);
    Ok(ExecPlan {
        param_count,
        num_slots,
        root,
        columns,
        explain,
        explain_only,
    })
}

// ---------------------------------------------------------------- lowering

/// Selectivity assumed for one eq key column / one range bound.
const SEL_EQ: f64 = 0.05;
const SEL_RANGE: f64 = 0.3;
/// Below this estimated input size a nested-loop equi-join beats paying
/// two sorts.
const NL_JOIN_EST: f64 = 4.0;
/// Tables with fewer rows than this are never worth a B+tree descent —
/// the whole heap is a page or two.
const MIN_PROBE_ROWS: f64 = 16.0;

fn lower_select(catalog: &Catalog, plan: &SelectPlan) -> DbResult<PhysSelect> {
    let mut ctes = Vec::with_capacity(plan.ctes.len());
    for c in &plan.ctes {
        ctes.push((c.slot, c.name.clone(), lower_select(catalog, &c.plan)?));
    }
    let mut subs = Vec::with_capacity(plan.subs.len());
    for s in &plan.subs {
        subs.push((s.kind, lower_select(catalog, &s.plan)?));
    }
    let node = lower_node(catalog, &plan.root)?;
    Ok(PhysSelect { ctes, subs, node })
}

/// Is this expression free of row references (usable as a probe key)?
fn row_free(e: &Expr) -> bool {
    match e {
        Expr::Col(_) => false,
        Expr::Lit(_) | Expr::Param(_) | Expr::SubScalar(_) | Expr::Now => true,
        Expr::Bin(_, l, r) => row_free(l) && row_free(r),
        Expr::Un(_, x) | Expr::IsNull(x, _) => row_free(x),
        Expr::InList(x, _, _) | Expr::InSub(x, _, _) => row_free(x),
        Expr::Call(_, args) => args.iter().all(row_free),
    }
}

fn lower_node(catalog: &Catalog, node: &Logical) -> DbResult<Phys> {
    Ok(match node {
        Logical::Nothing => Phys::Nothing,
        Logical::CteScan {
            name,
            slot,
            filters,
            ..
        } => Phys::CteScan {
            name: name.clone(),
            slot: *slot,
            filters: filters.clone(),
        },
        Logical::Scan {
            table,
            tid,
            arity,
            keep,
            filters,
        } => lower_scan(catalog, table, *tid, *arity, keep, filters),
        Logical::Join {
            left,
            right,
            lk,
            rk,
            outer,
            lest,
            rest,
        } => {
            let left_arity = arity(left);
            let right_arity = arity(right);
            let l = Box::new(lower_node(catalog, left)?);
            let r = Box::new(lower_node(catalog, right)?);
            if !outer && lest.min(*rest) <= NL_JOIN_EST {
                // One side is tiny: probe it with a nested loop instead
                // of sorting both inputs.
                let mut pred = Expr::Lit(Value::Int(1));
                for (i, (&a, &b)) in lk.iter().zip(rk).enumerate() {
                    let eq = Expr::bin(BinOp::Eq, Expr::Col(a), Expr::Col(left_arity + b));
                    pred = if i == 0 {
                        eq
                    } else {
                        Expr::bin(BinOp::And, pred, eq)
                    };
                }
                Phys::NlJoin {
                    left: l,
                    right: r,
                    pred,
                    outer: false,
                }
            } else {
                Phys::MergeJoin {
                    left: l,
                    right: r,
                    lk: lk.clone(),
                    rk: rk.clone(),
                    outer: *outer,
                    right_arity,
                }
            }
        }
        Logical::NlJoin {
            left,
            right,
            pred,
            outer,
        } => Phys::NlJoin {
            left: Box::new(lower_node(catalog, left)?),
            right: Box::new(lower_node(catalog, right)?),
            pred: pred.clone(),
            outer: *outer,
        },
        Logical::Permute { input, map } => Phys::Permute {
            input: Box::new(lower_node(catalog, input)?),
            map: map.clone(),
        },
        Logical::Filter { input, preds } => Phys::Filter {
            input: Box::new(lower_node(catalog, input)?),
            preds: preds.clone(),
        },
        Logical::Agg { input, group, aggs } => Phys::Agg {
            input: Box::new(lower_node(catalog, input)?),
            group: group.clone(),
            aggs: aggs.clone(),
        },
        Logical::Sort { input, keys } => Phys::Sort {
            input: Box::new(lower_node(catalog, input)?),
            keys: keys.clone(),
        },
        Logical::Limit { input, n } => Phys::Limit {
            input: Box::new(lower_node(catalog, input)?),
            n: *n,
        },
        Logical::Project { input, exprs } => Phys::Project {
            input: Box::new(lower_node(catalog, input)?),
            exprs: exprs.clone(),
        },
        Logical::Distinct { input } => Phys::Distinct {
            input: Box::new(lower_node(catalog, input)?),
        },
    })
}

/// Access-path selection for a base-table scan.
fn lower_scan(
    catalog: &Catalog,
    table: &str,
    tid: TableId,
    table_arity: usize,
    keep: &Option<Vec<bool>>,
    filters: &[Expr],
) -> Phys {
    let t = catalog.table(tid);
    let (n_rows, n_pages) = catalog.table_stats(tid);
    let n = n_rows as f64;
    let pages = n_pages.max(1) as f64;
    let col_types: Vec<ColumnType> = t.schema.columns.iter().map(|c| c.ty).collect();

    // Probe-able predicates, keyed by column.
    let mut eq_on: Vec<Option<&Expr>> = vec![None; table_arity];
    let mut lo_on: Vec<Option<(&Expr, bool)>> = vec![None; table_arity];
    let mut hi_on: Vec<Option<(&Expr, bool)>> = vec![None; table_arity];
    let mut in_on: Vec<Option<InSrc>> = (0..table_arity).map(|_| None).collect();
    for f in filters {
        match f {
            Expr::Bin(op, l, r) => {
                let (col, rhs, op) = match (l.as_ref(), r.as_ref()) {
                    (Expr::Col(c), rhs) if row_free(rhs) => (*c, rhs, *op),
                    (lhs, Expr::Col(c)) if row_free(lhs) => {
                        // Mirror the comparison so the column is on the left.
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        (*c, lhs, flipped)
                    }
                    _ => continue,
                };
                match op {
                    BinOp::Eq if eq_on[col].is_none() => {
                        eq_on[col] = Some(rhs);
                    }
                    BinOp::Gt | BinOp::Ge if lo_on[col].is_none() => {
                        lo_on[col] = Some((rhs, op == BinOp::Gt));
                    }
                    BinOp::Lt | BinOp::Le if hi_on[col].is_none() => {
                        hi_on[col] = Some((rhs, op == BinOp::Lt));
                    }
                    _ => {}
                }
            }
            Expr::InList(probe, vals, false) => {
                if let Expr::Col(c) = probe.as_ref() {
                    if in_on[*c].is_none() {
                        in_on[*c] = Some(InSrc::List(vals.clone()));
                    }
                }
            }
            Expr::InSub(probe, slot, false) => {
                if let Expr::Col(c) = probe.as_ref() {
                    if in_on[*c].is_none() {
                        in_on[*c] = Some(InSrc::Sub(*slot));
                    }
                }
            }
            _ => {}
        }
    }

    // Best eq/range candidate across indexes. Admission: an eq-prefix
    // probe is taken whenever the table is big enough to matter — with
    // no value statistics the flat SEL_EQ overestimates hit counts on
    // high-cardinality columns (the common probe: `oid = ?`), and a
    // wrongly-taken probe only costs the tree descent since the full
    // filter set re-runs as residuals. A range-only probe keeps the
    // conservative est-vs-pages gate: its 30% selectivity guess is
    // usually honest and a 30% range scan reads most heap pages anyway.
    // Among admitted candidates, lowest estimate (longest eq prefix,
    // then range) wins.
    let mut best: Option<(usize, usize, bool, f64)> = None; // (index_no, eq_len, has_range, est)
    for (i, idx) in t.indexes.iter().enumerate() {
        let mut k = 0;
        while k < idx.cols.len() && eq_on[idx.cols[k]].is_some() {
            k += 1;
        }
        let has_range =
            k < idx.cols.len() && (lo_on[idx.cols[k]].is_some() || hi_on[idx.cols[k]].is_some());
        if k == 0 && !has_range {
            continue;
        }
        let mut est = n * SEL_EQ.powi(k as i32);
        if has_range {
            est *= SEL_RANGE;
        }
        let est = est.max(1.0);
        let admitted = if k > 0 {
            n >= MIN_PROBE_ROWS
        } else {
            est < pages
        };
        if admitted && best.as_ref().is_none_or(|b| est < b.3) {
            best = Some((i, k, has_range, est));
        }
    }

    let index_only = |idx_cols: &[usize]| -> bool {
        match keep {
            Some(mask) => mask
                .iter()
                .enumerate()
                .all(|(c, &needed)| !needed || idx_cols.contains(&c)),
            None => (0..table_arity).all(|c| idx_cols.contains(&c)),
        }
    };

    if let Some((index_no, k, has_range, _)) = best {
        let idx = &t.indexes[index_no];
        let eq: Vec<Expr> = idx.cols[..k]
            .iter()
            .map(|&c| eq_on[c].unwrap().clone())
            .collect();
        let range = if has_range {
            let rc = idx.cols[k];
            Some(RangeProbe {
                lo: lo_on[rc].map(|(e, x)| (e.clone(), x)),
                hi: hi_on[rc].map(|(e, x)| (e.clone(), x)),
            })
        } else {
            None
        };
        return Phys::IndexScan {
            tid,
            table: table.to_owned(),
            index_no,
            index_name: idx.name.clone(),
            eq,
            range,
            in_probe: None,
            keep: keep.clone(),
            filters: filters.to_vec(),
            index_only: index_only(&idx.cols),
            index_cols: idx.cols.clone(),
            col_types,
            arity: table_arity,
        };
    }

    // IN probe: only on a single-column index (composite keys cannot be
    // equality-matched by a one-value prefix via lookup_many).
    for (i, idx) in t.indexes.iter().enumerate() {
        if idx.cols.len() != 1 {
            continue;
        }
        if let Some(src) = in_on[idx.cols[0]].take() {
            return Phys::IndexScan {
                tid,
                table: table.to_owned(),
                index_no: i,
                index_name: idx.name.clone(),
                eq: Vec::new(),
                range: None,
                in_probe: Some(src),
                keep: keep.clone(),
                filters: filters.to_vec(),
                index_only: index_only(&idx.cols),
                index_cols: idx.cols.clone(),
                col_types,
                arity: table_arity,
            };
        }
    }

    Phys::SeqScan {
        tid,
        table: table.to_owned(),
        keep: keep.clone(),
        filters: filters.to_vec(),
    }
}

// ---------------------------------------------------------------- specialize

/// Per-execution result of an uncorrelated subquery.
#[derive(Debug, Clone)]
pub enum SubResult {
    /// Scalar value (`NULL` when the subquery produced no rows).
    Scalar(Value),
    /// First-column value list.
    List(Vec<Value>),
}

/// Substitute execution-time leaves — parameters, the session clock, and
/// subquery results — turning a cached plan expression into one the
/// shared operator kernels can evaluate directly.
pub fn specialize(e: &Expr, params: &[Value], now: i64, subs: &[SubResult]) -> DbResult<Expr> {
    Ok(match e {
        Expr::Col(_) | Expr::Lit(_) => e.clone(),
        Expr::Param(i) => {
            Expr::Lit(params.get(*i).cloned().ok_or_else(|| {
                DbError::Binding(format!("no value bound for parameter ?{}", i + 1))
            })?)
        }
        Expr::Now => Expr::Lit(Value::Int(now)),
        Expr::SubScalar(i) => match subs.get(*i) {
            Some(SubResult::Scalar(v)) => Expr::Lit(v.clone()),
            _ => return Err(DbError::Eval("scalar subquery slot out of range".into())),
        },
        Expr::InSub(probe, i, negated) => {
            let list = match subs.get(*i) {
                Some(SubResult::List(vs)) => vs.clone(),
                _ => {
                    return Err(DbError::Eval("IN subquery slot out of range".into()));
                }
            };
            Expr::InList(
                Box::new(specialize(probe, params, now, subs)?),
                list,
                *negated,
            )
        }
        Expr::Bin(op, l, r) => Expr::bin(
            *op,
            specialize(l, params, now, subs)?,
            specialize(r, params, now, subs)?,
        ),
        Expr::Un(op, x) => Expr::Un(*op, Box::new(specialize(x, params, now, subs)?)),
        Expr::IsNull(x, n) => Expr::IsNull(Box::new(specialize(x, params, now, subs)?), *n),
        Expr::InList(x, vals, n) => Expr::InList(
            Box::new(specialize(x, params, now, subs)?),
            vals.clone(),
            *n,
        ),
        Expr::Call(f, args) => Expr::Call(
            *f,
            args.iter()
                .map(|a| specialize(a, params, now, subs))
                .collect::<DbResult<_>>()?,
        ),
    })
}

// ---------------------------------------------------------------- executor

struct Env<'a> {
    pool: &'a BufferPool,
    catalog: &'a Catalog,
    params: &'a [Value],
    now: i64,
    budget: usize,
    slots: Vec<Option<Rc<Vec<Row>>>>,
}

/// Execute a prepared plan. `params` must match the plan's declared
/// parameter count. For `EXPLAIN` plans the rendered plan text is
/// returned as one single-column row per line.
pub fn execute_plan(
    pool: &BufferPool,
    catalog: &Catalog,
    plan: &ExecPlan,
    params: &[Value],
    now: i64,
    sort_budget: usize,
) -> DbResult<Vec<Row>> {
    if params.len() != plan.param_count {
        return Err(DbError::Binding(format!(
            "statement takes {} parameter(s), got {}",
            plan.param_count,
            params.len()
        )));
    }
    if plan.explain_only {
        return Ok(plan
            .explain
            .iter()
            .map(|l| vec![Value::Str(l.clone())])
            .collect());
    }
    let mut env = Env {
        pool,
        catalog,
        params,
        now,
        budget: sort_budget,
        slots: vec![None; plan.num_slots],
    };
    exec_select(&mut env, &plan.root)
}

fn exec_select(env: &mut Env<'_>, ps: &PhysSelect) -> DbResult<Vec<Row>> {
    for (slot, _, plan) in &ps.ctes {
        let rows = exec_select(env, plan)?;
        env.slots[*slot] = Some(Rc::new(rows));
    }
    // Subqueries re-run on every execution: a prepared plan must observe
    // mutations to the subquery's source tables between executions.
    let mut subvals = Vec::with_capacity(ps.subs.len());
    for (kind, plan) in &ps.subs {
        let rows = exec_select(env, plan)?;
        subvals.push(match kind {
            SubKind::Scalar => {
                if rows.len() > 1 {
                    return Err(DbError::Binding(format!(
                        "scalar subquery produced {} rows",
                        rows.len()
                    )));
                }
                SubResult::Scalar(rows.into_iter().next().map_or(Value::Null, |mut r| {
                    if r.is_empty() {
                        Value::Null
                    } else {
                        r.remove(0)
                    }
                }))
            }
            SubKind::List => SubResult::List(rows.into_iter().map(|mut r| r.remove(0)).collect()),
        });
    }
    exec_node(env, &ps.node, &subvals)
}

fn apply_filters(
    env: &Env<'_>,
    mut rows: Vec<Row>,
    filters: &[Expr],
    subs: &[SubResult],
) -> DbResult<Vec<Row>> {
    // One conjunct at a time, like the interpreter's filter_rel: the
    // first failing conjunct's evaluation error surfaces.
    for f in filters {
        let f = specialize(f, env.params, env.now, subs)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if f.eval(&row)?.is_truthy() {
                kept.push(row);
            }
        }
        rows = kept;
    }
    Ok(rows)
}

fn seq_scan(env: &Env<'_>, tid: TableId, keep: &Option<Vec<bool>>) -> DbResult<Vec<Row>> {
    match keep {
        Some(mask) => env.catalog.scan_rows_pruned(env.pool, tid, mask),
        None => Ok(env
            .catalog
            .scan_table(env.pool, tid)?
            .into_iter()
            .map(|(_, r)| r)
            .collect()),
    }
}

fn exec_node(env: &mut Env<'_>, node: &Phys, subs: &[SubResult]) -> DbResult<Vec<Row>> {
    match node {
        Phys::Nothing => Ok(vec![vec![]]),
        Phys::SeqScan {
            tid, keep, filters, ..
        } => {
            let rows = seq_scan(env, *tid, keep)?;
            apply_filters(env, rows, filters, subs)
        }
        Phys::CteScan { slot, filters, .. } => {
            let rows = env.slots[*slot]
                .as_ref()
                .ok_or_else(|| DbError::Eval(format!("CTE slot {slot} not materialized")))?
                .as_ref()
                .clone();
            apply_filters(env, rows, filters, subs)
        }
        Phys::IndexScan { .. } => exec_index_scan(env, node, subs),
        Phys::MergeJoin {
            left,
            right,
            lk,
            rk,
            outer,
            right_arity,
        } => {
            let l = exec_node(env, left, subs)?;
            let r = exec_node(env, right, subs)?;
            let lkeys: Vec<SortKey> = lk.iter().map(|&c| SortKey::asc(c)).collect();
            let rkeys: Vec<SortKey> = rk.iter().map(|&c| SortKey::asc(c)).collect();
            let ls = external_sort(env.pool, l, &lkeys, env.budget)?;
            let rs = external_sort(env.pool, r, &rkeys, env.budget)?;
            if *outer {
                merge_join_left_outer(&ls, &rs, lk, rk, *right_arity)
            } else {
                merge_join_inner(&ls, &rs, lk, rk)
            }
        }
        Phys::NlJoin {
            left,
            right,
            pred,
            outer,
        } => {
            let l = exec_node(env, left, subs)?;
            let r = exec_node(env, right, subs)?;
            let p = specialize(pred, env.params, env.now, subs)?;
            nested_loop_join(&l, &r, &p, *outer)
        }
        Phys::Permute { input, map } => {
            let rows = exec_node(env, input, subs)?;
            Ok(rows
                .into_iter()
                .map(|row| map.iter().map(|&i| row[i].clone()).collect())
                .collect())
        }
        Phys::Filter { input, preds } => {
            let rows = exec_node(env, input, subs)?;
            apply_filters(env, rows, preds, subs)
        }
        Phys::Agg { input, group, aggs } => {
            let rows = exec_node(env, input, subs)?;
            let g: Vec<Expr> = group
                .iter()
                .map(|e| specialize(e, env.params, env.now, subs))
                .collect::<DbResult<_>>()?;
            let a: Vec<AggCall> = aggs
                .iter()
                .map(|c| {
                    Ok(AggCall {
                        kind: c.kind,
                        arg: specialize(&c.arg, env.params, env.now, subs)?,
                    })
                })
                .collect::<DbResult<_>>()?;
            aggregate(&rows, &g, &a)
        }
        Phys::Sort { input, keys } => {
            let rows = exec_node(env, input, subs)?;
            let sk: Vec<SortKey> = keys
                .iter()
                .map(|(e, desc)| {
                    Ok(SortKey {
                        expr: specialize(e, env.params, env.now, subs)?,
                        desc: *desc,
                    })
                })
                .collect::<DbResult<_>>()?;
            external_sort(env.pool, rows, &sk, env.budget)
        }
        Phys::Limit { input, n } => {
            let mut rows = exec_node(env, input, subs)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        Phys::Project { input, exprs } => {
            let rows = exec_node(env, input, subs)?;
            let es: Vec<Expr> = exprs
                .iter()
                .map(|e| specialize(e, env.params, env.now, subs))
                .collect::<DbResult<_>>()?;
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut o = Vec::with_capacity(es.len());
                for e in &es {
                    o.push(e.eval(row)?);
                }
                out.push(o);
            }
            Ok(out)
        }
        Phys::Distinct { input } => {
            let mut rows = exec_node(env, input, subs)?;
            let mut seen = std::collections::HashSet::new();
            rows.retain(|r| seen.insert(r.clone()));
            Ok(rows)
        }
    }
}

// -------------------------------------------------------- index-scan exec

/// Result of coercing an eq-probe value to the indexed column's type.
enum EqCoerce {
    /// Probe with this value.
    Val(Value),
    /// The predicate can never match (cross-class / fractional / NULL).
    NoMatch,
    /// Encoded-key equality would diverge from eval semantics — fall
    /// back to a sequential scan.
    Fallback,
}

/// Largest f64 below which every integral float maps to exactly one i64
/// (`2^53`; above it, distinct i64s collapse onto one f64).
const F64_EXACT: f64 = 9_007_199_254_740_992.0;

fn coerce_eq(v: Value, ty: ColumnType) -> EqCoerce {
    match (ty, v) {
        (_, Value::Null) => EqCoerce::NoMatch, // `= NULL` is false
        (ColumnType::Int, Value::Int(i)) => EqCoerce::Val(Value::Int(i)),
        (ColumnType::Int, Value::Float(f)) => {
            if f.is_nan() || f.fract() != 0.0 {
                EqCoerce::NoMatch
            } else if f.abs() < F64_EXACT {
                EqCoerce::Val(Value::Int(f as i64))
            } else {
                // Above 2^53, (huge_int as f64) == f can hold for ints
                // whose encoded keys differ from enc(f as i64).
                EqCoerce::Fallback
            }
        }
        // total_cmp compares Int-vs-Float through (i as f64), so probing
        // a float column with the widened int IS the eval semantics.
        (ColumnType::Float, Value::Int(i)) => EqCoerce::Val(Value::Float(i as f64)),
        (ColumnType::Float, Value::Float(f)) => EqCoerce::Val(Value::Float(f)),
        (ColumnType::Str, Value::Str(s)) => EqCoerce::Val(Value::Str(s)),
        _ => EqCoerce::NoMatch, // cross-class comparisons never equal
    }
}

/// Result of coercing a range bound.
enum RangeCoerce {
    /// Bound with this value.
    Val(Value),
    /// The range is empty (NULL bound).
    Empty,
    /// Drop this bound (always safe: full filters re-run as residuals).
    Open,
}

fn coerce_range(v: Value, ty: ColumnType, is_lo: bool) -> RangeCoerce {
    match (ty, v) {
        (_, Value::Null) => RangeCoerce::Empty, // comparisons with NULL are false
        (ColumnType::Int, Value::Int(i)) => RangeCoerce::Val(Value::Int(i)),
        (ColumnType::Int, Value::Float(f)) => {
            if f.is_nan() || f.abs() >= F64_EXACT {
                RangeCoerce::Open
            } else {
                // Round outward; the residual filter trims the overscan.
                let r = if is_lo { f.floor() } else { f.ceil() };
                RangeCoerce::Val(Value::Int(r as i64))
            }
        }
        (ColumnType::Float, Value::Int(i)) => RangeCoerce::Val(Value::Float(i as f64)),
        (ColumnType::Float, Value::Float(f)) => {
            if f.is_nan() {
                RangeCoerce::Open
            } else {
                RangeCoerce::Val(Value::Float(f))
            }
        }
        (ColumnType::Str, Value::Str(s)) => RangeCoerce::Val(Value::Str(s)),
        _ => RangeCoerce::Open,
    }
}

fn exec_index_scan(env: &mut Env<'_>, node: &Phys, subs: &[SubResult]) -> DbResult<Vec<Row>> {
    let Phys::IndexScan {
        tid,
        index_no,
        eq,
        range,
        in_probe,
        keep,
        filters,
        index_only,
        index_cols,
        col_types,
        arity,
        ..
    } = node
    else {
        unreachable!("exec_index_scan on non-IndexScan");
    };
    let t = env.catalog.table(*tid);
    let idx = &t.indexes[*index_no];
    let empty: Row = Vec::new();

    let fallback = |env: &Env<'_>| -> DbResult<Vec<Row>> {
        let rows = seq_scan(env, *tid, keep)?;
        apply_filters(env, rows, filters, subs)
    };

    // Eq-prefix key values.
    let mut prefix_vals = Vec::with_capacity(eq.len());
    for (j, e) in eq.iter().enumerate() {
        let v = specialize(e, env.params, env.now, subs)?.eval(&empty)?;
        match coerce_eq(v, col_types[index_cols[j]]) {
            EqCoerce::Val(v) => prefix_vals.push(v),
            EqCoerce::NoMatch => return Ok(Vec::new()),
            EqCoerce::Fallback => return fallback(env),
        }
    }
    let prefix = encode_composite_key(&prefix_vals);

    let mut rids: Vec<Rid> = Vec::new();
    let mut found_keys: Vec<Vec<u8>> = Vec::new();
    let decode_key_row = |k: &[u8]| -> DbResult<Row> {
        let vals = decode_composite_key(k)?;
        let mut row = vec![Value::Null; *arity];
        for (j, &c) in index_cols.iter().enumerate() {
            if let Some(v) = vals.get(j) {
                row[c] = v.clone();
            }
        }
        Ok(row)
    };

    if let Some(src) = in_probe {
        let list: Vec<Value> = match src {
            InSrc::List(vs) => vs.clone(),
            InSrc::Sub(i) => match subs.get(*i) {
                Some(SubResult::List(vs)) => vs.clone(),
                _ => {
                    return Err(DbError::Eval("IN subquery slot out of range".into()));
                }
            },
        };
        let mut keys: Vec<Vec<u8>> = Vec::with_capacity(list.len());
        for v in list {
            match coerce_eq(v, col_types[index_cols[0]]) {
                EqCoerce::Val(v) => keys.push(encode_composite_key(&[v])),
                EqCoerce::NoMatch => {}
                EqCoerce::Fallback => return fallback(env),
            }
        }
        keys.sort_unstable();
        keys.dedup();
        // More probe keys than rows: the scan is cheaper than the descents.
        if keys.len() as u64 > t.heap.len() {
            return fallback(env);
        }
        if *index_only {
            // Each hit contributes one row per matching entry; the key
            // itself is the row content.
            for (key, hits) in keys.iter().zip(idx.btree.lookup_many(env.pool, &keys)?) {
                for _ in hits {
                    found_keys.push(key.clone());
                }
            }
        } else {
            for hits in idx.btree.lookup_many(env.pool, &keys)? {
                rids.extend(hits);
            }
        }
    } else if let Some(r) = range {
        let range_ty = col_types[index_cols[eq.len()]];
        let mut lo_bytes = prefix.clone();
        let mut hi_bytes: Option<Vec<u8>> = None;
        if let Some((e, _)) = &r.lo {
            let v = specialize(e, env.params, env.now, subs)?.eval(&empty)?;
            match coerce_range(v, range_ty, true) {
                RangeCoerce::Val(v) => v.encode_key(&mut lo_bytes),
                RangeCoerce::Empty => return Ok(Vec::new()),
                RangeCoerce::Open => {}
            }
        }
        if let Some((e, _)) = &r.hi {
            let v = specialize(e, env.params, env.now, subs)?.eval(&empty)?;
            match coerce_range(v, range_ty, false) {
                RangeCoerce::Val(v) => {
                    let mut hb = prefix.clone();
                    v.encode_key(&mut hb);
                    hi_bytes = Some(hb);
                }
                RangeCoerce::Empty => return Ok(Vec::new()),
                RangeCoerce::Open => {}
            }
        }
        let stop = |k: &[u8]| -> bool {
            match &hi_bytes {
                // Keys sharing the hi value as a prefix may carry suffix
                // columns; include them (residuals trim strict bounds).
                Some(hb) => k > hb.as_slice() && !k.starts_with(hb),
                None => !k.starts_with(&prefix),
            }
        };
        idx.btree.scan_range(
            env.pool,
            Bound::Included(lo_bytes.as_slice()),
            Bound::Unbounded,
            |k, rid| {
                if stop(k) {
                    return false;
                }
                if *index_only {
                    found_keys.push(k.to_vec());
                } else {
                    rids.push(rid);
                }
                true
            },
        )?;
    } else {
        // Pure eq-prefix probe.
        idx.btree.scan_range(
            env.pool,
            Bound::Included(prefix.as_slice()),
            Bound::Unbounded,
            |k, rid| {
                if !k.starts_with(&prefix) {
                    return false;
                }
                if *index_only {
                    found_keys.push(k.to_vec());
                } else {
                    rids.push(rid);
                }
                true
            },
        )?;
    }

    let rows = if *index_only {
        let mut out = Vec::with_capacity(found_keys.len());
        for k in &found_keys {
            out.push(decode_key_row(k)?);
        }
        out
    } else {
        // Heap order: matches the row order a sequential scan produces.
        rids.sort_unstable();
        let recs = t.heap.get_many(env.pool, &rids)?;
        let mut out = Vec::with_capacity(recs.len());
        for bytes in &recs {
            out.push(match keep {
                Some(mask) => decode_row_pruned(bytes, mask)?,
                None => decode_row(bytes)?,
            });
        }
        out
    };
    apply_filters(env, rows, filters, subs)
}

// ---------------------------------------------------------------- explain

fn fmt_cols(keep: &Option<Vec<bool>>, arity: usize) -> String {
    let kept = keep
        .as_ref()
        .map_or(arity, |m| m.iter().filter(|&&b| b).count());
    format!("cols={kept}/{arity}")
}

fn render_sel_logical(plan: &SelectPlan, depth: usize, out: &mut Vec<String>) {
    for c in &plan.ctes {
        out.push(format!("{}cte {}:", "  ".repeat(depth), c.name));
        render_sel_logical(&c.plan, depth + 1, out);
    }
    for (i, s) in plan.subs.iter().enumerate() {
        let kind = match s.kind {
            SubKind::Scalar => "scalar",
            SubKind::List => "list",
        };
        out.push(format!("{}subquery {i} ({kind}):", "  ".repeat(depth)));
        render_sel_logical(&s.plan, depth + 1, out);
    }
    render_logical(&plan.root, depth, out);
}

fn render_logical(node: &Logical, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    match node {
        Logical::Nothing => out.push(format!("{pad}nothing")),
        Logical::Scan {
            table,
            arity,
            keep,
            filters,
            ..
        } => out.push(format!(
            "{pad}scan {table} [filters={} {}]",
            filters.len(),
            fmt_cols(keep, *arity)
        )),
        Logical::CteScan { name, filters, .. } => {
            out.push(format!("{pad}cte-scan {name} [filters={}]", filters.len()))
        }
        Logical::Join {
            left,
            right,
            lk,
            outer,
            ..
        } => {
            out.push(format!(
                "{pad}join [keys={}{}]",
                lk.len(),
                if *outer { ", left-outer" } else { "" }
            ));
            render_logical(left, depth + 1, out);
            render_logical(right, depth + 1, out);
        }
        Logical::NlJoin {
            left,
            right,
            pred,
            outer,
        } => {
            let name = if matches!(pred, Expr::Lit(Value::Int(1))) {
                "cross-join"
            } else {
                "nl-join"
            };
            out.push(format!(
                "{pad}{name}{}",
                if *outer { " [left-outer]" } else { "" }
            ));
            render_logical(left, depth + 1, out);
            render_logical(right, depth + 1, out);
        }
        Logical::Permute { input, map } => {
            out.push(format!("{pad}permute [{}]", map.len()));
            render_logical(input, depth + 1, out);
        }
        Logical::Filter { input, preds } => {
            out.push(format!("{pad}filter [preds={}]", preds.len()));
            render_logical(input, depth + 1, out);
        }
        Logical::Agg { input, group, aggs } => {
            out.push(format!(
                "{pad}agg [groups={}, aggs={}]",
                group.len(),
                aggs.len()
            ));
            render_logical(input, depth + 1, out);
        }
        Logical::Sort { input, keys } => {
            out.push(format!("{pad}sort [keys={}]", keys.len()));
            render_logical(input, depth + 1, out);
        }
        Logical::Limit { input, n } => {
            out.push(format!("{pad}limit {n}"));
            render_logical(input, depth + 1, out);
        }
        Logical::Project { input, exprs } => {
            out.push(format!("{pad}project [exprs={}]", exprs.len()));
            render_logical(input, depth + 1, out);
        }
        Logical::Distinct { input } => {
            out.push(format!("{pad}distinct"));
            render_logical(input, depth + 1, out);
        }
    }
}

fn render_sel_phys(ps: &PhysSelect, depth: usize, out: &mut Vec<String>) {
    for (_, name, plan) in &ps.ctes {
        out.push(format!("{}cte {name}:", "  ".repeat(depth)));
        render_sel_phys(plan, depth + 1, out);
    }
    for (i, (kind, plan)) in ps.subs.iter().enumerate() {
        let kind = match kind {
            SubKind::Scalar => "scalar",
            SubKind::List => "list",
        };
        out.push(format!("{}subquery {i} ({kind}):", "  ".repeat(depth)));
        render_sel_phys(plan, depth + 1, out);
    }
    render_phys(&ps.node, depth, out);
}

fn render_phys(node: &Phys, depth: usize, out: &mut Vec<String>) {
    let pad = "  ".repeat(depth);
    match node {
        Phys::Nothing => out.push(format!("{pad}Nothing")),
        Phys::SeqScan {
            table,
            keep,
            filters,
            tid: _,
        } => {
            let arity = keep.as_ref().map_or(0, Vec::len);
            let cols = if keep.is_some() {
                format!(" {}", fmt_cols(keep, arity))
            } else {
                String::new()
            };
            out.push(format!(
                "{pad}SeqScan {table} [filters={}{cols}]",
                filters.len()
            ));
        }
        Phys::IndexScan {
            table,
            index_name,
            eq,
            range,
            in_probe,
            filters,
            index_only,
            ..
        } => {
            let mut probe = Vec::new();
            if !eq.is_empty() {
                probe.push(format!("eq={}", eq.len()));
            }
            if range.is_some() {
                probe.push("range".to_owned());
            }
            if in_probe.is_some() {
                probe.push("in-probe".to_owned());
            }
            if *index_only {
                probe.push("index-only".to_owned());
            }
            out.push(format!(
                "{pad}IndexScan {table} via {index_name} [{}] [filters={}]",
                probe.join(" "),
                filters.len()
            ));
        }
        Phys::CteScan { name, filters, .. } => {
            out.push(format!("{pad}CteScan {name} [filters={}]", filters.len()))
        }
        Phys::MergeJoin {
            left,
            right,
            lk,
            outer,
            ..
        } => {
            out.push(format!(
                "{pad}MergeJoin [keys={}{}]",
                lk.len(),
                if *outer { ", left-outer" } else { "" }
            ));
            render_phys(left, depth + 1, out);
            render_phys(right, depth + 1, out);
        }
        Phys::NlJoin {
            left,
            right,
            pred,
            outer,
        } => {
            let name = if matches!(pred, Expr::Lit(Value::Int(1))) {
                "CrossJoin"
            } else {
                "NlJoin"
            };
            out.push(format!(
                "{pad}{name}{}",
                if *outer { " [left-outer]" } else { "" }
            ));
            render_phys(left, depth + 1, out);
            render_phys(right, depth + 1, out);
        }
        Phys::Permute { input, map } => {
            out.push(format!("{pad}Permute [{}]", map.len()));
            render_phys(input, depth + 1, out);
        }
        Phys::Filter { input, preds } => {
            out.push(format!("{pad}Filter [preds={}]", preds.len()));
            render_phys(input, depth + 1, out);
        }
        Phys::Agg { input, group, aggs } => {
            out.push(format!(
                "{pad}Agg [groups={}, aggs={}]",
                group.len(),
                aggs.len()
            ));
            render_phys(input, depth + 1, out);
        }
        Phys::Sort { input, keys } => {
            out.push(format!("{pad}Sort [keys={}]", keys.len()));
            render_phys(input, depth + 1, out);
        }
        Phys::Limit { input, n } => {
            out.push(format!("{pad}Limit {n}"));
            render_phys(input, depth + 1, out);
        }
        Phys::Project { input, exprs } => {
            out.push(format!("{pad}Project [exprs={}]", exprs.len()));
            render_phys(input, depth + 1, out);
        }
        Phys::Distinct { input } => {
            out.push(format!("{pad}Distinct"));
            render_phys(input, depth + 1, out);
        }
    }
}
