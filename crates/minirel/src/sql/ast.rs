//! SQL abstract syntax.
//!
//! The dialect covers every statement printed in the paper: the Figure 3
//! `BulkProbe` CTE query, the Figure 4 distillation DML, and the §3.7
//! monitoring queries (including `minute(...)`, `current timestamp`, and
//! interval literals like `1 hour`).

use crate::exec::expr::BinOp;
use crate::schema::ColumnType;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …` (possibly with a `WITH` prologue).
    Select(Box<SelectStmt>),
    /// `INSERT INTO t [(cols)] VALUES …` or `INSERT INTO t [(cols)] (SELECT …)`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list (empty = schema order).
        cols: Vec<String>,
        /// Row source.
        source: InsertSource,
    },
    /// `UPDATE t SET c = e, … [WHERE p]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, AstExpr)>,
        /// Row filter.
        where_: Option<AstExpr>,
    },
    /// `DELETE FROM t [WHERE p]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        where_: Option<AstExpr>,
    },
    /// `CREATE TABLE t (c ty, …)`.
    CreateTable {
        /// New table name.
        name: String,
        /// Column definitions.
        cols: Vec<(String, ColumnType)>,
    },
    /// `CREATE INDEX i ON t (c, …)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns.
        cols: Vec<String>,
    },
    /// `DROP TABLE t`.
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `EXPLAIN <select>` — plan the query and return its logical and
    /// physical plan as rows instead of executing it.
    Explain(Box<SelectStmt>),
}

/// Row source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// Literal rows.
    Values(Vec<Vec<AstExpr>>),
    /// Rows produced by a query.
    Select(Box<SelectStmt>),
}

/// A (sub)query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `WITH name(cols) AS (query), …` — visible to later CTEs and the body.
    pub ctes: Vec<Cte>,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// FROM items in textual order; the first entry's `kind` is `Cross`.
    pub from: Vec<FromClause>,
    /// WHERE predicate.
    pub where_: Option<AstExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<AstExpr>,
    /// ORDER BY (expr, descending?).
    pub order_by: Vec<(AstExpr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// DISTINCT?
    pub distinct: bool,
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// Name the body refers to.
    pub name: String,
    /// Output column names (empty = inherit from the query).
    pub cols: Vec<String>,
    /// Defining query.
    pub query: SelectStmt,
}

/// One projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Star,
    /// `expr [AS alias]`
    Expr {
        /// Projected expression.
        expr: AstExpr,
        /// Output name.
        alias: Option<String>,
    },
}

/// How a FROM item combines with what precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Comma join: predicate lives in WHERE.
    Cross,
    /// `[INNER] JOIN … ON`.
    Inner,
    /// `LEFT [OUTER] JOIN … ON`.
    LeftOuter,
}

/// One FROM item.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// Join kind with respect to the accumulated left side.
    pub kind: JoinKind,
    /// The relation.
    pub item: FromItem,
    /// ON predicate for Inner/LeftOuter.
    pub on: Option<AstExpr>,
}

/// A named relation reference (base table or CTE), optionally aliased.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Table or CTE name.
    pub table: String,
    /// Alias (`FROM complete as C`).
    pub alias: Option<String>,
}

impl FromItem {
    /// The name this item binds columns under.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An unbound expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `[qualifier.]name`
    Column {
        /// Table/alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `NULL`.
    Null,
    /// Binary operation (reuses the executor's operator set).
    Bin(BinOp, Box<AstExpr>, Box<AstExpr>),
    /// Unary minus.
    Neg(Box<AstExpr>),
    /// `NOT e`.
    Not(Box<AstExpr>),
    /// Function or aggregate call; `star` marks `count(*)`.
    Call {
        /// Function name (resolved at bind time).
        name: String,
        /// Arguments.
        args: Vec<AstExpr>,
        /// `count(*)`?
        star: bool,
    },
    /// `e [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Subquery producing the candidate set (first column).
        query: Box<SelectStmt>,
        /// Negated?
        negated: bool,
    },
    /// `e [NOT] IN (v, v, …)`.
    InList {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// Candidate expressions.
        list: Vec<AstExpr>,
        /// Negated?
        negated: bool,
    },
    /// `(SELECT single-value)` as an expression.
    ScalarSubquery(Box<SelectStmt>),
    /// `e IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `current timestamp` — bound to the session clock.
    CurrentTimestamp,
    /// `?` placeholder, numbered left to right from 0 across the
    /// statement. Bound to a caller-supplied value at execution time.
    Param(usize),
}

impl AstExpr {
    /// Split a conjunction into its AND-ed conjuncts.
    pub fn conjuncts(self) -> Vec<AstExpr> {
        match self {
            AstExpr::Bin(BinOp::And, l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Does this expression contain an aggregate call?
    pub fn has_aggregate(&self) -> bool {
        match self {
            AstExpr::Call { name, args, .. } => {
                crate::exec::agg::AggKind::parse(name).is_some()
                    || args.iter().any(AstExpr::has_aggregate)
            }
            AstExpr::Bin(_, l, r) => l.has_aggregate() || r.has_aggregate(),
            AstExpr::Neg(e) | AstExpr::Not(e) => e.has_aggregate(),
            AstExpr::InList { expr, list, .. } => {
                expr.has_aggregate() || list.iter().any(AstExpr::has_aggregate)
            }
            AstExpr::InSubquery { expr, .. } => expr.has_aggregate(),
            AstExpr::IsNull { expr, .. } => expr.has_aggregate(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = AstExpr::Bin(
            BinOp::And,
            Box::new(AstExpr::Bin(
                BinOp::And,
                Box::new(AstExpr::Int(1)),
                Box::new(AstExpr::Int(2)),
            )),
            Box::new(AstExpr::Int(3)),
        );
        assert_eq!(
            e.conjuncts(),
            vec![AstExpr::Int(1), AstExpr::Int(2), AstExpr::Int(3)]
        );
        assert_eq!(AstExpr::Int(5).conjuncts(), vec![AstExpr::Int(5)]);
    }

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::Call {
            name: "sum".into(),
            args: vec![AstExpr::Int(1)],
            star: false,
        };
        assert!(agg.has_aggregate());
        let wrapped = AstExpr::Bin(
            BinOp::Div,
            Box::new(agg),
            Box::new(AstExpr::Call {
                name: "count".into(),
                args: vec![],
                star: true,
            }),
        );
        assert!(wrapped.has_aggregate());
        let plain = AstExpr::Call {
            name: "exp".into(),
            args: vec![AstExpr::Column {
                qualifier: None,
                name: "x".into(),
            }],
            star: false,
        };
        assert!(!plain.has_aggregate());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let f = FromItem {
            table: "complete".into(),
            alias: Some("c".into()),
        };
        assert_eq!(f.binding_name(), "c");
        let g = FromItem {
            table: "crawl".into(),
            alias: None,
        };
        assert_eq!(g.binding_name(), "crawl");
    }
}
