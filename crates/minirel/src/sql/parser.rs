//! Recursive-descent SQL parser.

use crate::error::{DbError, DbResult};
use crate::exec::expr::BinOp;
use crate::schema::ColumnType;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token};

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "limit", "left", "right", "inner", "outer",
    "join", "on", "as", "and", "or", "not", "in", "is", "null", "values", "set", "by", "asc",
    "desc", "with", "union", "having", "distinct", "insert", "update", "delete",
];

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let toks = tokenize(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_semi();
    if p.pos != p.toks.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(sql: &str) -> DbResult<Vec<Statement>> {
    let toks = tokenize(sql)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let mut out = Vec::new();
    while p.pos < p.toks.len() {
        out.push(p.statement()?);
        p.eat_semi();
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// `?` placeholders seen so far — numbers them left to right.
    params: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> DbError {
        let near = self
            .toks
            .get(self.pos)
            .map(|t| format!(" near '{t}'"))
            .unwrap_or_else(|| " at end of input".to_owned());
        DbError::Parse(format!("{msg}{near} (token {})", self.pos))
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> DbResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{t}'")))
        }
    }

    fn eat_semi(&mut self) {
        while self.eat(&Token::Semi) {}
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.select()?)));
        }
        if self.at_kw("select") || self.at_kw("with") {
            return Ok(Statement::Select(Box::new(self.select()?)));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            return Err(self.err("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        Err(self.err("expected a statement"))
    }

    // ---------- SELECT ----------

    fn select(&mut self) -> DbResult<SelectStmt> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                let mut cols = Vec::new();
                if self.eat(&Token::LParen) {
                    loop {
                        cols.push(self.ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                self.expect_kw("as")?;
                self.expect(&Token::LParen)?;
                let query = self.select()?;
                self.expect(&Token::RParen)?;
                ctes.push(Cte { name, cols, query });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projections = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                projections.push(Projection::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    if RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                projections.push(Projection::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            from.push(FromClause {
                kind: JoinKind::Cross,
                item: self.from_item()?,
                on: None,
            });
            loop {
                if self.eat(&Token::Comma) {
                    from.push(FromClause {
                        kind: JoinKind::Cross,
                        item: self.from_item()?,
                        on: None,
                    });
                } else if self.at_kw("left") {
                    self.expect_kw("left")?;
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    let item = self.from_item()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    from.push(FromClause {
                        kind: JoinKind::LeftOuter,
                        item,
                        on: Some(on),
                    });
                } else if self.at_kw("inner") || self.at_kw("join") {
                    self.eat_kw("inner");
                    self.expect_kw("join")?;
                    let item = self.from_item()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    from.push(FromClause {
                        kind: JoinKind::Inner,
                        item,
                        on: Some(on),
                    });
                } else {
                    break;
                }
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected row count after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            ctes,
            projections,
            from,
            where_,
            group_by,
            order_by,
            limit,
            distinct,
        })
    }

    #[allow(clippy::wrong_self_convention)] // "from" = SQL FROM, not a conversion
    fn from_item(&mut self) -> DbResult<FromItem> {
        let table = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(FromItem { table, alias })
    }

    // ---------- DML / DDL ----------

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut cols = Vec::new();
        // Column list vs. parenthesized SELECT: lookahead.
        if self.peek() == Some(&Token::LParen)
            && !matches!(self.peek2(), Some(t) if t.is_kw("select") || t.is_kw("with"))
        {
            self.expect(&Token::LParen)?;
            loop {
                cols.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.eat(&Token::LParen) {
            let q = self.select()?;
            self.expect(&Token::RParen)?;
            InsertSource::Select(Box::new(q))
        } else if self.at_kw("select") || self.at_kw("with") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(self.err("expected VALUES or SELECT in INSERT"));
        };
        Ok(Statement::Insert {
            table,
            cols,
            source,
        })
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            // DB2 allows `set (score) = expr`.
            let parened = self.eat(&Token::LParen);
            let col = self.ident()?;
            if parened {
                self.expect(&Token::RParen)?;
            }
            self.expect(&Token::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, where_ })
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut cols = Vec::new();
        loop {
            let cname = self.ident()?;
            let tyname = self.ident()?;
            let ty = ColumnType::parse(&tyname)
                .ok_or_else(|| self.err(&format!("unknown column type '{tyname}'")))?;
            cols.push((cname, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, cols })
    }

    fn create_index(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex { name, table, cols })
    }

    // ---------- expressions ----------

    fn expr(&mut self) -> DbResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<AstExpr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = AstExpr::Bin(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> DbResult<AstExpr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = AstExpr::Bin(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> DbResult<AstExpr> {
        if self.eat_kw("not") {
            let e = self.not_expr()?;
            return Ok(AstExpr::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> DbResult<AstExpr> {
        let e = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(e),
                negated,
            });
        }
        // [NOT] IN
        let negated_in = if self.at_kw("not") && self.peek2().is_some_and(|t| t.is_kw("in")) {
            self.eat_kw("not");
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            if self.at_kw("select") || self.at_kw("with") {
                let q = self.select()?;
                self.expect(&Token::RParen)?;
                return Ok(AstExpr::InSubquery {
                    expr: Box::new(e),
                    query: Box::new(q),
                    negated: negated_in,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(e),
                list,
                negated: negated_in,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let r = self.add_expr()?;
            return Ok(AstExpr::Bin(op, Box::new(e), Box::new(r)));
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> DbResult<AstExpr> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat(&Token::Plus) {
                let r = self.mul_expr()?;
                e = AstExpr::Bin(BinOp::Add, Box::new(e), Box::new(r));
            } else if self.eat(&Token::Minus) {
                let r = self.mul_expr()?;
                e = AstExpr::Bin(BinOp::Sub, Box::new(e), Box::new(r));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> DbResult<AstExpr> {
        let mut e = self.unary_expr()?;
        loop {
            if self.eat(&Token::Star) {
                let r = self.unary_expr()?;
                e = AstExpr::Bin(BinOp::Mul, Box::new(e), Box::new(r));
            } else if self.eat(&Token::Slash) {
                let r = self.unary_expr()?;
                e = AstExpr::Bin(BinOp::Div, Box::new(e), Box::new(r));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> DbResult<AstExpr> {
        if self.eat(&Token::Minus) {
            let e = self.unary_expr()?;
            return Ok(AstExpr::Neg(Box::new(e)));
        }
        if self.eat(&Token::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    /// Interval suffix: `1 hour`, `30 minute(s)`, `10 second(s)` → seconds.
    #[allow(clippy::wrong_self_convention)]
    fn interval_suffix(&mut self, n: i64) -> AstExpr {
        let mult = match self.peek() {
            Some(Token::Ident(s)) => match s.to_ascii_lowercase().as_str() {
                "hour" | "hours" => Some(3600),
                "minute" | "minutes" => Some(60),
                "second" | "seconds" => Some(1),
                "day" | "days" => Some(86_400),
                _ => None,
            },
            _ => None,
        };
        match mult {
            Some(m) => {
                self.bump();
                AstExpr::Int(n * m)
            }
            None => AstExpr::Int(n),
        }
    }

    fn primary(&mut self) -> DbResult<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.bump();
                Ok(self.interval_suffix(n))
            }
            Some(Token::Float(f)) => {
                self.bump();
                Ok(AstExpr::Float(f))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(AstExpr::Str(s))
            }
            Some(Token::Question) => {
                self.bump();
                let n = self.params;
                self.params += 1;
                Ok(AstExpr::Param(n))
            }
            Some(Token::LParen) => {
                self.bump();
                if self.at_kw("select") || self.at_kw("with") {
                    let q = self.select()?;
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(raw)) => {
                let lower = raw.to_ascii_lowercase();
                if lower == "null" {
                    self.bump();
                    return Ok(AstExpr::Null);
                }
                // Reserved words cannot start an expression: catches
                // malformed queries like `select from t`.
                if RESERVED.contains(&lower.as_str()) {
                    return Err(self.err("expected an expression"));
                }
                // `current timestamp` / `current_timestamp`
                if lower == "current_timestamp" {
                    self.bump();
                    return Ok(AstExpr::CurrentTimestamp);
                }
                if lower == "current" && self.peek2().is_some_and(|t| t.is_kw("timestamp")) {
                    self.bump();
                    self.bump();
                    return Ok(AstExpr::CurrentTimestamp);
                }
                self.bump();
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    if self.eat(&Token::Star) {
                        self.expect(&Token::RParen)?;
                        return Ok(AstExpr::Call {
                            name: lower,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(AstExpr::Call {
                        name: lower,
                        args,
                        star: false,
                    });
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let name = self.ident()?;
                    return Ok(AstExpr::Column {
                        qualifier: Some(lower),
                        name,
                    });
                }
                Ok(AstExpr::Column {
                    qualifier: None,
                    name: lower,
                })
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let s = parse_statement(
            "select oid, url from crawl where relevance > 0.5 order by oid desc limit 10",
        )
        .unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!("not a select"),
        };
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert!(q.where_.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].1, "desc");
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn figure3_bulkprobe_parses() {
        // Nearly verbatim Figure 3 (names adapted: stat_c0, taxonomy, document).
        let sql = "
        with
          partial(did, kcid, lpr1) as
           (select did, taxonomy.kcid,
                   sum(freq * (logtheta + logdenom))
            from stat_c0, document, taxonomy
            where taxonomy.pcid = 7
              and stat_c0.tid = document.tid
              and stat_c0.kcid = taxonomy.kcid
            group by did, taxonomy.kcid),
          doclen(did, len) as
           (select did, sum(freq) from document
            where tid in (select tid from stat_c0)
            group by did),
          complete(did, kcid, lpr2) as
           (select did, kcid, - len * logdenom
            from doclen, taxonomy where pcid = 7)
        select c.did, c.kcid, lpr2 + coalesce(lpr1, 0)
        from complete as c left outer join partial as p
          on c.did = p.did and c.kcid = p.kcid";
        let s = parse_statement(sql).unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.ctes.len(), 3);
        assert_eq!(q.ctes[0].cols, vec!["did", "kcid", "lpr1"]);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[1].kind, JoinKind::LeftOuter);
        assert!(q.from[1].on.is_some());
    }

    #[test]
    fn figure4_distiller_parses() {
        let stmts = parse_script(
            "delete from hubs;
             insert into hubs(oid, score)
               (select oid_src, sum(score * wgt_rev)
                from auth, link
                where sid_src <> sid_dst
                  and oid = oid_dst
                group by oid_src);
             update hubs set (score) = score /
               (select sum(score) from hubs)",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0], Statement::Delete { .. }));
        match &stmts[1] {
            Statement::Insert {
                table,
                cols,
                source,
            } => {
                assert_eq!(table, "hubs");
                assert_eq!(cols, &["oid", "score"]);
                assert!(matches!(source, InsertSource::Select(_)));
            }
            _ => panic!(),
        }
        match &stmts[2] {
            Statement::Update { sets, .. } => {
                assert_eq!(sets[0].0, "score");
                assert!(matches!(sets[0].1, AstExpr::Bin(BinOp::Div, _, _)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn monitoring_query_with_interval_and_current_timestamp() {
        let sql = "select minute(lastvisited), avg(exp(relevance))
                   from crawl
                   where lastvisited + 1 hour > current timestamp
                   group by minute(lastvisited)
                   order by minute(lastvisited)";
        let s = parse_statement(sql).unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.group_by.len(), 1);
        // `1 hour` became Int(3600) and current timestamp parsed.
        let w = q.where_.unwrap();
        let printed = format!("{w:?}");
        assert!(printed.contains("3600"), "{printed}");
        assert!(printed.contains("CurrentTimestamp"), "{printed}");
    }

    #[test]
    fn census_cte_query_parses() {
        let sql = "with census(kcid, cnt) as
                     (select kcid, count(oid) from crawl group by kcid)
                   select kcid, cnt, name from census, taxonomy
                   where census.kcid = taxonomy.kcid order by cnt";
        assert!(parse_statement(sql).is_ok());
    }

    #[test]
    fn hub_neighborhood_query_parses() {
        let sql = "select url, relevance from crawl where oid in
                     (select oid_dst from link
                      where oid_src in (select oid from hubs where score > 0.01)
                        and sid_src <> sid_dst)
                   and numtries = 0";
        assert!(parse_statement(sql).is_ok());
    }

    #[test]
    fn ddl_and_dml() {
        assert!(matches!(
            parse_statement("create table t (a int, b float, c text)").unwrap(),
            Statement::CreateTable { .. }
        ));
        assert!(matches!(
            parse_statement("create index i on t (a, b)").unwrap(),
            Statement::CreateIndex { .. }
        ));
        assert!(matches!(
            parse_statement("insert into t values (1, 2.5, 'x'), (2, 3.5, 'y')").unwrap(),
            Statement::Insert { .. }
        ));
        assert!(matches!(
            parse_statement("drop table t").unwrap(),
            Statement::DropTable { .. }
        ));
        assert!(matches!(
            parse_statement("delete from t where a = 1 or a = 2").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn count_star_and_not_in() {
        let s = parse_statement("select count(*) from t where a not in (1, 2)").unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        match &q.projections[0] {
            Projection::Expr {
                expr: AstExpr::Call { star, .. },
                ..
            } => assert!(star),
            p => panic!("unexpected projection {p:?}"),
        }
        match q.where_.as_ref().unwrap() {
            AstExpr::InList { negated, .. } => assert!(*negated),
            w => panic!("unexpected where {w:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let s = parse_statement("select 1 + 2 * 3 - -4").unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        // ((1 + (2*3)) - (-4))
        match &q.projections[0] {
            Projection::Expr {
                expr: AstExpr::Bin(BinOp::Sub, l, r),
                ..
            } => {
                assert!(matches!(**l, AstExpr::Bin(BinOp::Add, _, _)));
                assert!(matches!(**r, AstExpr::Neg(_)));
            }
            p => panic!("unexpected {p:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("selec 1").is_err());
        assert!(parse_statement("select from").is_err());
        assert!(parse_statement("select 1 extra garbage !").is_err());
        assert!(parse_statement("create table t (a blob)").is_err());
        assert!(parse_statement("insert into t").is_err());
    }

    #[test]
    fn aliases() {
        let s = parse_statement("select c.did d from complete c, partial as p").unwrap();
        let q = match s {
            Statement::Select(q) => q,
            _ => panic!(),
        };
        assert_eq!(q.from[0].item.alias.as_deref(), Some("c"));
        assert_eq!(q.from[1].item.alias.as_deref(), Some("p"));
        match &q.projections[0] {
            Projection::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("d")),
            _ => panic!(),
        }
    }
}
