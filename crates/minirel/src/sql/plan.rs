//! Logical planning: bound SELECT → relational algebra.
//!
//! [`plan_select_stmt`] turns a parsed `SelectStmt` into a [`SelectPlan`]:
//! a tree of [`Logical`] operators plus the subsidiary plans it depends
//! on (CTEs and uncorrelated subqueries). Planning performs the rewrites
//! the interpreter used to do implicitly, but as explicit, inspectable
//! structure:
//!
//! * **Predicate pushdown** — WHERE conjuncts that bind against a single
//!   source move into that source's scan node, where the lowering layer
//!   can turn them into index probes or pruned heap scans.
//! * **Projection pruning** — the set of referenced column names is
//!   computed once and recorded on each scan as a keep-mask.
//! * **Equi-join reordering** — comma-joined sources are joined greedily
//!   by estimated cardinality (catalog row counts × per-predicate
//!   selectivities) instead of textual order. The *output column order*
//!   contract is preserved by simulating the interpreter's textual
//!   greedy order symbolically and emitting a [`Logical::Permute`] above
//!   the reordered join tree, so `select *` and name resolution are
//!   byte-identical to the reference engine.
//!
//! Parameters (`?`), `current timestamp`, and uncorrelated subqueries
//! stay **symbolic** in the plan ([`Expr::Param`], [`Expr::Now`],
//! [`Expr::SubScalar`], [`Expr::InSub`]); the executor substitutes them
//! per execution, which is what makes cached prepared plans see fresh
//! parameter values, clocks, and subquery source tables.
//!
//! No I/O happens here beyond reading catalog statistics; all page
//! traffic belongs to [`super::lower`].

use crate::catalog::{Catalog, TableId};
use crate::error::{DbError, DbResult};
use crate::exec::agg::{AggCall, AggKind};
use crate::exec::expr::{BinOp, Expr, Func, UnOp};
use crate::sql::ast::*;
use crate::sql::bind::{
    ast_eq_loose, bindable, dealias, equi_keys, gather_cols, output_name, resolve_col, BoundCol,
};
use crate::value::Value;
use std::collections::HashMap;

/// A planned SELECT: its CTEs, its uncorrelated subqueries, and the
/// operator tree over them.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// CTE plans in definition order; each fills its slot before the body
    /// runs.
    pub ctes: Vec<CtePlan>,
    /// Uncorrelated subquery plans, executed (in order) before the body's
    /// expressions are specialized.
    pub subs: Vec<SubPlan>,
    /// The operator tree.
    pub root: Logical,
    /// Output column names.
    pub out_cols: Vec<BoundCol>,
    /// Row-count estimate of the output.
    pub est_rows: f64,
}

/// One CTE: a plan whose result is materialized into `slot`.
#[derive(Debug, Clone)]
pub struct CtePlan {
    /// CTE name (for EXPLAIN).
    pub name: String,
    /// Global materialization slot (unique across the whole statement).
    pub slot: usize,
    /// Defining query.
    pub plan: SelectPlan,
}

/// What an uncorrelated subquery's result is used as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubKind {
    /// Scalar value ([`Expr::SubScalar`]); 0 rows → NULL, >1 rows → error.
    Scalar,
    /// Value list for `IN` ([`Expr::InSub`]).
    List,
}

/// One uncorrelated subquery of a select body.
#[derive(Debug, Clone)]
pub struct SubPlan {
    /// How the body consumes the result.
    pub kind: SubKind,
    /// The subquery's plan.
    pub plan: SelectPlan,
}

/// Logical operators. Expressions are bound (positional); every node's
/// output arity is recoverable via [`arity`].
#[derive(Debug, Clone)]
pub enum Logical {
    /// SELECT without FROM: one empty row.
    Nothing,
    /// Base-table scan with pushed-down filters and a keep-mask for
    /// projection pruning (`None` = all columns needed).
    Scan {
        /// Table name (for EXPLAIN).
        table: String,
        /// Catalog id.
        tid: TableId,
        /// Schema arity (rows keep full width; pruned columns are NULL).
        arity: usize,
        /// Which columns must actually be decoded.
        keep: Option<Vec<bool>>,
        /// Pushed-down predicates, in consumption order.
        filters: Vec<Expr>,
    },
    /// Scan of a materialized CTE slot.
    CteScan {
        /// CTE name (for EXPLAIN).
        name: String,
        /// Materialization slot.
        slot: usize,
        /// Output arity.
        arity: usize,
        /// Pushed-down predicates.
        filters: Vec<Expr>,
    },
    /// Equi-join (lowering picks sort-merge or nested-loop).
    Join {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// Left key columns.
        lk: Vec<usize>,
        /// Right key columns.
        rk: Vec<usize>,
        /// LEFT OUTER?
        outer: bool,
        /// Estimated left input rows (drives the lowering choice).
        lest: f64,
        /// Estimated right input rows.
        rest: f64,
    },
    /// Nested-loop join with an arbitrary predicate over the
    /// concatenated row (`Lit(1)` = cartesian product).
    NlJoin {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
        /// Join predicate over `left ++ right`.
        pred: Expr,
        /// LEFT OUTER?
        outer: bool,
    },
    /// Column permutation restoring the interpreter's canonical column
    /// order above a cost-reordered join tree: output column `j` is
    /// input column `map[j]`.
    Permute {
        /// Input.
        input: Box<Logical>,
        /// Canonical position → physical position.
        map: Vec<usize>,
    },
    /// Residual predicates, applied in order.
    Filter {
        /// Input.
        input: Box<Logical>,
        /// Predicates; a row must pass all, evaluated left to right.
        preds: Vec<Expr>,
    },
    /// Hash aggregation; output columns are `group values ++ aggregates`.
    Agg {
        /// Input.
        input: Box<Logical>,
        /// Group-by expressions.
        group: Vec<Expr>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// External sort.
    Sort {
        /// Input.
        input: Box<Logical>,
        /// `(key expr, descending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// LIMIT (applied before projection, as the dialect specifies).
    Limit {
        /// Input.
        input: Box<Logical>,
        /// Max rows.
        n: u64,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<Logical>,
        /// Output expressions.
        exprs: Vec<Expr>,
    },
    /// DISTINCT over projected rows.
    Distinct {
        /// Input.
        input: Box<Logical>,
    },
}

/// Output arity of a logical node.
pub fn arity(node: &Logical) -> usize {
    match node {
        Logical::Nothing => 0,
        Logical::Scan { arity, .. } | Logical::CteScan { arity, .. } => *arity,
        Logical::Join { left, right, .. } | Logical::NlJoin { left, right, .. } => {
            arity(left) + arity(right)
        }
        Logical::Permute { map, .. } => map.len(),
        Logical::Filter { input, .. }
        | Logical::Sort { input, .. }
        | Logical::Limit { input, .. }
        | Logical::Distinct { input } => arity(input),
        Logical::Agg { group, aggs, .. } => group.len() + aggs.len(),
        Logical::Project { exprs, .. } => exprs.len(),
    }
}

/// Per-conjunct selectivity guesses (classic System R constants, scaled
/// for the crawler's skewed columns).
fn selectivity(c: &AstExpr) -> f64 {
    match c {
        AstExpr::Bin(BinOp::Eq, ..) => 0.05,
        AstExpr::Bin(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, ..) => 0.3,
        _ => 0.5,
    }
}

/// Plan a SELECT statement. Returns the plan, the number of CTE slots the
/// whole statement needs, and the number of `?` parameters it takes.
pub fn plan_select_stmt(
    catalog: &Catalog,
    sel: &SelectStmt,
) -> DbResult<(SelectPlan, usize, usize)> {
    let mut p = Planner {
        catalog,
        scope: HashMap::new(),
        next_slot: 0,
        max_param: None,
    };
    let plan = p.plan_select(sel)?;
    Ok((plan, p.next_slot, p.max_param.map_or(0, |m| m + 1)))
}

/// An in-scope CTE: its slot and output shape.
#[derive(Clone)]
struct CteInfo {
    slot: usize,
    cols: Vec<BoundCol>,
    est: f64,
}

/// One FROM source before joins: its columns and its (filter-bearing)
/// scan node.
struct Src {
    cols: Vec<BoundCol>,
    node: Logical,
    est: f64,
}

struct Planner<'a> {
    catalog: &'a Catalog,
    /// Lexical CTE scope (saved/restored around each SELECT).
    scope: HashMap<String, CteInfo>,
    /// Next global CTE slot.
    next_slot: usize,
    /// Highest `?` index seen.
    max_param: Option<usize>,
}

impl<'a> Planner<'a> {
    fn plan_select(&mut self, sel: &SelectStmt) -> DbResult<SelectPlan> {
        let saved = self.scope.clone();
        let result = self.plan_select_inner(sel);
        self.scope = saved;
        result
    }

    fn plan_select_inner(&mut self, sel: &SelectStmt) -> DbResult<SelectPlan> {
        let mut ctes = Vec::new();
        for cte in &sel.ctes {
            let plan = self.plan_select(&cte.query)?;
            let cols: Vec<BoundCol> = if !cte.cols.is_empty() {
                if cte.cols.len() != plan.out_cols.len() {
                    return Err(DbError::Binding(format!(
                        "CTE {} declares {} columns but query produces {}",
                        cte.name,
                        cte.cols.len(),
                        plan.out_cols.len()
                    )));
                }
                cte.cols
                    .iter()
                    .map(|n| BoundCol {
                        qualifier: Some(cte.name.clone()),
                        name: n.clone(),
                    })
                    .collect()
            } else {
                plan.out_cols
                    .iter()
                    .map(|c| BoundCol {
                        qualifier: Some(cte.name.clone()),
                        name: c.name.clone(),
                    })
                    .collect()
            };
            let slot = self.next_slot;
            self.next_slot += 1;
            self.scope.insert(
                cte.name.clone(),
                CteInfo {
                    slot,
                    cols,
                    est: plan.est_rows,
                },
            );
            ctes.push(CtePlan {
                name: cte.name.clone(),
                slot,
                plan,
            });
        }
        let mut subs = Vec::new();
        let (root, out_cols, est_rows) = self.plan_body(sel, &mut subs)?;
        Ok(SelectPlan {
            ctes,
            subs,
            root,
            out_cols,
            est_rows,
        })
    }

    // ------------------------------------------------------------ binding

    /// Bind an AST expression against `cols`, planning any subqueries it
    /// contains into `subs`.
    fn bind_expr(
        &mut self,
        e: &AstExpr,
        cols: &[BoundCol],
        subs: &mut Vec<SubPlan>,
    ) -> DbResult<Expr> {
        match e {
            AstExpr::Column { qualifier, name } => {
                let i = resolve_col(cols, qualifier.as_deref(), name)?;
                Ok(Expr::Col(i))
            }
            AstExpr::Int(i) => Ok(Expr::Lit(Value::Int(*i))),
            AstExpr::Float(f) => Ok(Expr::Lit(Value::Float(*f))),
            AstExpr::Str(s) => Ok(Expr::Lit(Value::Str(s.clone()))),
            AstExpr::Null => Ok(Expr::Lit(Value::Null)),
            AstExpr::CurrentTimestamp => Ok(Expr::Now),
            AstExpr::Param(i) => {
                self.max_param = Some(self.max_param.map_or(*i, |m| m.max(*i)));
                Ok(Expr::Param(*i))
            }
            AstExpr::Bin(op, l, r) => Ok(Expr::bin(
                *op,
                self.bind_expr(l, cols, subs)?,
                self.bind_expr(r, cols, subs)?,
            )),
            AstExpr::Neg(x) => Ok(Expr::Un(
                UnOp::Neg,
                Box::new(self.bind_expr(x, cols, subs)?),
            )),
            AstExpr::Not(x) => Ok(Expr::Un(
                UnOp::Not,
                Box::new(self.bind_expr(x, cols, subs)?),
            )),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull(
                Box::new(self.bind_expr(expr, cols, subs)?),
                *negated,
            )),
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let bound = self.bind_expr(expr, cols, subs)?;
                // List items are row-free (the interpreter evaluates them
                // eagerly at bind time). Fold constant items to values;
                // items holding deferred leaves (params, subqueries, the
                // clock) force a desugared comparison chain instead.
                let items: Vec<Expr> = list
                    .iter()
                    .map(|item| self.bind_expr(item, &[], subs))
                    .collect::<DbResult<_>>()?;
                if items.iter().all(|it| !has_deferred(it)) {
                    let empty: crate::value::Row = Vec::new();
                    let mut vals = Vec::with_capacity(items.len());
                    for it in &items {
                        vals.push(it.eval(&empty)?);
                    }
                    return Ok(Expr::InList(Box::new(bound), vals, *negated));
                }
                // v IN (a, b) → v = a OR v = b (NULL probe yields false on
                // its own); v NOT IN (a, b) needs an explicit NULL-probe
                // guard to keep the engine's "NULL NOT IN → false" rule.
                let mut chain = Expr::Lit(Value::Int(0));
                for (i, it) in items.into_iter().enumerate() {
                    let eq = Expr::bin(BinOp::Eq, bound.clone(), it);
                    chain = if i == 0 {
                        eq
                    } else {
                        Expr::bin(BinOp::Or, chain, eq)
                    };
                }
                if *negated {
                    Ok(Expr::bin(
                        BinOp::And,
                        Expr::Un(UnOp::Not, Box::new(Expr::IsNull(Box::new(bound), false))),
                        Expr::Un(UnOp::Not, Box::new(chain)),
                    ))
                } else {
                    Ok(chain)
                }
            }
            AstExpr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let bound = self.bind_expr(expr, cols, subs)?;
                let plan = self.plan_select(query)?;
                if plan.out_cols.len() != 1 {
                    return Err(DbError::Binding(
                        "IN subquery must produce exactly one column".into(),
                    ));
                }
                let idx = subs.len();
                subs.push(SubPlan {
                    kind: SubKind::List,
                    plan,
                });
                Ok(Expr::InSub(Box::new(bound), idx, *negated))
            }
            AstExpr::ScalarSubquery(query) => {
                let plan = self.plan_select(query)?;
                if plan.out_cols.len() != 1 {
                    return Err(DbError::Binding(
                        "scalar subquery must produce exactly one column".into(),
                    ));
                }
                let idx = subs.len();
                subs.push(SubPlan {
                    kind: SubKind::Scalar,
                    plan,
                });
                Ok(Expr::SubScalar(idx))
            }
            AstExpr::Call { name, args, star } => {
                if *star || AggKind::parse(name).is_some() {
                    return Err(DbError::Binding(format!(
                        "aggregate {name}() is not allowed in this context"
                    )));
                }
                let f = Func::parse(name)
                    .ok_or_else(|| DbError::Binding(format!("unknown function {name}()")))?;
                let bound: Vec<Expr> = args
                    .iter()
                    .map(|a| self.bind_expr(a, cols, subs))
                    .collect::<DbResult<_>>()?;
                Ok(Expr::Call(f, bound))
            }
        }
    }

    /// Planner twin of the interpreter's aggregate-context rewrite:
    /// projection/order expressions become expressions over
    /// `[group values ++ aggregate results]`.
    fn rewrite_agg(
        &mut self,
        e: &AstExpr,
        group_by: &[AstExpr],
        input: &[BoundCol],
        aggs: &mut Vec<AggCall>,
        subs: &mut Vec<SubPlan>,
    ) -> DbResult<Expr> {
        for (i, g) in group_by.iter().enumerate() {
            if ast_eq_loose(e, g) {
                return Ok(Expr::Col(i));
            }
        }
        match e {
            AstExpr::Call { name, args, star } => {
                if let Some(kind) = AggKind::parse(name) {
                    let kind = if *star { AggKind::CountStar } else { kind };
                    let arg = if *star {
                        Expr::Lit(Value::Int(1))
                    } else {
                        if args.len() != 1 {
                            return Err(DbError::Binding(format!(
                                "{name}() takes exactly one argument"
                            )));
                        }
                        self.bind_expr(&args[0], input, subs)?
                    };
                    let idx = group_by.len() + aggs.len();
                    aggs.push(AggCall { kind, arg });
                    return Ok(Expr::Col(idx));
                }
                let f = Func::parse(name)
                    .ok_or_else(|| DbError::Binding(format!("unknown function {name}()")))?;
                let rewritten: Vec<Expr> = args
                    .iter()
                    .map(|a| self.rewrite_agg(a, group_by, input, aggs, subs))
                    .collect::<DbResult<_>>()?;
                Ok(Expr::Call(f, rewritten))
            }
            AstExpr::Bin(op, l, r) => Ok(Expr::bin(
                *op,
                self.rewrite_agg(l, group_by, input, aggs, subs)?,
                self.rewrite_agg(r, group_by, input, aggs, subs)?,
            )),
            AstExpr::Neg(x) => Ok(Expr::Un(
                UnOp::Neg,
                Box::new(self.rewrite_agg(x, group_by, input, aggs, subs)?),
            )),
            AstExpr::Not(x) => Ok(Expr::Un(
                UnOp::Not,
                Box::new(self.rewrite_agg(x, group_by, input, aggs, subs)?),
            )),
            AstExpr::Int(_)
            | AstExpr::Float(_)
            | AstExpr::Str(_)
            | AstExpr::Null
            | AstExpr::CurrentTimestamp
            | AstExpr::Param(_)
            | AstExpr::ScalarSubquery(_) => self.bind_expr(e, &[], subs),
            AstExpr::Column { qualifier, name } => Err(DbError::Binding(format!(
                "column {}{name} must appear in GROUP BY or inside an aggregate",
                qualifier
                    .as_deref()
                    .map(|q| format!("{q}."))
                    .unwrap_or_default()
            ))),
            other => Err(DbError::Binding(format!(
                "unsupported expression in aggregate context: {other:?}"
            ))),
        }
    }

    // ------------------------------------------------------------ sources

    fn load_src(
        &mut self,
        item: &FromItem,
        wanted: Option<&std::collections::HashSet<String>>,
    ) -> DbResult<Src> {
        let binding = item.binding_name().to_ascii_lowercase();
        if let Some(info) = self.scope.get(&item.table) {
            let cols: Vec<BoundCol> = info
                .cols
                .iter()
                .map(|c| BoundCol {
                    qualifier: Some(binding.clone()),
                    name: c.name.clone(),
                })
                .collect();
            let arity = cols.len();
            return Ok(Src {
                cols,
                node: Logical::CteScan {
                    name: item.table.clone(),
                    slot: info.slot,
                    arity,
                    filters: vec![],
                },
                est: info.est,
            });
        }
        let tid = self.catalog.table_id(&item.table)?;
        let t = self.catalog.table(tid);
        let cols: Vec<BoundCol> = t
            .schema
            .columns
            .iter()
            .map(|c| BoundCol {
                qualifier: Some(binding.clone()),
                name: c.name.clone(),
            })
            .collect();
        let keep = wanted.map(|names| {
            cols.iter()
                .map(|c| names.contains(&c.name))
                .collect::<Vec<_>>()
        });
        let arity = cols.len();
        Ok(Src {
            cols,
            node: Logical::Scan {
                table: item.table.clone(),
                tid,
                arity,
                keep,
                filters: vec![],
            },
            est: (t.heap.len() as f64).max(1.0),
        })
    }

    /// Push every still-unconsumed conjunct that binds against this
    /// source alone into its scan node.
    fn apply_pushdown(
        &mut self,
        src: &mut Src,
        conjs: &[AstExpr],
        consumed: &mut [bool],
        subs: &mut Vec<SubPlan>,
    ) -> DbResult<()> {
        for (i, c) in conjs.iter().enumerate() {
            if !consumed[i] && bindable(c, &src.cols) {
                consumed[i] = true;
                let e = self.bind_expr(c, &src.cols, subs)?;
                src.est = (src.est * selectivity(c)).max(1.0);
                add_filter(&mut src.node, e);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ body

    #[allow(clippy::type_complexity)]
    fn plan_body(
        &mut self,
        sel: &SelectStmt,
        subs: &mut Vec<SubPlan>,
    ) -> DbResult<(Logical, Vec<BoundCol>, f64)> {
        let wanted = gather_cols(sel);
        let where_conjuncts: Vec<AstExpr> = sel
            .where_
            .clone()
            .map(AstExpr::conjuncts)
            .unwrap_or_default();
        let mut consumed = vec![false; where_conjuncts.len()];

        let mut acc: Src = if sel.from.is_empty() {
            Src {
                cols: vec![],
                node: Logical::Nothing,
                est: 1.0,
            }
        } else {
            self.load_src(&sel.from[0].item, wanted.as_ref())?
        };
        self.apply_pushdown(&mut acc, &where_conjuncts, &mut consumed, subs)?;

        // Explicit JOIN ... ON items fold into `acc` in textual order
        // (both engines agree); comma items accumulate for the greedy
        // ordering below.
        let mut pending: Vec<(usize, Src)> = Vec::new();
        let mut next_id = 1usize;
        for fc in sel.from.iter().skip(1) {
            match fc.kind {
                JoinKind::Cross => {
                    let mut s = self.load_src(&fc.item, wanted.as_ref())?;
                    self.apply_pushdown(&mut s, &where_conjuncts, &mut consumed, subs)?;
                    pending.push((next_id, s));
                    next_id += 1;
                }
                JoinKind::Inner | JoinKind::LeftOuter => {
                    let mut rel = self.load_src(&fc.item, wanted.as_ref())?;
                    if fc.kind == JoinKind::Inner {
                        self.apply_pushdown(&mut rel, &where_conjuncts, &mut consumed, subs)?;
                    }
                    let on = fc
                        .on
                        .clone()
                        .ok_or_else(|| DbError::Binding("JOIN requires an ON predicate".into()))?;
                    let on_conj = on.clone().conjuncts();
                    let (used, lk, rk) = equi_keys(&on_conj, &acc.cols, &rel.cols);
                    let outer = fc.kind == JoinKind::LeftOuter;
                    if used.len() == on_conj.len() && !lk.is_empty() {
                        acc = join_src(acc, rel, lk, rk, outer);
                    } else {
                        let cols: Vec<BoundCol> =
                            acc.cols.iter().chain(rel.cols.iter()).cloned().collect();
                        let pred = self.bind_expr(&on, &cols, subs)?;
                        let est = (acc.est * rel.est * 0.5).max(1.0);
                        acc = Src {
                            cols,
                            node: Logical::NlJoin {
                                left: Box::new(acc.node),
                                right: Box::new(rel.node),
                                pred,
                                outer,
                            },
                            est,
                        };
                    }
                }
            }
        }

        // --- canonical column order: simulate the interpreter's textual
        // greedy join order symbolically (it is data-independent) ---
        let mut canon_cols: Vec<BoundCol> = acc.cols.clone();
        let mut canon_order: Vec<(usize, usize)> = vec![(0, acc.cols.len())];
        {
            let mut consumed_c = consumed.clone();
            let mut pend: Vec<(usize, Vec<BoundCol>)> = pending
                .iter()
                .map(|(id, s)| (*id, s.cols.clone()))
                .collect();
            while !pend.is_empty() {
                let unconsumed: Vec<AstExpr> = where_conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !consumed_c[*i])
                    .map(|(_, c)| c.clone())
                    .collect();
                let unconsumed_idx: Vec<usize> = (0..where_conjuncts.len())
                    .filter(|i| !consumed_c[*i])
                    .collect();
                let mut chosen: Option<(usize, Vec<usize>)> = None;
                for (pi, (_, cols)) in pend.iter().enumerate() {
                    let (used, lk, _) = equi_keys(&unconsumed, &canon_cols, cols);
                    if !lk.is_empty() {
                        chosen = Some((pi, used));
                        break;
                    }
                }
                let (pi, used) = chosen.unwrap_or((0, Vec::new()));
                for u in used {
                    consumed_c[unconsumed_idx[u]] = true;
                }
                let (id, cols) = pend.remove(pi);
                canon_order.push((id, cols.len()));
                canon_cols.extend(cols);
            }
        }

        // --- physical join order: greedy by estimated cardinality ---
        let mut phys_order: Vec<(usize, usize)> = vec![(0, canon_order[0].1)];
        while !pending.is_empty() {
            let unconsumed: Vec<AstExpr> = where_conjuncts
                .iter()
                .enumerate()
                .filter(|(i, _)| !consumed[*i])
                .map(|(_, c)| c.clone())
                .collect();
            let unconsumed_idx: Vec<usize> = (0..where_conjuncts.len())
                .filter(|i| !consumed[*i])
                .collect();
            let mut best: Option<(usize, Vec<usize>, Vec<usize>, Vec<usize>)> = None;
            for (pi, (_, s)) in pending.iter().enumerate() {
                let (used, lk, rk) = equi_keys(&unconsumed, &acc.cols, &s.cols);
                if !lk.is_empty() {
                    let better = match &best {
                        None => true,
                        Some((bpi, ..)) => s.est < pending[*bpi].1.est,
                    };
                    if better {
                        best = Some((pi, used, lk, rk));
                    }
                }
            }
            match best {
                Some((pi, used, lk, rk)) => {
                    for u in used {
                        consumed[unconsumed_idx[u]] = true;
                    }
                    let (id, s) = pending.remove(pi);
                    phys_order.push((id, s.cols.len()));
                    acc = join_src(acc, s, lk, rk, false);
                }
                None => {
                    // Cartesian: take the smallest estimated side first to
                    // keep the intermediate product small.
                    let pi = (0..pending.len())
                        .min_by(|&a, &b| {
                            pending[a]
                                .1
                                .est
                                .partial_cmp(&pending[b].1.est)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("pending is non-empty");
                    let (id, s) = pending.remove(pi);
                    phys_order.push((id, s.cols.len()));
                    let cols: Vec<BoundCol> =
                        acc.cols.iter().chain(s.cols.iter()).cloned().collect();
                    let est = (acc.est * s.est).max(1.0);
                    acc = Src {
                        cols,
                        node: Logical::NlJoin {
                            left: Box::new(acc.node),
                            right: Box::new(s.node),
                            pred: Expr::Lit(Value::Int(1)),
                            outer: false,
                        },
                        est,
                    };
                }
            }
        }

        // Restore canonical column order above the reordered join tree.
        let mut node = acc.node;
        if canon_order != phys_order {
            let mut phys_off: HashMap<usize, usize> = HashMap::new();
            let mut off = 0usize;
            for (id, ar) in &phys_order {
                phys_off.insert(*id, off);
                off += ar;
            }
            let mut map = Vec::with_capacity(off);
            for (id, ar) in &canon_order {
                let base = phys_off[id];
                map.extend(base..base + ar);
            }
            node = Logical::Permute {
                input: Box::new(node),
                map,
            };
        }
        let mut est = acc.est;

        // Residual WHERE conjuncts (everything not consumed by pushdown
        // or physical join keys), bound against the canonical columns.
        let residuals: Vec<Expr> = where_conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !consumed[*i])
            .map(|(_, c)| {
                est = (est * selectivity(c)).max(1.0);
                self.bind_expr(c, &canon_cols, subs)
            })
            .collect::<DbResult<_>>()?;
        if !residuals.is_empty() {
            node = Logical::Filter {
                input: Box::new(node),
                preds: residuals,
            };
        }

        // ----- aggregation or plain projection -----
        let has_agg = !sel.group_by.is_empty()
            || sel.projections.iter().any(|p| match p {
                Projection::Expr { expr, .. } => expr.has_aggregate(),
                Projection::Star => false,
            });
        let aliases: Vec<(Option<String>, AstExpr)> = sel
            .projections
            .iter()
            .filter_map(|p| match p {
                Projection::Expr { expr, alias } => Some((alias.clone(), expr.clone())),
                Projection::Star => None,
            })
            .collect();

        let (proj_exprs, out_cols) = if has_agg {
            let mut aggs: Vec<AggCall> = Vec::new();
            let group_bound: Vec<Expr> = sel
                .group_by
                .iter()
                .map(|g| self.bind_expr(g, &canon_cols, subs))
                .collect::<DbResult<_>>()?;
            let mut proj_exprs = Vec::new();
            let mut out_cols = Vec::new();
            for (i, p) in sel.projections.iter().enumerate() {
                match p {
                    Projection::Star => {
                        return Err(DbError::Binding(
                            "SELECT * is not allowed with GROUP BY/aggregates".into(),
                        ))
                    }
                    Projection::Expr { expr, alias } => {
                        let e =
                            self.rewrite_agg(expr, &sel.group_by, &canon_cols, &mut aggs, subs)?;
                        proj_exprs.push(e);
                        out_cols.push(BoundCol {
                            qualifier: None,
                            name: output_name(expr, alias.as_ref(), i),
                        });
                    }
                }
            }
            let order_keys: Vec<(Expr, bool)> = sel
                .order_by
                .iter()
                .map(|(e, desc)| {
                    let target = dealias(e, &aliases);
                    let bound =
                        self.rewrite_agg(&target, &sel.group_by, &canon_cols, &mut aggs, subs)?;
                    Ok((bound, *desc))
                })
                .collect::<DbResult<_>>()?;
            est = if sel.group_by.is_empty() {
                1.0
            } else {
                est.sqrt().max(1.0)
            };
            node = Logical::Agg {
                input: Box::new(node),
                group: group_bound,
                aggs,
            };
            if !order_keys.is_empty() {
                node = Logical::Sort {
                    input: Box::new(node),
                    keys: order_keys,
                };
            }
            (proj_exprs, out_cols)
        } else {
            let order_keys: Vec<(Expr, bool)> = sel
                .order_by
                .iter()
                .map(|(e, desc)| {
                    let target = dealias(e, &aliases);
                    Ok((self.bind_expr(&target, &canon_cols, subs)?, *desc))
                })
                .collect::<DbResult<_>>()?;
            if !order_keys.is_empty() {
                node = Logical::Sort {
                    input: Box::new(node),
                    keys: order_keys,
                };
            }
            let mut proj_exprs = Vec::new();
            let mut out_cols = Vec::new();
            for (i, p) in sel.projections.iter().enumerate() {
                match p {
                    Projection::Star => {
                        for (j, c) in canon_cols.iter().enumerate() {
                            proj_exprs.push(Expr::Col(j));
                            out_cols.push(c.clone());
                        }
                    }
                    Projection::Expr { expr, alias } => {
                        proj_exprs.push(self.bind_expr(expr, &canon_cols, subs)?);
                        out_cols.push(BoundCol {
                            qualifier: None,
                            name: output_name(expr, alias.as_ref(), i),
                        });
                    }
                }
            }
            (proj_exprs, out_cols)
        };

        if let Some(n) = sel.limit {
            node = Logical::Limit {
                input: Box::new(node),
                n,
            };
            est = est.min(n as f64);
        }
        node = Logical::Project {
            input: Box::new(node),
            exprs: proj_exprs,
        };
        if sel.distinct {
            node = Logical::Distinct {
                input: Box::new(node),
            };
        }
        Ok((node, out_cols, est))
    }
}

/// Does this bound expression hold an execution-time leaf (parameter,
/// subquery slot, or the session clock)?
fn has_deferred(e: &Expr) -> bool {
    match e {
        Expr::Param(_) | Expr::SubScalar(_) | Expr::InSub(..) | Expr::Now => true,
        Expr::Col(_) | Expr::Lit(_) => false,
        Expr::Bin(_, l, r) => has_deferred(l) || has_deferred(r),
        Expr::Un(_, x) | Expr::IsNull(x, _) => has_deferred(x),
        Expr::InList(x, _, _) => has_deferred(x),
        Expr::Call(_, args) => args.iter().any(has_deferred),
    }
}

/// Attach a pushed-down predicate to a source node.
fn add_filter(node: &mut Logical, e: Expr) {
    match node {
        Logical::Scan { filters, .. } | Logical::CteScan { filters, .. } => filters.push(e),
        Logical::Filter { preds, .. } => preds.push(e),
        other => {
            let input = std::mem::replace(other, Logical::Nothing);
            *other = Logical::Filter {
                input: Box::new(input),
                preds: vec![e],
            };
        }
    }
}

/// Combine two sources with an equi-join node.
fn join_src(left: Src, right: Src, lk: Vec<usize>, rk: Vec<usize>, outer: bool) -> Src {
    let cols: Vec<BoundCol> = left.cols.iter().chain(right.cols.iter()).cloned().collect();
    let est = if outer {
        left.est.max(1.0)
    } else {
        left.est.max(right.est)
    };
    Src {
        cols,
        node: Logical::Join {
            left: Box::new(left.node),
            right: Box::new(right.node),
            lk,
            rk,
            outer,
            lest: left.est,
            rest: right.est,
        },
        est,
    }
}
