//! SQL lexer.
//!
//! Identifiers are case-insensitive; keywords are recognized by the parser
//! from `Ident` tokens. String literals use single quotes with `''` as the
//! escape. Comments: `-- to end of line` and `/* ... */`.

use crate::error::{DbError, DbResult};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved; compare folded).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*` (both projection star and multiplication)
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `?` — prepared-statement parameter placeholder.
    Question,
}

impl Token {
    /// Is this token the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Question => write!(f, "?"),
        }
    }
}

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err =
        |i: usize, msg: &str| -> DbError { DbError::Parse(format!("{msg} at byte {i} of query")) };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(start, "unterminated block comment"));
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Ne);
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err(start, "unterminated string literal"));
                    }
                    if b[i] == b'\'' {
                        if i + 1 < b.len() && b[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(b[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&b[start..i]).expect("ascii digits");
                if is_float {
                    out.push(Token::Float(
                        text.parse().map_err(|_| err(start, "bad float literal"))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|_| err(start, "integer literal out of range"))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(
                    std::str::from_utf8(&b[start..i])
                        .expect("ascii ident")
                        .to_owned(),
                ));
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'?' => {
                out.push(Token::Question);
                i += 1;
            }
            other => {
                return Err(err(i, &format!("unexpected character '{}'", other as char)));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let toks = tokenize("select oid, relevance from CRAWL where numtries >= 2").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert!(toks[0].is_kw("SELECT"));
        assert_eq!(toks[2], Token::Comma);
        assert!(toks.contains(&Token::Ge));
        assert_eq!(toks.last(), Some(&Token::Int(2)));
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("1 2.5 1e3 1.5e-2 'it''s' 'x'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.015),
                Token::Str("it's".into()),
                Token::Str("x".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("a<>b a!=b a<=b a>=b a<b a>b a=b a.b").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Ne,
                &Token::Ne,
                &Token::Le,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq,
                &Token::Dot
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("select 1 -- trailing\n/* block\ncomment */ , 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Int(1),
                Token::Comma,
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn errors_have_positions() {
        assert!(tokenize("select 'unterminated").is_err());
        assert!(tokenize("select #").is_err());
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn negative_handled_by_parser_not_lexer() {
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Minus, Token::Int(5)]);
    }
}
