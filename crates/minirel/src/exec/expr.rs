//! Bound (physical) expressions: evaluated against a row by column index.
//!
//! The SQL front-end lowers `AstExpr` into this form after name resolution;
//! the classifier/distiller hot paths construct these directly.

use crate::error::{DbError, DbResult};
use crate::value::{Row, Value};
use std::cmp::Ordering;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division when both sides are Int; NULL on divide-by-zero
    /// would hide bugs, so it errors instead)
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// Scalar functions available in the dialect — exactly those the paper's
/// printed SQL uses, plus a couple of numeric conveniences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `exp(x)` — used by the monitoring query `avg(exp(relevance))`.
    Exp,
    /// Natural log.
    Ln,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// `coalesce(a, b, …)` — Figure 3 uses `coalesce(lpr1, 0)`.
    Coalesce,
    /// `minute(ts)` — the §3.7 monitor groups by `minute(lastvisited)`;
    /// timestamps are integer seconds, so this is `ts / 60`.
    Minute,
}

impl Func {
    /// Resolve a function name.
    pub fn parse(name: &str) -> Option<Func> {
        Some(match name.to_ascii_lowercase().as_str() {
            "exp" => Func::Exp,
            "ln" | "log" => Func::Ln,
            "abs" => Func::Abs,
            "sqrt" => Func::Sqrt,
            "coalesce" => Func::Coalesce,
            "minute" => Func::Minute,
            _ => return None,
        })
    }
}

/// A bound expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column of the input row, by position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Scalar function call.
    Call(Func, Vec<Expr>),
    /// `expr IN (v1, v2, …)` — subqueries are materialized to this.
    InList(Box<Expr>, Vec<Value>, /*negated=*/ bool),
    /// `expr IS NULL` / `IS NOT NULL`.
    IsNull(Box<Expr>, /*negated=*/ bool),
    /// `?` placeholder (0-based). Plans keep these symbolic; the executor
    /// substitutes the bound value per execution. Evaluating one directly
    /// is an error — a plan leaked out without specialization.
    Param(usize),
    /// Scalar subquery slot: index into the enclosing plan's subquery
    /// list. Substituted with the subquery's value per execution.
    SubScalar(usize),
    /// `expr [NOT] IN (subquery slot)`. Substituted with [`Expr::InList`]
    /// once the subquery has run (per execution, so a mutated source
    /// table is observed by cached prepared plans).
    InSub(Box<Expr>, usize, /*negated=*/ bool),
    /// `current timestamp` — reads the session clock at execution time,
    /// so cached plans see clock updates.
    Now,
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Shorthand: binary op.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Evaluate against `row`.
    pub fn eval(&self, row: &Row) -> DbResult<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Eval(format!("column index {i} out of bounds"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, l, r) => {
                // Short-circuit logic ops.
                match op {
                    BinOp::And => {
                        return Ok(Value::Int(
                            (l.eval(row)?.is_truthy() && r.eval(row)?.is_truthy()) as i64,
                        ))
                    }
                    BinOp::Or => {
                        return Ok(Value::Int(
                            (l.eval(row)?.is_truthy() || r.eval(row)?.is_truthy()) as i64,
                        ))
                    }
                    _ => {}
                }
                let lv = l.eval(row)?;
                let rv = r.eval(row)?;
                eval_bin(*op, lv, rv)
            }
            Expr::Un(op, e) => {
                let v = e.eval(row)?;
                match op {
                    UnOp::Not => Ok(Value::Int((!v.is_truthy()) as i64)),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        Value::Str(_) => Err(DbError::Eval("cannot negate a string".into())),
                    },
                }
            }
            Expr::Call(f, args) => eval_call(*f, args, row),
            Expr::InList(e, list, negated) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Int(0));
                }
                let found = list.iter().any(|x| x == &v);
                Ok(Value::Int((found != *negated) as i64))
            }
            Expr::IsNull(e, negated) => {
                let v = e.eval(row)?;
                Ok(Value::Int((v.is_null() != *negated) as i64))
            }
            Expr::Param(i) => Err(DbError::Eval(format!(
                "unbound parameter ?{} (execute through a prepared statement)",
                i + 1
            ))),
            Expr::SubScalar(_) | Expr::InSub(..) | Expr::Now => Err(DbError::Eval(
                "unspecialized plan expression evaluated directly".into(),
            )),
        }
    }

    /// Rewrite column indexes through `map` (used when an operator reorders
    /// or prunes its input columns).
    pub fn remap(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, l, r) => Expr::bin(*op, l.remap(map), r.remap(map)),
            Expr::Un(op, e) => Expr::Un(*op, Box::new(e.remap(map))),
            Expr::Call(f, args) => Expr::Call(*f, args.iter().map(|a| a.remap(map)).collect()),
            Expr::InList(e, list, n) => Expr::InList(Box::new(e.remap(map)), list.clone(), *n),
            Expr::IsNull(e, n) => Expr::IsNull(Box::new(e.remap(map)), *n),
            Expr::Param(i) => Expr::Param(*i),
            Expr::SubScalar(i) => Expr::SubScalar(*i),
            Expr::InSub(e, s, n) => Expr::InSub(Box::new(e.remap(map)), *s, *n),
            Expr::Now => Expr::Now,
        }
    }
}

fn numeric_pair(l: &Value, r: &Value, op: &str) -> DbResult<(f64, f64, bool)> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok((*a as f64, *b as f64, true)),
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| DbError::Eval(format!("{op}: non-numeric operand {l}")))?;
            let b = r
                .as_f64()
                .ok_or_else(|| DbError::Eval(format!("{op}: non-numeric operand {r}")))?;
            Ok((a, b, false))
        }
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> DbResult<Value> {
    use BinOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge => {
            // SQL three-valued logic collapsed to false on NULL operands,
            // which is what every WHERE clause in the paper expects.
            if l.is_null() || r.is_null() {
                return Ok(Value::Int(0));
            }
            let c = l.total_cmp(&r);
            let b = match op {
                Eq => c == Ordering::Equal,
                Ne => c != Ordering::Equal,
                Lt => c == Ordering::Less,
                Le => c != Ordering::Greater,
                Gt => c == Ordering::Greater,
                Ge => c != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if let (Value::Str(a), Value::Str(b), Add) = (&l, &r, op) {
                return Ok(Value::Str(format!("{a}{b}")));
            }
            let (a, b, both_int) = numeric_pair(&l, &r, "arithmetic")?;
            if op == Div && b == 0.0 {
                return Err(DbError::Eval("division by zero".into()));
            }
            let f = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => unreachable!(),
            };
            if both_int && op != Div {
                Ok(Value::Int(f as i64))
            } else if both_int && op == Div {
                // Integer division truncates (matches the DB2 dialect the
                // paper's minute()/grouping tricks rely on).
                Ok(Value::Int((a / b).trunc() as i64))
            } else {
                Ok(Value::Float(f))
            }
        }
        And | Or => unreachable!("handled by eval"),
    }
}

fn eval_call(f: Func, args: &[Expr], row: &Row) -> DbResult<Value> {
    let need = |n: usize| -> DbResult<()> {
        if args.len() != n {
            Err(DbError::Eval(format!(
                "{f:?} expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match f {
        Func::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Func::Minute => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Int(s) => Ok(Value::Int(s.div_euclid(60))),
                Value::Null => Ok(Value::Null),
                v => Err(DbError::Eval(format!(
                    "minute() expects an integer, got {v}"
                ))),
            }
        }
        Func::Exp | Func::Ln | Func::Abs | Func::Sqrt => {
            need(1)?;
            let v = args[0].eval(row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let x = v
                .as_f64()
                .ok_or_else(|| DbError::Eval(format!("{f:?}: non-numeric argument {v}")))?;
            let y = match f {
                Func::Exp => x.exp(),
                Func::Ln => {
                    if x <= 0.0 {
                        return Err(DbError::Eval(format!("ln of non-positive value {x}")));
                    }
                    x.ln()
                }
                Func::Abs => x.abs(),
                Func::Sqrt => {
                    if x < 0.0 {
                        return Err(DbError::Eval(format!("sqrt of negative value {x}")));
                    }
                    x.sqrt()
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        vec![
            Value::Int(10),
            Value::Float(0.5),
            Value::Str("bike".into()),
            Value::Null,
        ]
    }

    #[test]
    fn arithmetic_and_types() {
        let r = row();
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::lit(5i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(15));
        let e = Expr::bin(BinOp::Mul, Expr::col(1), Expr::lit(4i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Float(2.0));
        // Integer division truncates.
        let e = Expr::bin(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(3));
        let e = Expr::bin(BinOp::Div, Expr::lit(7.0), Expr::lit(2i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Float(3.5));
        // String concat via +.
        let e = Expr::bin(BinOp::Add, Expr::col(2), Expr::lit("s"));
        assert_eq!(e.eval(&r).unwrap(), Value::Str("bikes".into()));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        assert!(e.eval(&row()).is_err());
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let r = row();
        let e = Expr::bin(BinOp::Gt, Expr::col(0), Expr::lit(9i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
        // NULL comparisons are false.
        let e = Expr::bin(BinOp::Eq, Expr::col(3), Expr::lit(0i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(0));
        // NULL arithmetic propagates.
        let e = Expr::bin(BinOp::Add, Expr::col(3), Expr::lit(1i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        // Mixed int/float compare.
        let e = Expr::bin(BinOp::Lt, Expr::col(1), Expr::lit(1i64));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
    }

    #[test]
    fn logic_ops() {
        let r = row();
        let t = Expr::lit(1i64);
        let f = Expr::lit(0i64);
        assert_eq!(
            Expr::bin(BinOp::And, t.clone(), f.clone())
                .eval(&r)
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            Expr::bin(BinOp::Or, t.clone(), f.clone()).eval(&r).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::Un(UnOp::Not, Box::new(f)).eval(&r).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::Un(UnOp::Neg, Box::new(Expr::col(1)))
                .eval(&r)
                .unwrap(),
            Value::Float(-0.5)
        );
    }

    #[test]
    fn functions() {
        let r = row();
        let e = Expr::Call(Func::Exp, vec![Expr::lit(0.0)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Float(1.0));
        let e = Expr::Call(Func::Coalesce, vec![Expr::col(3), Expr::lit(9i64)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(9));
        let e = Expr::Call(Func::Minute, vec![Expr::lit(125i64)]);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(2));
        let e = Expr::Call(Func::Ln, vec![Expr::lit(-1.0)]);
        assert!(e.eval(&r).is_err());
        assert_eq!(Func::parse("COALESCE"), Some(Func::Coalesce));
        assert_eq!(Func::parse("nope"), None);
    }

    #[test]
    fn in_list_and_is_null() {
        let r = row();
        let e = Expr::InList(
            Box::new(Expr::col(0)),
            vec![Value::Int(9), Value::Int(10)],
            false,
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
        let e = Expr::InList(Box::new(Expr::col(0)), vec![Value::Int(9)], true);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1)); // NOT IN
        let e = Expr::IsNull(Box::new(Expr::col(3)), false);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
        let e = Expr::IsNull(Box::new(Expr::col(0)), true);
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
    }

    #[test]
    fn remap_rewrites_columns() {
        let e = Expr::bin(BinOp::Add, Expr::col(0), Expr::col(2));
        let m = e.remap(&|i| i + 10);
        assert_eq!(m, Expr::bin(BinOp::Add, Expr::col(10), Expr::col(12)));
    }

    #[test]
    fn out_of_bounds_column() {
        let e = Expr::col(9);
        assert!(e.eval(&row()).is_err());
    }
}
