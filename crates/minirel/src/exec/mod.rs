//! Physical operators.
//!
//! Execution is materialized dataflow: every operator consumes and produces
//! `Vec<Row>`. What makes the I/O experiments honest is that the *inputs*
//! stream from heap pages and B+trees through the buffer pool, and the
//! [`sort`] operator spills runs back through the pool when its memory
//! budget is exceeded — so a small pool hurts `BulkProbe` exactly the way
//! Figure 8(b) shows for DB2.

pub mod agg;
pub mod expr;
pub mod join;
pub mod sort;

pub use agg::{aggregate, AggCall, AggKind};
pub use expr::{BinOp, Expr, Func, UnOp};
pub use join::{hash_join, merge_join_inner, merge_join_left_outer, nested_loop_join};
pub use sort::{external_sort, sort_rows, SortKey};
