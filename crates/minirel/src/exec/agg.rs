//! Group-by aggregation (hash-based).
//!
//! Supports exactly the aggregates the paper's SQL uses: `sum`, `count`,
//! `avg`, `min`, `max` (plus `count(*)`), with SQL NULL semantics:
//! aggregates skip NULL inputs; `sum`/`min`/`max`/`avg` over an empty or
//! all-NULL group are NULL; `count` is 0.

use crate::error::{DbError, DbResult};
use crate::exec::expr::Expr;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// Aggregate function kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `sum(expr)`
    Sum,
    /// `count(expr)` — non-NULL count.
    Count,
    /// `count(*)` — row count.
    CountStar,
    /// `avg(expr)`
    Avg,
    /// `min(expr)`
    Min,
    /// `max(expr)`
    Max,
}

impl AggKind {
    /// Resolve an aggregate by name (`count` here means `count(expr)`).
    pub fn parse(name: &str) -> Option<AggKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "sum" => AggKind::Sum,
            "count" => AggKind::Count,
            "avg" => AggKind::Avg,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            _ => return None,
        })
    }
}

/// One aggregate call: kind + argument expression (ignored for CountStar).
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Which aggregate.
    pub kind: AggKind,
    /// Argument over the input row.
    pub arg: Expr,
}

#[derive(Debug, Clone)]
struct Acc {
    sum: f64,
    sum_is_int: bool,
    count: u64,
    rows: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            sum: 0.0,
            sum_is_int: true,
            count: 0,
            rows: 0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, kind: AggKind, v: &Value) -> DbResult<()> {
        self.rows += 1;
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        match kind {
            AggKind::Sum | AggKind::Avg => {
                let f = v.as_f64().ok_or_else(|| {
                    DbError::Eval(format!("cannot aggregate non-numeric value {v}"))
                })?;
                if !matches!(v, Value::Int(_)) {
                    self.sum_is_int = false;
                }
                self.sum += f;
            }
            AggKind::Min => {
                if self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggKind::Max => {
                if self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
            AggKind::Count | AggKind::CountStar => {}
        }
        Ok(())
    }

    fn finish(&self, kind: AggKind) -> Value {
        match kind {
            AggKind::CountStar => Value::Int(self.rows as i64),
            AggKind::Count => Value::Int(self.count as i64),
            AggKind::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggKind::Min => self.min.clone().unwrap_or(Value::Null),
            AggKind::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Aggregate `rows`: output rows are `group values ++ aggregate results`,
/// in first-seen group order (deterministic given input order). With no
/// group expressions, exactly one row is produced even for empty input.
pub fn aggregate(rows: &[Row], group: &[Expr], aggs: &[AggCall]) -> DbResult<Vec<Row>> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut state: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group.iter().map(|g| g.eval(row)).collect::<DbResult<_>>()?;
        let accs = state.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            vec![Acc::new(); aggs.len()]
        });
        for (acc, call) in accs.iter_mut().zip(aggs) {
            let v = match call.kind {
                AggKind::CountStar => Value::Int(1),
                _ => call.arg.eval(row)?,
            };
            acc.update(call.kind, &v)?;
        }
    }
    if group.is_empty() && order.is_empty() {
        // Global aggregate over empty input: one row of "empty" results.
        let accs = vec![Acc::new(); aggs.len()];
        return Ok(vec![aggs
            .iter()
            .zip(&accs)
            .map(|(c, a)| a.finish(c.kind))
            .collect()]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = &state[&key];
        let mut row = key.clone();
        row.extend(aggs.iter().zip(accs).map(|(c, a)| a.finish(c.kind)));
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Int(1), Value::Float(1.5)],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(2), Value::Float(4.0)],
        ]
    }

    fn call(kind: AggKind, col: usize) -> AggCall {
        AggCall {
            kind,
            arg: Expr::Col(col),
        }
    }

    #[test]
    fn grouped_sum_count_avg() {
        let out = aggregate(
            &rows(),
            &[Expr::Col(0)],
            &[
                call(AggKind::Sum, 1),
                call(AggKind::Count, 1),
                call(AggKind::CountStar, 1),
                call(AggKind::Avg, 1),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // Group 1: sum 2.0, count 2, count* 2, avg 1.0
        assert_eq!(
            out[0],
            vec![
                Value::Int(1),
                Value::Float(2.0),
                Value::Int(2),
                Value::Int(2),
                Value::Float(1.0)
            ]
        );
        // Group 2: NULL skipped by all but count(*).
        assert_eq!(
            out[1],
            vec![
                Value::Int(2),
                Value::Float(4.0),
                Value::Int(1),
                Value::Int(2),
                Value::Float(4.0)
            ]
        );
    }

    #[test]
    fn min_max() {
        let out = aggregate(
            &rows(),
            &[],
            &[call(AggKind::Min, 1), call(AggKind::Max, 1)],
        )
        .unwrap();
        assert_eq!(out, vec![vec![Value::Float(0.5), Value::Float(4.0)]]);
    }

    #[test]
    fn int_sums_stay_int() {
        let rows = vec![vec![Value::Int(2)], vec![Value::Int(3)]];
        let out = aggregate(&rows, &[], &[call(AggKind::Sum, 0)]).unwrap();
        assert_eq!(out[0][0], Value::Int(5));
    }

    #[test]
    fn empty_input_global_vs_grouped() {
        let empty: Vec<Row> = vec![];
        let global = aggregate(
            &empty,
            &[],
            &[call(AggKind::Count, 0), call(AggKind::Sum, 0)],
        )
        .unwrap();
        assert_eq!(global, vec![vec![Value::Int(0), Value::Null]]);
        let grouped = aggregate(&empty, &[Expr::Col(0)], &[call(AggKind::Count, 0)]).unwrap();
        assert!(grouped.is_empty());
    }

    #[test]
    fn expression_arguments() {
        use crate::exec::expr::{BinOp, Func};
        // sum(freq * (logtheta + logdenom)) shape from Figure 3.
        let rows = vec![
            vec![Value::Int(2), Value::Float(-1.0), Value::Float(-3.0)],
            vec![Value::Int(3), Value::Float(-2.0), Value::Float(-3.0)],
        ];
        let arg = Expr::bin(
            BinOp::Mul,
            Expr::Col(0),
            Expr::bin(BinOp::Add, Expr::Col(1), Expr::Col(2)),
        );
        let out = aggregate(
            &rows,
            &[],
            &[AggCall {
                kind: AggKind::Sum,
                arg,
            }],
        )
        .unwrap();
        assert_eq!(out[0][0], Value::Float(2.0 * -4.0 + 3.0 * -5.0));
        // avg(exp(x)) shape from the monitoring query.
        let rows = vec![vec![Value::Float(0.0)], vec![Value::Float(0.0)]];
        let arg = Expr::Call(Func::Exp, vec![Expr::Col(0)]);
        let out = aggregate(
            &rows,
            &[],
            &[AggCall {
                kind: AggKind::Avg,
                arg,
            }],
        )
        .unwrap();
        assert_eq!(out[0][0], Value::Float(1.0));
    }

    #[test]
    fn non_numeric_sum_errors() {
        let rows = vec![vec![Value::Str("x".into())]];
        assert!(aggregate(&rows, &[], &[call(AggKind::Sum, 0)]).is_err());
    }

    #[test]
    fn group_by_expression() {
        use crate::exec::expr::Func;
        // group by minute(ts)
        let rows = vec![
            vec![Value::Int(59)],
            vec![Value::Int(61)],
            vec![Value::Int(119)],
        ];
        let out = aggregate(
            &rows,
            &[Expr::Call(Func::Minute, vec![Expr::Col(0)])],
            &[call(AggKind::CountStar, 0)],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Int(0), Value::Int(1)]);
        assert_eq!(out[1], vec![Value::Int(1), Value::Int(2)]);
    }
}
