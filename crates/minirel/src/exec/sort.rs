//! Sorting: in-memory quicksort for small inputs, external run/merge sort
//! through the buffer pool for large ones.
//!
//! Sort keys are turned into memcomparable byte strings (descending
//! directions bit-flip the component), so both the in-memory comparator
//! and the k-way merge heap compare plain `Vec<u8>`.
//!
//! External spill is what couples `BulkProbe` to the buffer-pool size in
//! the Figure 8(b) reproduction: run generation writes pages, merging
//! reads them back, and a small pool turns that traffic into physical I/O.

use crate::buffer::BufferPool;
use crate::error::DbResult;
use crate::exec::expr::Expr;
use crate::heap::HeapFile;
use crate::page::{PageId, SlottedRef};
use crate::value::{decode_row, encode_row, Row};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One sort key: an expression and a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Key expression over the input row.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

impl SortKey {
    /// Ascending key on column `i`.
    pub fn asc(i: usize) -> SortKey {
        SortKey {
            expr: Expr::Col(i),
            desc: false,
        }
    }

    /// Descending key on column `i`.
    pub fn desc(i: usize) -> SortKey {
        SortKey {
            expr: Expr::Col(i),
            desc: true,
        }
    }
}

/// Compute the memcomparable sort key of `row`.
fn key_bytes(row: &Row, keys: &[SortKey]) -> DbResult<Vec<u8>> {
    let mut out = Vec::with_capacity(keys.len() * 9);
    for k in keys {
        let v = k.expr.eval(row)?;
        let start = out.len();
        v.encode_key(&mut out);
        if k.desc {
            for b in &mut out[start..] {
                *b = !*b;
            }
        }
    }
    Ok(out)
}

/// In-memory sort of `rows` by `keys` (stable).
pub fn sort_rows(mut rows: Vec<Row>, keys: &[SortKey]) -> DbResult<Vec<Row>> {
    let mut keyed: Vec<(Vec<u8>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        keyed.push((key_bytes(&row, keys)?, row));
    }
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Streaming reader over a spilled run.
struct RunReader {
    pages: Vec<PageId>,
    page_idx: usize,
    slot: u16,
}

impl RunReader {
    fn next(&mut self, pool: &BufferPool) -> DbResult<Option<Row>> {
        while self.page_idx < self.pages.len() {
            let pid = self.pages[self.page_idx];
            let slot = self.slot;
            let rec = pool.with_page(pid, |b| {
                let s = SlottedRef(b);
                if slot < s.slot_count() {
                    s.record(slot).map(<[u8]>::to_vec)
                } else {
                    None
                }
            })?;
            match rec {
                Some(bytes) => {
                    self.slot += 1;
                    return Ok(Some(decode_row(&bytes)?));
                }
                None => {
                    // Either a tombstone (runs have none) or end of page.
                    let exhausted =
                        pool.with_page(pid, |b| self.slot >= SlottedRef(b).slot_count())?;
                    if exhausted {
                        self.page_idx += 1;
                        self.slot = 0;
                    } else {
                        self.slot += 1;
                    }
                }
            }
        }
        Ok(None)
    }
}

/// External sort: when `rows` exceeds `mem_budget_rows`, sorted runs are
/// spilled as heap pages through `pool` and k-way merged back. Temp pages
/// are not reclaimed (the paged file only grows), mirroring sort spill
/// space of the era's engines between reorgs.
pub fn external_sort(
    pool: &BufferPool,
    rows: Vec<Row>,
    keys: &[SortKey],
    mem_budget_rows: usize,
) -> DbResult<Vec<Row>> {
    let budget = mem_budget_rows.max(2);
    if rows.len() <= budget {
        return sort_rows(rows, keys);
    }
    // Run generation.
    let mut readers: Vec<RunReader> = Vec::new();
    let mut it = rows.into_iter();
    loop {
        let chunk: Vec<Row> = it.by_ref().take(budget).collect();
        if chunk.is_empty() {
            break;
        }
        let sorted = sort_rows(chunk, keys)?;
        let mut run = HeapFile::create(pool)?;
        for row in &sorted {
            run.insert(pool, &encode_row(row))?;
        }
        readers.push(RunReader {
            pages: run.pages().to_vec(),
            page_idx: 0,
            slot: 0,
        });
    }
    // K-way merge on (key, run_idx) min-heap.
    let mut heap: BinaryHeap<Reverse<(Vec<u8>, usize)>> = BinaryHeap::new();
    let mut pending: Vec<Option<Row>> = Vec::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        match r.next(pool)? {
            Some(row) => {
                heap.push(Reverse((key_bytes(&row, keys)?, i)));
                pending.push(Some(row));
            }
            None => pending.push(None),
        }
    }
    let mut out = Vec::new();
    while let Some(Reverse((_, i))) = heap.pop() {
        let row = pending[i].take().expect("pending row for popped run");
        out.push(row);
        if let Some(next) = readers[i].next(pool)? {
            heap.push(Reverse((key_bytes(&next, keys)?, i)));
            pending[i] = Some(next);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::EvictionPolicy;
    use crate::disk::DiskManager;
    use crate::value::Value;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(DiskManager::in_memory(), frames, EvictionPolicy::Lru)
    }

    fn rows_of(vals: &[(i64, f64)]) -> Vec<Row> {
        vals.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Float(b)])
            .collect()
    }

    #[test]
    fn in_memory_sort_asc_desc() {
        let rows = rows_of(&[(3, 0.1), (1, 0.9), (2, 0.5), (1, 0.2)]);
        let sorted = sort_rows(rows.clone(), &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        let got: Vec<(i64, f64)> = sorted
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
            .collect();
        assert_eq!(got, vec![(1, 0.9), (1, 0.2), (2, 0.5), (3, 0.1)]);
    }

    #[test]
    fn expression_keys() {
        use crate::exec::expr::{BinOp, Expr};
        let rows = rows_of(&[(5, 0.0), (2, 0.0), (8, 0.0)]);
        // Sort by -col0 via expression == descending col0.
        let key = SortKey {
            expr: Expr::bin(BinOp::Sub, Expr::lit(0i64), Expr::col(0)),
            desc: false,
        };
        let sorted = sort_rows(rows, &[key]).unwrap();
        let got: Vec<i64> = sorted.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got, vec![8, 5, 2]);
    }

    #[test]
    fn external_matches_in_memory() {
        let bp = pool(8);
        let n = 3000;
        let mut rows = Vec::new();
        let mut x: i64 = 42;
        for _ in 0..n {
            x = (x * 1103515245 + 12345) % 10_007;
            rows.push(vec![Value::Int(x), Value::Float((x % 97) as f64)]);
        }
        let keys = [SortKey::asc(0)];
        let expect = sort_rows(rows.clone(), &keys).unwrap();
        let got = external_sort(&bp, rows, &keys, 100).unwrap();
        assert_eq!(got, expect);
        assert!(bp.stats().physical_writes > 0, "must have spilled runs");
    }

    #[test]
    fn external_desc_with_strings() {
        let bp = pool(8);
        let rows: Vec<Row> = (0..500)
            .map(|i| vec![Value::Str(format!("url-{:04}", (i * 37) % 500))])
            .collect();
        let keys = [SortKey::desc(0)];
        let got = external_sort(&bp, rows, &keys, 50).unwrap();
        for w in got.windows(2) {
            assert!(w[0][0] >= w[1][0]);
        }
        assert_eq!(got.len(), 500);
    }

    #[test]
    fn small_input_does_not_spill() {
        let bp = pool(8);
        bp.reset_stats();
        let rows = rows_of(&[(2, 0.0), (1, 0.0)]);
        let got = external_sort(&bp, rows, &[SortKey::asc(0)], 100).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(bp.stats().physical_writes, 0);
    }

    #[test]
    fn nulls_sort_first() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(-5)]];
        let sorted = sort_rows(rows, &[SortKey::asc(0)]).unwrap();
        assert_eq!(sorted[0][0], Value::Null);
        assert_eq!(sorted[1][0], Value::Int(-5));
    }

    #[test]
    fn smaller_budget_spills_more() {
        let io_with_budget = |budget: usize| {
            let bp = pool(4);
            let rows: Vec<Row> = (0..2000)
                .map(|i| vec![Value::Int((i * 7919) % 2000)])
                .collect();
            bp.reset_stats();
            external_sort(&bp, rows, &[SortKey::asc(0)], budget).unwrap();
            bp.stats().physical_reads + bp.stats().physical_writes
        };
        let tight = io_with_budget(50);
        let loose = io_with_budget(4000);
        assert!(tight > loose, "tight {tight} <= loose {loose}");
        assert_eq!(loose, 0);
    }
}
