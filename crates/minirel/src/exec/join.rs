//! Join operators: sort-merge (inner and left outer), hash, and
//! nested-loop.
//!
//! The paper's Figure 3 rewrite turns the classifier's per-term probe loop
//! into "one inner and one left outer join", and §3.1 credits sort-merge
//! plans for an order-of-magnitude discovery-rate increase. These operators
//! implement those plans; the SQL planner picks among them, and the
//! classifier drives them directly.

use crate::error::{DbError, DbResult};
use crate::exec::expr::Expr;
use crate::value::{Row, Value};
use std::collections::HashMap;

fn key_of(row: &Row, cols: &[usize]) -> DbResult<Option<Vec<Value>>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = row
            .get(c)
            .ok_or_else(|| DbError::Eval(format!("join key column {c} out of bounds")))?;
        if v.is_null() {
            return Ok(None); // SQL: NULL joins with nothing
        }
        key.push(v.clone());
    }
    Ok(Some(key))
}

/// Merge join (inner, equi). Both inputs must already be sorted ascending
/// on their key columns.
pub fn merge_join_inner(
    left: &[Row],
    right: &[Row],
    lkeys: &[usize],
    rkeys: &[usize],
) -> DbResult<Vec<Row>> {
    merge_join(left, right, lkeys, rkeys, false, 0)
}

/// Left outer merge join: unmatched left rows are padded with
/// `right_arity` NULLs. Inputs sorted ascending on key columns.
pub fn merge_join_left_outer(
    left: &[Row],
    right: &[Row],
    lkeys: &[usize],
    rkeys: &[usize],
    right_arity: usize,
) -> DbResult<Vec<Row>> {
    merge_join(left, right, lkeys, rkeys, true, right_arity)
}

fn merge_join(
    left: &[Row],
    right: &[Row],
    lkeys: &[usize],
    rkeys: &[usize],
    outer: bool,
    right_arity: usize,
) -> DbResult<Vec<Row>> {
    assert_eq!(lkeys.len(), rkeys.len(), "join key arity mismatch");
    let mut out = Vec::new();
    let mut li = 0;
    let mut ri = 0;
    let emit_unmatched = |row: &Row, out: &mut Vec<Row>| {
        if outer {
            let mut r = row.clone();
            r.extend(std::iter::repeat_n(Value::Null, right_arity));
            out.push(r);
        }
    };
    while li < left.len() {
        let lk = match key_of(&left[li], lkeys)? {
            Some(k) => k,
            None => {
                emit_unmatched(&left[li], &mut out);
                li += 1;
                continue;
            }
        };
        // Advance right until >= lk.
        while ri < right.len() {
            match key_of(&right[ri], rkeys)? {
                Some(rk) if rk.as_slice() < lk.as_slice() => ri += 1,
                Some(_) => break,
                None => ri += 1,
            }
        }
        // Check match group.
        let group_start = ri;
        let mut matched = false;
        let mut rj = group_start;
        while rj < right.len() {
            match key_of(&right[rj], rkeys)? {
                Some(rk) if rk == lk => {
                    matched = true;
                    let mut r = left[li].clone();
                    r.extend(right[rj].iter().cloned());
                    out.push(r);
                    rj += 1;
                }
                _ => break,
            }
        }
        if !matched {
            emit_unmatched(&left[li], &mut out);
        }
        li += 1;
        // Do not advance ri past the group: the next left row may share lk.
    }
    Ok(out)
}

/// Hash join on equi keys. `outer` = left outer semantics.
pub fn hash_join(
    left: &[Row],
    right: &[Row],
    lkeys: &[usize],
    rkeys: &[usize],
    outer: bool,
) -> DbResult<Vec<Row>> {
    assert_eq!(lkeys.len(), rkeys.len(), "join key arity mismatch");
    let right_arity = right.first().map_or(0, Vec::len);
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        if let Some(k) = key_of(r, rkeys)? {
            table.entry(k).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for l in left {
        let matches = match key_of(l, lkeys)? {
            Some(k) => table.get(&k),
            None => None,
        };
        match matches {
            Some(idxs) if !idxs.is_empty() => {
                for &i in idxs {
                    let mut row = l.clone();
                    row.extend(right[i].iter().cloned());
                    out.push(row);
                }
            }
            _ => {
                if outer {
                    let mut row = l.clone();
                    row.extend(std::iter::repeat_n(Value::Null, right_arity));
                    out.push(row);
                }
            }
        }
    }
    Ok(out)
}

/// Nested-loop join with an arbitrary predicate over the concatenated row.
/// `outer` = left outer semantics.
pub fn nested_loop_join(
    left: &[Row],
    right: &[Row],
    pred: &Expr,
    outer: bool,
) -> DbResult<Vec<Row>> {
    let right_arity = right.first().map_or(0, Vec::len);
    let mut out = Vec::new();
    let mut scratch: Row = Vec::new();
    for l in left {
        let mut matched = false;
        for r in right {
            scratch.clear();
            scratch.extend(l.iter().cloned());
            scratch.extend(r.iter().cloned());
            if pred.eval(&scratch)?.is_truthy() {
                matched = true;
                out.push(scratch.clone());
            }
        }
        if !matched && outer {
            let mut row = l.clone();
            row.extend(std::iter::repeat_n(Value::Null, right_arity));
            out.push(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::expr::BinOp;
    use crate::exec::sort::{sort_rows, SortKey};

    fn l_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(2), Value::Str("b2".into())],
            vec![Value::Int(4), Value::Str("d".into())],
            vec![Value::Null, Value::Str("n".into())],
        ]
    }

    fn r_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(2), Value::Float(0.2)],
            vec![Value::Int(2), Value::Float(0.25)],
            vec![Value::Int(3), Value::Float(0.3)],
            vec![Value::Int(4), Value::Float(0.4)],
        ]
    }

    fn sorted(rows: Vec<Row>, col: usize) -> Vec<Row> {
        sort_rows(rows, &[SortKey::asc(col)]).unwrap()
    }

    #[test]
    fn merge_inner_matches_hash_inner() {
        let l = sorted(l_rows(), 0);
        let r = sorted(r_rows(), 0);
        let mut m = merge_join_inner(&l, &r, &[0], &[0]).unwrap();
        let mut h = hash_join(&l, &r, &[0], &[0], false).unwrap();
        m.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        h.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(m, h);
        // 2 left rows with key 2 × 2 right rows + key-4 pair = 5 rows.
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn left_outer_pads_unmatched() {
        let l = sorted(l_rows(), 0);
        let r = sorted(r_rows(), 0);
        let m = merge_join_left_outer(&l, &r, &[0], &[0], 2).unwrap();
        // 5 matches + unmatched keys {1, NULL} = 7 rows.
        assert_eq!(m.len(), 7);
        let unmatched: Vec<&Row> = m.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
        for u in unmatched {
            assert_eq!(u.len(), 4);
            assert!(u[3].is_null());
        }
        // Hash left-outer agrees on multiset.
        let mut h = hash_join(&l, &r, &[0], &[0], true).unwrap();
        let mut m2 = m.clone();
        h.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        m2.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(h, m2);
    }

    #[test]
    fn null_keys_never_match() {
        let l = vec![vec![Value::Null], vec![Value::Int(1)]];
        let r = vec![vec![Value::Null], vec![Value::Int(1)]];
        let out = hash_join(&l, &r, &[0], &[0], false).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(1));
    }

    #[test]
    fn nested_loop_arbitrary_predicate() {
        let l = vec![vec![Value::Int(1)], vec![Value::Int(5)]];
        let r = vec![vec![Value::Int(3)], vec![Value::Int(4)]];
        // join on l.c0 < r.c0 (concatenated row: col0 = left, col1 = right)
        let pred = Expr::bin(BinOp::Lt, Expr::col(0), Expr::col(1));
        let out = nested_loop_join(&l, &r, &pred, false).unwrap();
        assert_eq!(out.len(), 2); // (1,3), (1,4)
        let outer = nested_loop_join(&l, &r, &pred, true).unwrap();
        assert_eq!(outer.len(), 3); // + (5, NULL)
        assert!(outer[2][1].is_null());
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<Row> = vec![];
        let r = r_rows();
        assert!(merge_join_inner(&e, &r, &[0], &[0]).unwrap().is_empty());
        assert!(hash_join(&e, &r, &[0], &[0], false).unwrap().is_empty());
        let l = l_rows();
        let out = merge_join_left_outer(&l, &e, &[0], &[0], 2).unwrap();
        assert_eq!(out.len(), l.len(), "all left rows padded");
    }

    #[test]
    fn composite_keys() {
        let l = vec![
            vec![Value::Int(1), Value::Int(10), Value::Str("x".into())],
            vec![Value::Int(1), Value::Int(11), Value::Str("y".into())],
        ];
        let r = vec![vec![Value::Int(1), Value::Int(11), Value::Float(0.5)]];
        let out = hash_join(&l, &r, &[0, 1], &[0, 1], false).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][2], Value::Str("y".into()));
        let m = merge_join_inner(&l, &r, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(m, out);
    }

    #[test]
    fn merge_join_repeated_left_keys_rescan_right_group() {
        // Regression: ri must not advance past a group consumed by an
        // earlier equal left key.
        let l = vec![
            vec![Value::Int(2)],
            vec![Value::Int(2)],
            vec![Value::Int(2)],
        ];
        let r = vec![vec![Value::Int(2)], vec![Value::Int(2)]];
        let out = merge_join_inner(&l, &r, &[0], &[0]).unwrap();
        assert_eq!(out.len(), 6);
    }
}
