//! Engine-wide error type.

use std::fmt;

/// Errors surfaced by the storage layer, executor, and SQL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// OS-level I/O failure, tagged with the operation and the file it
    /// hit so a failed `sync` on the WAL is distinguishable from a
    /// failed `read` on the data file.
    Io {
        /// What was being attempted ("open", "read", "write", "sync", …).
        op: String,
        /// Path (or "<memory>") the operation targeted.
        path: String,
        /// Underlying `std::io::Error` text.
        source: String,
    },
    /// Page id out of range or page corrupt.
    Page(String),
    /// A record id no longer resolves to a live record.
    BadRid { page: u32, slot: u16 },
    /// Catalog misuse: duplicate/unknown table or index.
    Catalog(String),
    /// Schema violation: wrong arity or type for a row.
    Schema(String),
    /// SQL lexing/parsing failure with position information.
    Parse(String),
    /// Query refers to an unknown column/table/function.
    Binding(String),
    /// Runtime evaluation error (type mismatch, division by zero, …).
    Eval(String),
    /// A record larger than a page was inserted.
    RecordTooLarge(usize),
    /// A stored row decoded to values its consumer cannot accept —
    /// on-disk corruption or a schema drifting out from under its
    /// readers. Never masked with fabricated defaults.
    Corrupt(String),
    /// A mutating statement reached a read-only entry point
    /// (`Database::query` accepts SELECT only).
    ReadOnly(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io { op, path, source } => {
                write!(f, "io error: {op} {path}: {source}")
            }
            DbError::Page(m) => write!(f, "page error: {m}"),
            DbError::BadRid { page, slot } => {
                write!(f, "dangling rid (page {page}, slot {slot})")
            }
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Parse(m) => write!(f, "sql parse error: {m}"),
            DbError::Binding(m) => write!(f, "binding error: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds page capacity")
            }
            DbError::Corrupt(m) => write!(f, "corrupt row: {m}"),
            DbError::ReadOnly(m) => write!(f, "read-only violation: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl DbError {
    /// Build an [`DbError::Io`] with operation and path context.
    pub fn io(op: &str, path: impl AsRef<std::path::Path>, e: std::io::Error) -> DbError {
        DbError::Io {
            op: op.to_owned(),
            path: path.as_ref().display().to_string(),
            source: e.to_string(),
        }
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io {
            op: "io".to_owned(),
            path: "<unknown>".to_owned(),
            source: e.to_string(),
        }
    }
}

/// Engine result alias.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_contextual() {
        assert!(DbError::BadRid { page: 3, slot: 9 }
            .to_string()
            .contains("page 3"));
        assert!(DbError::Parse("near 'selec'".into())
            .to_string()
            .contains("selec"));
    }

    #[test]
    fn io_error_converts() {
        let e: DbError = std::io::Error::other("boom").into();
        assert!(matches!(e, DbError::Io { .. }));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_carries_op_and_path() {
        let e = DbError::io(
            "sync",
            std::path::Path::new("/tmp/db.wal"),
            std::io::Error::other("disk gone"),
        );
        let msg = e.to_string();
        assert!(msg.contains("sync"), "{msg}");
        assert!(msg.contains("/tmp/db.wal"), "{msg}");
        assert!(msg.contains("disk gone"), "{msg}");
    }
}
