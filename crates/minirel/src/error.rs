//! Engine-wide error type.

use std::fmt;

/// Errors surfaced by the storage layer, executor, and SQL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// OS-level I/O failure (message carries `std::io::Error` text).
    Io(String),
    /// Page id out of range or page corrupt.
    Page(String),
    /// A record id no longer resolves to a live record.
    BadRid { page: u32, slot: u16 },
    /// Catalog misuse: duplicate/unknown table or index.
    Catalog(String),
    /// Schema violation: wrong arity or type for a row.
    Schema(String),
    /// SQL lexing/parsing failure with position information.
    Parse(String),
    /// Query refers to an unknown column/table/function.
    Binding(String),
    /// Runtime evaluation error (type mismatch, division by zero, …).
    Eval(String),
    /// A record larger than a page was inserted.
    RecordTooLarge(usize),
    /// A stored row decoded to values its consumer cannot accept —
    /// on-disk corruption or a schema drifting out from under its
    /// readers. Never masked with fabricated defaults.
    Corrupt(String),
    /// A mutating statement reached a read-only entry point
    /// (`Database::query` accepts SELECT only).
    ReadOnly(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Page(m) => write!(f, "page error: {m}"),
            DbError::BadRid { page, slot } => {
                write!(f, "dangling rid (page {page}, slot {slot})")
            }
            DbError::Catalog(m) => write!(f, "catalog error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Parse(m) => write!(f, "sql parse error: {m}"),
            DbError::Binding(m) => write!(f, "binding error: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::RecordTooLarge(n) => {
                write!(f, "record of {n} bytes exceeds page capacity")
            }
            DbError::Corrupt(m) => write!(f, "corrupt row: {m}"),
            DbError::ReadOnly(m) => write!(f, "read-only violation: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

/// Engine result alias.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_contextual() {
        assert!(DbError::BadRid { page: 3, slot: 9 }
            .to_string()
            .contains("page 3"));
        assert!(DbError::Parse("near 'selec'".into())
            .to_string()
            .contains("selec"));
    }

    #[test]
    fn io_error_converts() {
        let e: DbError = std::io::Error::other("boom").into();
        assert!(matches!(e, DbError::Io(_)));
    }
}
