//! Crash recovery (redo-on-open) and WAL-shipping read replicas.
//!
//! # Recovery
//!
//! The data file holds only *checkpointed* state; everything since lives
//! in the WAL as page images, and each [`crate::wal::KIND_COMMIT`]
//! record carries a full **catalog image** (schemas, heap page lists,
//! B+tree roots — metadata that is otherwise in-memory only). Recovery
//! is therefore a single forward pass: scan the valid, checksummed
//! prefix of the log, find the last Commit, install every page image up
//! to it into the data file, and adopt that commit's catalog. Records
//! past the last commit — a torn tail, an unfinished batch — are
//! discarded. Replaying is **idempotent**: images are whole-page writes
//! applied in log order, so running recovery twice lands on the same
//! bytes.
//!
//! # Replication
//!
//! A [`Replica`] is a read-only follower `Database` fed from the
//! leader's WAL:
//!
//! * [`Replica::spawn`] (in-process): base snapshot of the leader's
//!   committed pages + catalog, then an `mpsc` subscription to the
//!   committed record stream. Each commit is applied atomically under
//!   the follower's write lock, so readers always see a consistent
//!   commit boundary.
//! * [`Replica::tail_file`] (cross-process): replays the leader's
//!   data + WAL files, then polls the WAL file for newly committed
//!   records. Valid for the duration of one leader run (a leader
//!   restart rotates the log and the tailer reports an error).
//!
//! **Staleness contract**: a replica lags the leader by at most the
//! in-flight commit chunk (channel mode) or one poll interval (file
//! mode); [`Replica::applied_lsn`] / [`Replica::wait_for_lsn`] let
//! callers line a read up with a known commit.

use crate::btree::BTree;
use crate::catalog::{Catalog, IndexInfo, TableInfo};
use crate::db::{wal_path_for, Database, ResultSet};
use crate::disk::DiskManager;
use crate::error::{DbError, DbResult};
use crate::heap::HeapFile;
use crate::page::{PageId, PAGE_SIZE};
use crate::schema::{Column, ColumnType, Schema};
use crate::wal::{self, Record, KIND_CHECKPOINT, KIND_COMMIT, KIND_PAGE_IMAGE};
use lockcheck::{rank, OrderedMutex, OrderedRwLock};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Catalog image codec
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.off + n > self.buf.len() {
            return Err(DbError::Corrupt(format!(
                "catalog image truncated at byte {} (wanted {} more)",
                self.off, n
            )));
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> DbResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> DbResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DbError::Corrupt("catalog image holds non-utf8 name".into()))
    }
}

fn ty_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Str => 2,
    }
}

fn tag_ty(tag: u8) -> DbResult<ColumnType> {
    match tag {
        0 => Ok(ColumnType::Int),
        1 => Ok(ColumnType::Float),
        2 => Ok(ColumnType::Str),
        t => Err(DbError::Corrupt(format!(
            "catalog image holds unknown column type tag {t}"
        ))),
    }
}

/// Serialize the whole catalog — every table slot in id order, dropped
/// slots included so `TableId`s survive recovery unchanged.
pub fn encode_catalog(cat: &Catalog) -> Vec<u8> {
    let slots = cat.slots();
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
    for t in slots {
        put_str(&mut out, &t.name);
        out.extend_from_slice(&(t.schema.columns.len() as u32).to_le_bytes());
        for c in &t.schema.columns {
            put_str(&mut out, &c.name);
            out.push(ty_tag(c.ty));
        }
        let (pages, hints, live) = t.heap.snapshot_parts();
        out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for &p in pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &h in hints {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out.extend_from_slice(&live.to_le_bytes());
        out.extend_from_slice(&(t.indexes.len() as u32).to_le_bytes());
        for idx in &t.indexes {
            put_str(&mut out, &idx.name);
            out.extend_from_slice(&(idx.cols.len() as u32).to_le_bytes());
            for &c in &idx.cols {
                out.extend_from_slice(&(c as u32).to_le_bytes());
            }
            out.extend_from_slice(&idx.btree.root().to_le_bytes());
            out.extend_from_slice(&idx.btree.len().to_le_bytes());
        }
    }
    out
}

/// Decode a catalog image (strict: any truncation or bad tag is
/// [`DbError::Corrupt`], never a silently partial catalog).
pub fn decode_catalog(bytes: &[u8]) -> DbResult<Catalog> {
    let mut r = Reader { buf: bytes, off: 0 };
    let n_tables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name = r.str()?;
        let n_cols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let cname = r.str()?;
            let ty = tag_ty(r.u8()?)?;
            columns.push(Column::new(cname, ty));
        }
        let n_pages = r.u32()? as usize;
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(r.u32()?);
        }
        let mut hints = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            hints.push(r.u16()?);
        }
        let live = r.u64()?;
        let n_idx = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(n_idx);
        for _ in 0..n_idx {
            let iname = r.str()?;
            let n_cols = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                cols.push(r.u32()? as usize);
            }
            let root = r.u32()?;
            let len = r.u64()?;
            indexes.push(IndexInfo {
                name: iname,
                cols,
                btree: BTree::from_parts(root, len),
            });
        }
        tables.push(TableInfo {
            name,
            schema: Schema { columns },
            heap: HeapFile::from_parts(pages, hints, live),
            indexes,
        });
    }
    if r.off != bytes.len() {
        return Err(DbError::Corrupt(format!(
            "catalog image has {} trailing bytes",
            bytes.len() - r.off
        )));
    }
    Ok(Catalog::from_slots(tables))
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What a successful replay recovered.
pub struct Recovered {
    /// Catalog of the last committed state.
    pub catalog: Catalog,
    /// LSN of the last applied commit.
    pub last_lsn: u64,
    /// Data-file page count at that commit.
    pub num_pages: u32,
    /// Byte offset just past the last applied Commit/Checkpoint record
    /// (a file tailer resumes scanning here).
    pub applied_end: u64,
}

fn parse_page_image(payload: &[u8]) -> DbResult<(PageId, &[u8])> {
    if payload.len() != 4 + PAGE_SIZE {
        return Err(DbError::Corrupt(format!(
            "page-image payload of {} bytes (want {})",
            payload.len(),
            4 + PAGE_SIZE
        )));
    }
    let pid = u32::from_le_bytes(payload[0..4].try_into().expect("4"));
    Ok((pid, &payload[4..]))
}

fn parse_commit(payload: &[u8]) -> DbResult<(u32, &[u8])> {
    if payload.len() < 4 {
        return Err(DbError::Corrupt(
            "commit payload shorter than 4 bytes".into(),
        ));
    }
    let num_pages = u32::from_le_bytes(payload[0..4].try_into().expect("4"));
    Ok((num_pages, &payload[4..]))
}

/// Redo the log onto `disk`: install every committed page image (in log
/// order) and return the last commit's catalog. `Ok(None)` when the log
/// holds no commit at all (fresh database). Idempotent — a second call
/// over the same inputs rewrites identical bytes.
pub fn replay_into(disk: &mut DiskManager, wal_bytes: &[u8]) -> DbResult<Option<Recovered>> {
    let (records, _valid) = wal::scan_records(wal_bytes);
    // Locate the last commit; everything after it is an unacknowledged
    // tail and must not touch the data file.
    let last_commit = records.iter().rposition(|r| r.kind == KIND_COMMIT);
    let Some(last_commit) = last_commit else {
        return Ok(None);
    };
    let mut applied_end = 0u64;
    let mut off = 0u64;
    let mut commit_state: Option<(u32, &[u8], u64)> = None;
    for (i, rec) in records.iter().enumerate() {
        let rec_len = (wal::RECORD_HEADER + rec.payload.len()) as u64;
        off += rec_len;
        if i > last_commit {
            break;
        }
        match rec.kind {
            KIND_PAGE_IMAGE => {
                let (pid, img) = parse_page_image(&rec.payload)?;
                let buf: &[u8; PAGE_SIZE] =
                    img.try_into().expect("length checked by parse_page_image");
                disk.write_ensure(pid, buf)?;
            }
            KIND_COMMIT => {
                let (num_pages, cat) = parse_commit(&rec.payload)?;
                commit_state = Some((num_pages, cat, rec.lsn));
                applied_end = off;
            }
            KIND_CHECKPOINT => {
                applied_end = off;
            }
            _ => unreachable!("scan_records only yields known kinds"),
        }
    }
    let (num_pages, cat_bytes, last_lsn) =
        commit_state.expect("last_commit index guarantees a commit was seen");
    let catalog = decode_catalog(cat_bytes)?;
    // The commit may reference pages the crash kept the data file from
    // ever growing to (e.g. allocated, logged, never checkpointed).
    if num_pages > 0 {
        let zero = [0u8; PAGE_SIZE];
        while disk.num_pages() < num_pages {
            let pid = disk.num_pages();
            disk.write_ensure(pid, &zero)?;
        }
    }
    Ok(Some(Recovered {
        catalog,
        last_lsn,
        num_pages,
        applied_end,
    }))
}

fn count_checkpoints(wal_bytes: &[u8]) -> u64 {
    let (records, _) = wal::scan_records(wal_bytes);
    records.iter().filter(|r| r.kind == KIND_CHECKPOINT).count() as u64
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// Shared follower state the apply thread and readers both touch.
struct ReplicaShared {
    db: OrderedRwLock<Database>,
    applied_lsn: AtomicU64,
    stop: AtomicBool,
    error: OrderedMutex<Option<String>>,
}

/// A read-only replica `Database` kept fresh from the leader's WAL.
///
/// Reads ([`Replica::query`], [`Replica::with_db`]) take the follower's
/// read lock, so the whole monitor suite runs here without touching the
/// leader's store lock at all. Dropping the replica stops and joins the
/// apply thread.
pub struct Replica {
    shared: Arc<ReplicaShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Applies one record to the follower; images buffer in `pending` until
/// the commit that covers them lands, then install atomically.
fn apply_record(
    shared: &ReplicaShared,
    pending: &mut Vec<(PageId, Vec<u8>)>,
    rec: &Record,
) -> DbResult<()> {
    match rec.kind {
        KIND_PAGE_IMAGE => {
            let (pid, img) = parse_page_image(&rec.payload)?;
            pending.push((pid, img.to_vec()));
        }
        KIND_COMMIT => {
            let (_num_pages, cat) = parse_commit(&rec.payload)?;
            let catalog = decode_catalog(cat)?;
            // One write-lock hold for pages AND catalog: a reader must
            // never see new page bytes through the old catalog.
            let mut db = shared.db.write();
            for (pid, img) in pending.drain(..) {
                let buf: &[u8; PAGE_SIZE] = img.as_slice().try_into().expect("checked");
                db.install_page(pid, buf)?;
            }
            db.replace_catalog(catalog);
            drop(db);
            shared.applied_lsn.store(rec.lsn, Ordering::Release);
        }
        KIND_CHECKPOINT => {}
        _ => unreachable!("scan_records only yields known kinds"),
    }
    Ok(())
}

impl Replica {
    /// In-process replica of `leader`: commit, snapshot the committed
    /// pages + catalog, then follow the WAL broadcast. Requires the
    /// leader to be durable ([`Database::open`] /
    /// [`Database::in_memory_durable`]).
    ///
    /// Taking `&mut Database` is what makes the snapshot/subscribe pair
    /// race-free: no other writer can slip a commit between them.
    pub fn spawn(leader: &mut Database) -> DbResult<Replica> {
        let wal = leader.wal().ok_or_else(|| {
            DbError::ReadOnly(
                "replica requires a WAL-backed leader (Database::open or in_memory_durable)".into(),
            )
        })?;
        let base_lsn = leader.commit()?;
        let rx = wal.subscribe();
        let follower = leader.clone_committed_state()?;
        let shared = Arc::new(ReplicaShared {
            db: OrderedRwLock::new(rank::REPLICA_DB, follower),
            applied_lsn: AtomicU64::new(base_lsn),
            stop: AtomicBool::new(false),
            error: OrderedMutex::new(rank::REPLICA_ERR, None),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("minirel-replica".into())
            .spawn(move || {
                let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    match rx.recv_timeout(Duration::from_millis(25)) {
                        Ok(chunk) => {
                            let (records, _) = wal::scan_records(&chunk);
                            for rec in &records {
                                if let Err(e) = apply_record(&thread_shared, &mut pending, rec) {
                                    *thread_shared.error.lock() = Some(e.to_string());
                                    return;
                                }
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => continue,
                        Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                }
            })
            .expect("spawn replica thread");
        Ok(Replica {
            shared,
            handle: Some(handle),
        })
    }

    /// Cross-process replica: replay the leader's on-disk `data` + WAL
    /// files into an in-memory follower, then poll the WAL file every
    /// `poll` for new committed records. The attach loop retries while a
    /// leader checkpoint is concurrently rewriting the data file (it
    /// detects one via the checkpoint-marker count changing).
    pub fn tail_file(data_path: &Path, frames: usize, poll: Duration) -> DbResult<Replica> {
        let wal_path = wal_path_for(data_path);
        let (mut disk, wal_bytes) = loop {
            let wal_a = std::fs::read(&wal_path).map_err(|e| DbError::io("read", &wal_path, e))?;
            let data = std::fs::read(data_path).map_err(|e| DbError::io("read", data_path, e))?;
            let wal_b = std::fs::read(&wal_path).map_err(|e| DbError::io("read", &wal_path, e))?;
            if count_checkpoints(&wal_a) != count_checkpoints(&wal_b) {
                // A checkpoint rewrote the data file while we copied it;
                // the copy may hold torn pages. Try again.
                continue;
            }
            let mut disk = DiskManager::in_memory();
            for chunk in data.chunks_exact(PAGE_SIZE) {
                let pid = disk.allocate()?;
                disk.write(pid, chunk.try_into().expect("exact chunk"))?;
            }
            break (disk, wal_b);
        };
        let (catalog, base_lsn, mut offset) = match replay_into(&mut disk, &wal_bytes)? {
            Some(r) => (r.catalog, r.last_lsn, r.applied_end),
            None => (Catalog::new(), 0, 0),
        };
        let follower = Database::from_recovered_parts(disk, frames, catalog);
        let shared = Arc::new(ReplicaShared {
            db: OrderedRwLock::new(rank::REPLICA_DB, follower),
            applied_lsn: AtomicU64::new(base_lsn),
            stop: AtomicBool::new(false),
            error: OrderedMutex::new(rank::REPLICA_ERR, None),
        });
        let thread_shared = Arc::clone(&shared);
        let wal_path_t = wal_path.clone();
        let handle = std::thread::Builder::new()
            .name("minirel-replica-tail".into())
            .spawn(move || {
                let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    let bytes = match std::fs::read(&wal_path_t) {
                        Ok(b) => b,
                        Err(e) => {
                            *thread_shared.error.lock() =
                                Some(format!("tail read {}: {e}", wal_path_t.display()));
                            return;
                        }
                    };
                    if (bytes.len() as u64) < offset {
                        // The log shrank: the leader restarted and
                        // rotated. This follower's stream is over.
                        *thread_shared.error.lock() =
                            Some("wal rotated under the tailing replica".into());
                        return;
                    }
                    let tail = &bytes[offset as usize..];
                    let (records, _) = wal::scan_records(tail);
                    let mut consumed = 0u64;
                    let mut scanned = 0u64;
                    for rec in &records {
                        scanned += (wal::RECORD_HEADER + rec.payload.len()) as u64;
                        if let Err(e) = apply_record(&thread_shared, &mut pending, rec) {
                            *thread_shared.error.lock() = Some(e.to_string());
                            return;
                        }
                        if matches!(rec.kind, KIND_COMMIT | KIND_CHECKPOINT) {
                            consumed = scanned;
                        }
                    }
                    // Only advance past whole committed groups; images
                    // without their commit yet are re-read next poll.
                    pending.clear();
                    offset += consumed;
                }
            })
            .expect("spawn replica tail thread");
        Ok(Replica {
            shared,
            handle: Some(handle),
        })
    }

    /// Run a SELECT on the replica (read lock; never touches the leader).
    pub fn query(&self, sql: &str) -> DbResult<ResultSet> {
        self.shared.db.read().query(sql)
    }

    /// [`Replica::query`] with positional `?` parameter bindings. The
    /// plan cache lives in the follower database, so repeated monitor
    /// queries re-plan only after a catalog-changing commit is applied
    /// (which swaps the catalog and invalidates cached plans).
    pub fn query_with(&self, sql: &str, params: &[crate::value::Value]) -> DbResult<ResultSet> {
        self.shared.db.read().query_with(sql, params)
    }

    /// Run `f` over the follower database under the read lock.
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.shared.db.read())
    }

    /// LSN of the last commit the replica has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.shared.applied_lsn.load(Ordering::Acquire)
    }

    /// Block until the replica has applied `lsn` (or `timeout` passes).
    /// Returns whether the target was reached.
    pub fn wait_for_lsn(&self, lsn: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.applied_lsn() < lsn {
            if Instant::now() >= deadline || self.error().is_some() {
                return self.applied_lsn() >= lsn;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// The apply thread's fatal error, if it hit one.
    pub fn error(&self) -> Option<String> {
        self.shared.error.lock().clone()
    }

    /// Stop the apply thread and return the follower database (its state
    /// as of the last applied commit).
    pub fn stop(mut self) -> Database {
        self.shutdown();
        // Drop runs after, but handle is already None and the shared Arc
        // is still alive here; unwrap the database out of the lock.
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(s) => s.db.into_inner(),
            Err(shared) => {
                // An outstanding clone exists (should not happen: we
                // never hand the Arc out) — fall back to a fresh empty db.
                let _ = shared;
                Database::in_memory()
            }
        }
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut db = Database::in_memory();
        db.execute("create table crawl (oid int, url text, relevance float)")
            .unwrap();
        db.execute("create index crawl_oid on crawl (oid)").unwrap();
        db.execute("insert into crawl values (1, 'http://a', 0.9), (2, 'http://b', 0.4)")
            .unwrap();
        db
    }

    #[test]
    fn catalog_image_roundtrip() {
        let db = sample_db();
        let img = encode_catalog(db.catalog());
        let cat = decode_catalog(&img).unwrap();
        assert_eq!(cat.table_names(), db.catalog().table_names());
        let tid = cat.table_id("crawl").unwrap();
        let t = cat.table(tid);
        assert_eq!(t.schema.columns.len(), 3);
        assert_eq!(t.heap.len(), 2);
        assert_eq!(t.indexes.len(), 1);
        assert_eq!(t.indexes[0].name, "crawl_oid");
        assert_eq!(
            t.indexes[0].btree.root(),
            db.catalog().table(tid).indexes[0].btree.root()
        );
    }

    #[test]
    fn catalog_image_preserves_dropped_slots() {
        let mut db = Database::in_memory();
        db.execute("create table a (x int)").unwrap();
        db.execute("create table b (y int)").unwrap();
        let b_id = db.table_id("b").unwrap();
        db.execute("drop table a").unwrap();
        let cat = decode_catalog(&encode_catalog(db.catalog())).unwrap();
        assert_eq!(cat.table_id("b").unwrap(), b_id, "TableIds must be stable");
        assert!(cat.table_id("a").is_err());
    }

    #[test]
    fn catalog_image_truncation_is_corrupt() {
        let db = sample_db();
        let img = encode_catalog(db.catalog());
        for cut in 1..img.len() {
            match decode_catalog(&img[..cut]) {
                Err(DbError::Corrupt(_)) => {}
                Ok(_) => panic!("cut at {cut} decoded"),
                Err(e) => panic!("cut at {cut}: unexpected error {e}"),
            }
        }
    }

    #[test]
    fn replica_follows_in_memory_leader() {
        let mut leader = Database::in_memory_durable(64, 1);
        leader
            .execute("create table crawl (oid int, relevance float)")
            .unwrap();
        leader.execute("insert into crawl values (1, 0.9)").unwrap();
        let replica = Replica::spawn(&mut leader).unwrap();
        // Base snapshot state is visible immediately.
        let rs = replica.query("select count(*) from crawl").unwrap();
        assert_eq!(rs.scalar_i64(), Some(1));
        // New committed writes flow through.
        leader
            .execute("insert into crawl values (2, 0.4), (3, 0.8)")
            .unwrap();
        let lsn = leader.commit().unwrap();
        assert!(replica.wait_for_lsn(lsn, Duration::from_secs(5)));
        let rs = replica.query("select count(*) from crawl").unwrap();
        assert_eq!(rs.scalar_i64(), Some(3), "err={:?}", replica.error());
        // The replica is read-only by construction (query() is SELECT-only).
        assert!(replica.with_db(|db| db.query("delete from crawl").is_err()));
        // DDL replicates too.
        leader
            .execute("create table hubs (oid int, score float)")
            .unwrap();
        leader.execute("insert into hubs values (7, 1.0)").unwrap();
        let lsn = leader.commit().unwrap();
        assert!(replica.wait_for_lsn(lsn, Duration::from_secs(5)));
        let rs = replica.query("select oid from hubs").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(7));
    }

    #[test]
    fn replica_stop_returns_follower() {
        let mut leader = Database::in_memory_durable(64, 1);
        leader.execute("create table t (a int)").unwrap();
        leader.execute("insert into t values (5)").unwrap();
        let replica = Replica::spawn(&mut leader).unwrap();
        let db = replica.stop();
        assert_eq!(
            db.query("select a from t").unwrap().rows[0][0],
            Value::Int(5)
        );
    }
}
