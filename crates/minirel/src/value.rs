//! SQL values: typed cells with total ordering and two byte encodings —
//! a row codec (compact, for heap pages) and a *memcomparable* key codec
//! (order-preserving, for B+tree keys).

use crate::error::{DbError, DbResult};
use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt;

/// One cell of a row.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before everything; equal to itself for grouping.
    Null,
    /// 64-bit signed integer (holds `oid`s, `tid`s, counters, timestamps).
    Int(i64),
    /// 64-bit float (scores, relevance, log-probabilities).
    Float(f64),
    /// UTF-8 string (URLs, topic names).
    Str(String),
}

impl Value {
    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promoted to f64); `None` for Null/Str.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; floats are *not* silently truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL truthiness: non-zero numbers are true; Null is false.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Total order used by ORDER BY, sort operators, and key encoding:
    /// `Null < numbers (Int/Float compared numerically) < strings`.
    /// NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }

    // ----- row codec (compact, self-delimiting) -----

    /// Append the compact row encoding of `self` to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.put_u8(0),
            Value::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(2);
                buf.put_f64_le(*f);
            }
            Value::Str(s) => {
                buf.put_u8(3);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }

    /// Decode one value from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> DbResult<Value> {
        if buf.is_empty() {
            return Err(DbError::Page("truncated value".into()));
        }
        let tag = buf.get_u8();
        Ok(match tag {
            0 => Value::Null,
            1 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Page("truncated int".into()));
                }
                Value::Int(buf.get_i64_le())
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Page("truncated float".into()));
                }
                Value::Float(buf.get_f64_le())
            }
            3 => {
                if buf.remaining() < 4 {
                    return Err(DbError::Page("truncated string length".into()));
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n {
                    return Err(DbError::Page("truncated string body".into()));
                }
                let s = std::str::from_utf8(&buf[..n])
                    .map_err(|_| DbError::Page("invalid utf8 in string".into()))?
                    .to_owned();
                buf.advance(n);
                Value::Str(s)
            }
            t => return Err(DbError::Page(format!("unknown value tag {t}"))),
        })
    }

    // ----- key codec (memcomparable) -----

    /// Append an order-preserving encoding: comparing encoded byte strings
    /// with `memcmp` equals [`Value::total_cmp`] on the originals *within a
    /// homogeneously-typed column* (which is what schema validation
    /// guarantees for every indexed column — ints stored into float columns
    /// are widened by [`crate::schema::Schema::check_row`]). Strings escape
    /// `0x00` so composite keys stay self-delimiting.
    pub fn encode_key(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Null => buf.put_u8(0x01),
            Value::Int(i) => {
                buf.put_u8(0x02);
                // Flip the sign bit so two's-complement sorts unsigned.
                buf.put_u64(*i as u64 ^ (1u64 << 63));
            }
            Value::Float(f) => {
                buf.put_u8(0x03);
                buf.put_u64(f64_to_ordered_bits(*f));
            }
            Value::Str(s) => {
                buf.put_u8(0x04);
                for &b in s.as_bytes() {
                    if b == 0x00 {
                        buf.put_u8(0x00);
                        buf.put_u8(0xFF);
                    } else {
                        buf.put_u8(b);
                    }
                }
                buf.put_u8(0x00);
                buf.put_u8(0x00);
            }
        }
    }
}

/// Map f64 bit patterns to u64s whose unsigned order equals `total_cmp`.
fn f64_to_ordered_bits(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 0 {
        bits | (1u64 << 63) // positive: set sign bit
    } else {
        !bits // negative: flip all
    }
}

/// Inverse of [`f64_to_ordered_bits`].
fn ordered_bits_to_f64(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1u64 << 63)) // was positive: clear sign bit
    } else {
        f64::from_bits(!bits) // was negative: flip all
    }
}

/// Encode a composite key.
pub fn encode_composite_key(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 9);
    for v in vals {
        v.encode_key(&mut out);
    }
    out
}

/// Decode a memcomparable composite key back into its values — the
/// inverse of [`encode_composite_key`]. Index-only scans use this to
/// serve queries straight from B+tree keys without touching the heap.
pub fn decode_composite_key(mut bytes: &[u8]) -> DbResult<Vec<Value>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let tag = bytes.get_u8();
        out.push(match tag {
            0x01 => Value::Null,
            0x02 => {
                if bytes.remaining() < 8 {
                    return Err(DbError::Page("truncated int key".into()));
                }
                Value::Int((bytes.get_u64() ^ (1u64 << 63)) as i64)
            }
            0x03 => {
                if bytes.remaining() < 8 {
                    return Err(DbError::Page("truncated float key".into()));
                }
                Value::Float(ordered_bits_to_f64(bytes.get_u64()))
            }
            0x04 => {
                let mut s = Vec::new();
                loop {
                    if bytes.remaining() < 1 {
                        return Err(DbError::Page("unterminated string key".into()));
                    }
                    let b = bytes.get_u8();
                    if b != 0x00 {
                        s.push(b);
                        continue;
                    }
                    if bytes.remaining() < 1 {
                        return Err(DbError::Page("unterminated string key".into()));
                    }
                    match bytes.get_u8() {
                        0xFF => s.push(0x00), // escaped NUL
                        0x00 => break,        // terminator
                        b => {
                            return Err(DbError::Page(format!("bad string key escape {b:#x}")));
                        }
                    }
                }
                Value::Str(
                    String::from_utf8(s)
                        .map_err(|_| DbError::Page("invalid utf8 in string key".into()))?,
                )
            }
            t => return Err(DbError::Page(format!("unknown key tag {t:#x}"))),
        });
    }
    Ok(out)
}

/// A row is just a boxed sequence of values.
pub type Row = Vec<Value>;

/// Encode a whole row with the compact codec.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(row.len() * 10);
    buf.put_u16_le(row.len() as u16);
    for v in row {
        v.encode(&mut buf);
    }
    buf
}

/// Decode a whole row.
pub fn decode_row(mut bytes: &[u8]) -> DbResult<Row> {
    if bytes.len() < 2 {
        return Err(DbError::Page("truncated row header".into()));
    }
    let n = bytes.get_u16_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(Value::decode(&mut bytes)?);
    }
    Ok(row)
}

/// Skip one encoded value without materializing it (no allocation, no
/// UTF-8 validation) — the cursor half of column-pruned decoding.
fn skip_value(buf: &mut &[u8]) -> DbResult<()> {
    if buf.is_empty() {
        return Err(DbError::Page("truncated value".into()));
    }
    let tag = buf.get_u8();
    let skip = match tag {
        0 => 0,
        1 | 2 => 8,
        3 => {
            if buf.remaining() < 4 {
                return Err(DbError::Page("truncated string length".into()));
            }
            buf.get_u32_le() as usize
        }
        t => return Err(DbError::Page(format!("bad value tag {t}"))),
    };
    if buf.remaining() < skip {
        return Err(DbError::Page("truncated value body".into()));
    }
    buf.advance(skip);
    Ok(())
}

/// Decode a row keeping only the columns marked in `keep`; the rest
/// come back as [`Value::Null`] placeholders (same arity, same column
/// positions). Skipped columns are never materialized — in particular,
/// text columns allocate nothing — which is what makes column-pruned
/// scans cheap. `keep` shorter than the row keeps nothing past its end.
pub fn decode_row_pruned(mut bytes: &[u8], keep: &[bool]) -> DbResult<Row> {
    if bytes.len() < 2 {
        return Err(DbError::Page("truncated row header".into()));
    }
    let n = bytes.get_u16_le() as usize;
    let mut row = Vec::with_capacity(n);
    for i in 0..n {
        if keep.get(i).copied().unwrap_or(false) {
            row.push(Value::decode(&mut bytes)?);
        } else {
            skip_value(&mut bytes)?;
            row.push(Value::Null);
        }
    }
    Ok(row)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                // Ints and equal-valued floats must hash alike because they
                // compare equal (used as hash-join/group keys).
                state.write_u8(1);
                state.write_u64(f64_to_ordered_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(1);
                state.write_u64(f64_to_ordered_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut s = buf.as_slice();
        Value::decode(&mut s).unwrap()
    }

    #[test]
    fn row_codec_round_trips() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("http://example.org/?q=bike".into()),
        ];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
        for v in &row {
            assert_eq!(&roundtrip(v), v);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[5, 0, 9]).is_err()); // bogus tag 9
        let mut buf = encode_row(&[Value::Str("hello".into())]);
        buf.truncate(buf.len() - 2); // chop string body
        assert!(decode_row(&buf).is_err());
    }

    #[test]
    fn total_order_across_types() {
        let vals = [
            Value::Null,
            Value::Float(f64::NEG_INFINITY),
            Value::Int(-5),
            Value::Float(-1.5),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(1),
            Value::Float(f64::INFINITY),
            Value::Str("a".into()),
            Value::Str("b".into()),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        use std::hash::BuildHasher;
        assert_eq!(Value::Int(3), Value::Float(3.0));
        let b = std::collections::hash_map::RandomState::new();
        let h = |v: &Value| b.hash_one(v);
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn key_encoding_preserves_order_per_type() {
        // Key columns are homogeneously typed (schema validation widens
        // ints in float columns), so order preservation is asserted within
        // each type, with Null sorting below everything.
        let groups: Vec<Vec<Value>> = vec![
            vec![
                Value::Null,
                Value::Int(i64::MIN),
                Value::Int(-1),
                Value::Int(0),
                Value::Int(7),
                Value::Int(i64::MAX),
            ],
            vec![
                Value::Null,
                Value::Float(f64::NEG_INFINITY),
                Value::Float(-1e300),
                Value::Float(-0.0),
                Value::Float(3.25),
                Value::Float(f64::INFINITY),
            ],
            vec![
                Value::Null,
                Value::Str(String::new()),
                Value::Str("a\u{0}b".into()),
                Value::Str("ab".into()),
                Value::Str("b".into()),
            ],
        ];
        for vals in groups {
            let keys: Vec<Vec<u8>> = vals
                .iter()
                .map(|v| {
                    let mut b = Vec::new();
                    v.encode_key(&mut b);
                    b
                })
                .collect();
            for i in 0..keys.len() - 1 {
                assert!(
                    keys[i] < keys[i + 1],
                    "key order broken between {} and {}",
                    vals[i],
                    vals[i + 1]
                );
            }
        }
    }

    #[test]
    fn composite_key_round_trips() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Null],
            vec![Value::Int(i64::MIN), Value::Int(-1), Value::Int(i64::MAX)],
            vec![
                Value::Float(-0.0),
                Value::Float(3.25),
                Value::Float(f64::NEG_INFINITY),
            ],
            vec![
                Value::Str(String::new()),
                Value::Str("a\u{0}b".into()),
                Value::Str("plain".into()),
            ],
            vec![
                Value::Int(7),
                Value::Null,
                Value::Str("x".into()),
                Value::Float(-1e300),
            ],
        ];
        for row in rows {
            let key = encode_composite_key(&row);
            let back = decode_composite_key(&key).unwrap();
            // Compare bitwise (total_cmp treats -0.0 < 0.0 so Eq is fine,
            // but also check the debug form to catch sign-of-zero slips).
            assert_eq!(format!("{back:?}"), format!("{row:?}"));
        }
    }

    #[test]
    fn composite_key_decode_rejects_garbage() {
        assert!(decode_composite_key(&[0x09]).is_err()); // unknown tag
        assert!(decode_composite_key(&[0x02, 1, 2]).is_err()); // short int
        assert!(decode_composite_key(&[0x04, b'a']).is_err()); // unterminated
        assert!(decode_composite_key(&[0x04, 0x00, 0x07]).is_err()); // bad escape
    }

    #[test]
    fn composite_keys_are_prefix_free() {
        // ("a", 1) must not collide with ("a\0...",) style confusions.
        let k1 = encode_composite_key(&[Value::Str("a".into()), Value::Int(1)]);
        let k2 = encode_composite_key(&[Value::Str("a\u{0}".into()), Value::Int(1)]);
        let k3 = encode_composite_key(&[Value::Str("a".into()), Value::Int(2)]);
        assert!(k1 < k2);
        assert!(k1 < k3);
        assert_ne!(k2, k3);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(2).is_truthy());
        assert!(Value::Float(0.1).is_truthy());
        assert!(!Value::Str(String::new()).is_truthy());
    }
}
