//! The database facade: buffer pool + catalog + SQL session.
//!
//! This is the "DB2 connection" the Focus system's modules (crawler,
//! classifier, distiller, monitor) share. It exposes both the SQL path and
//! direct storage handles — the paper's hot loops are ODBC/CLI routines,
//! ours call the catalog/B+tree APIs directly through
//! [`Database::parts_mut`] (writers) and [`Database::parts`] (readers).
//!
//! # What `&self` vs `&mut self` promises
//!
//! The receiver type is the concurrency contract:
//!
//! * `&self` methods ([`Database::query`], [`Database::io_stats`],
//!   [`Database::catalog`], [`Database::parts`], …) never change logical
//!   database state and are safe to call from many threads at once —
//!   page traffic goes through the interior-mutable, lock-striped
//!   [`BufferPool`], which serializes frame access per shard.
//! * `&mut self` methods ([`Database::execute`], [`Database::insert`],
//!   …) may rewrite heap pages and B+tree nodes; Rust's aliasing rules
//!   make them exclusive against every reader.
//!
//! Share a `Database` behind an `RwLock` (as the crawler's session does)
//! and SELECT-only monitoring runs under the read lock, concurrent with
//! other monitors, while mutations take the write lock.

use crate::buffer::{BufferPool, EvictionPolicy, IoStats};
use crate::catalog::{Catalog, TableId};
use crate::disk::DiskManager;
use crate::error::{DbError, DbResult};
use crate::page::{PageId, PAGE_SIZE};
use crate::recovery;
use crate::sql::lower::{execute_plan, prepare_plan, ExecPlan};
use crate::sql::reference::{run_statement, StmtResult};
use crate::sql::{parse_script, parse_statement, Statement};
use crate::value::{Row, Value};
use crate::wal::{Wal, DEFAULT_GROUP_COMMIT};
use lockcheck::{rank, OrderedRwLock};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A reusable prepared statement: an immutable, `Send + Sync` physical
/// plan. Cheap to clone (it is an [`Arc`]) and executable from many
/// threads at once through [`Database::query_prepared`].
pub type Prepared = Arc<ExecPlan>;

/// Cache of prepared plans keyed by normalized (trimmed) SQL text.
/// Interior-mutable so the read-only query path can populate it through
/// `&self`; invalidated wholesale on any catalog change.
struct PlanCache {
    plans: OrderedRwLock<HashMap<String, Prepared>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            plans: OrderedRwLock::new(rank::PLAN_CACHE, HashMap::new()),
            hits: AtomicU64::default(),
            misses: AtomicU64::default(),
        }
    }
}

/// The WAL file that pairs with a data file at `data`: same path with
/// `.wal` appended (`crawl.db` → `crawl.db.wal`).
pub fn wal_path_for(data: &Path) -> PathBuf {
    let mut os = data.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

/// Rows + column names returned by a query.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
    /// Rows affected, for DML.
    pub affected: u64,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// First row, first column as i64 (convenience for `select count(*)`).
    pub fn scalar_i64(&self) -> Option<i64> {
        self.rows.first()?.first()?.as_i64()
    }

    /// First row, first column as f64.
    pub fn scalar_f64(&self) -> Option<f64> {
        self.rows.first()?.first()?.as_f64()
    }

    /// Render as an aligned text table (for examples and monitors).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = match v {
                            Value::Float(f) => format!("{f:.4}"),
                            other => other.to_string(),
                        };
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{s:>w$}", w = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

/// An embedded minirel database.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    current_timestamp: i64,
    sort_budget_override: Option<usize>,
    plan_cache: PlanCache,
}

impl Database {
    /// In-memory database with a default 256-frame (1 MB) buffer pool.
    pub fn in_memory() -> Database {
        Self::with_pool(DiskManager::in_memory(), 256, EvictionPolicy::Lru)
    }

    /// In-memory backing with an explicit pool size/policy (benchmarks).
    pub fn in_memory_with_frames(frames: usize) -> Database {
        Self::with_pool(DiskManager::in_memory(), frames, EvictionPolicy::Lru)
    }

    /// Temp-file-backed database (removed on drop).
    pub fn on_temp_file(frames: usize) -> DbResult<Database> {
        Ok(Self::with_pool(
            DiskManager::temp()?,
            frames,
            EvictionPolicy::Lru,
        ))
    }

    /// Full control over backing and eviction policy.
    pub fn with_pool(disk: DiskManager, frames: usize, policy: EvictionPolicy) -> Database {
        Database {
            pool: BufferPool::new(disk, frames, policy),
            catalog: Catalog::new(),
            current_timestamp: 0,
            sort_budget_override: None,
            plan_cache: PlanCache::default(),
        }
    }

    /// In-memory database with a write-ahead log (also in memory):
    /// durable *semantics* — commit points, replication stream, group
    /// commit — without files. What the crawler uses when it wants a
    /// replica but not crash persistence, and what the WAL-overhead
    /// bench compares against [`Database::in_memory_with_frames`].
    pub fn in_memory_durable(frames: usize, group_commit: usize) -> Database {
        let mut pool = BufferPool::new(DiskManager::in_memory(), frames, EvictionPolicy::Lru);
        pool.attach_wal(Arc::new(Wal::in_memory(group_commit)));
        Database {
            pool,
            catalog: Catalog::new(),
            current_timestamp: 0,
            sort_budget_override: None,
            plan_cache: PlanCache::default(),
        }
    }

    /// Open (or create) a durable database at `path`, with its WAL at
    /// `path + ".wal"`. An existing pair is **recovered**: the log's
    /// valid prefix is replayed into the data file up to the last
    /// commit (redo-on-open; a torn tail is truncated by checksum), the
    /// catalog comes from that commit, and the log is rotated — the
    /// fresh log is written beside the old one and atomically renamed
    /// over it, so a crash mid-rotation still leaves one valid log.
    ///
    /// A data file with no WAL beside it is refused as corrupt rather
    /// than silently wiped or trusted: without a log there is no way to
    /// know what state the file is in (and no catalog to read it with).
    pub fn open(path: &Path, frames: usize) -> DbResult<Database> {
        Self::open_with(path, frames, DEFAULT_GROUP_COMMIT)
    }

    /// [`Database::open`] with an explicit group-commit quota
    /// (commits per fsync; 1 = every commit is durable immediately).
    pub fn open_with(path: &Path, frames: usize, group_commit: usize) -> DbResult<Database> {
        let wal_path = wal_path_for(path);
        if path.exists() && !wal_path.exists() {
            return Err(DbError::Corrupt(format!(
                "data file {} exists without its wal {} — cannot establish a committed state",
                path.display(),
                wal_path.display()
            )));
        }
        let mut disk = DiskManager::at_path(path)?;
        let (catalog, next_lsn) = if wal_path.exists() {
            let bytes = std::fs::read(&wal_path).map_err(|e| DbError::io("read", &wal_path, e))?;
            match recovery::replay_into(&mut disk, &bytes)? {
                Some(rec) => {
                    disk.sync_all()?;
                    (rec.catalog, rec.last_lsn + 1)
                }
                None => (Catalog::new(), 1),
            }
        } else {
            (Catalog::new(), 1)
        };
        // Rotate: fresh log seeded with one commit carrying the
        // recovered catalog, written at a temp path then renamed.
        let tmp = {
            let mut os = wal_path.as_os_str().to_owned();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let wal = Wal::create_file(&tmp, group_commit, next_lsn)?;
        wal.commit(&recovery::encode_catalog(&catalog), disk.num_pages())?;
        wal.sync()?;
        wal.rename_to(&wal_path)?;
        let mut pool = BufferPool::new(disk, frames, EvictionPolicy::Lru);
        pool.attach_wal(Arc::new(wal));
        Ok(Database {
            pool,
            catalog,
            current_timestamp: 0,
            sort_budget_override: None,
            plan_cache: PlanCache::default(),
        })
    }

    /// The attached WAL handle, when this database is durable.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.pool.wal()
    }

    /// Commit: log every dirty page image plus the catalog, append a
    /// Commit record, and publish to replicas. fsync happens on the
    /// group-commit quota ([`Database::commit_durable`] forces it).
    /// Returns the commit's LSN.
    pub fn commit(&mut self) -> DbResult<u64> {
        let wal = self.pool.wal().ok_or_else(|| {
            DbError::ReadOnly(
                "commit() requires a durable database (open/in_memory_durable)".into(),
            )
        })?;
        self.pool.log_dirty_frames()?;
        wal.commit(
            &recovery::encode_catalog(&self.catalog),
            self.pool.num_pages(),
        )
    }

    /// [`Database::commit`] plus a forced WAL fsync — the point after
    /// which the commit survives a crash.
    pub fn commit_durable(&mut self) -> DbResult<u64> {
        let lsn = self.commit()?;
        self.pool.wal().expect("commit() verified the wal").sync()?;
        Ok(lsn)
    }

    /// Incremental checkpoint: commit, then copy every page image the
    /// log is carrying into the data file and mark the log with a
    /// checkpoint record. Rides the page images already logged by the
    /// ordinary flush path — nothing is re-serialized from the catalog
    /// up. Afterwards pool misses read the data file again and an
    /// in-memory log drops its retained bytes.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let wal = self
            .pool
            .wal()
            .ok_or_else(|| DbError::ReadOnly("checkpoint() requires a durable database".into()))?;
        self.commit()?;
        wal.sync()?;
        let mut buf = [0u8; PAGE_SIZE];
        for pid in wal.indexed_pages() {
            if wal.read_page_into(pid, &mut buf)? {
                self.pool.write_data_direct(pid, &buf)?;
            }
        }
        self.pool.sync_data()?;
        wal.checkpoint_done(self.pool.num_pages())
    }

    /// Total pages in the backing store.
    pub fn num_pages(&self) -> u32 {
        self.pool.num_pages()
    }

    /// Copy of page `pid`'s current bytes (replica base snapshots).
    pub fn page_snapshot(&self, pid: PageId) -> DbResult<[u8; PAGE_SIZE]> {
        self.pool.with_page(pid, |b| {
            let mut out = [0u8; PAGE_SIZE];
            out.copy_from_slice(b);
            out
        })
    }

    /// Install a committed page image (replica apply path; see
    /// [`BufferPool::install_page`]).
    pub fn install_page(&self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        self.pool.install_page(pid, buf)
    }

    /// Swap in a catalog decoded from a WAL commit (replica apply path).
    pub fn replace_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
        self.invalidate_plans();
    }

    /// Clone this database's committed state into a fresh in-memory
    /// database (the replica base snapshot). `&mut self` guarantees no
    /// writer is mid-flight, so the copy is a clean commit boundary.
    pub fn clone_committed_state(&mut self) -> DbResult<Database> {
        let follower = Database::in_memory_with_frames(self.pool.capacity());
        for pid in 0..self.pool.num_pages() {
            let img = self.page_snapshot(pid)?;
            follower.install_page(pid, &img)?;
        }
        let mut follower = follower;
        follower.replace_catalog(recovery::decode_catalog(&recovery::encode_catalog(
            &self.catalog,
        ))?);
        follower.current_timestamp = self.current_timestamp;
        Ok(follower)
    }

    /// Assemble a database from recovered parts (file-tailing replicas).
    pub(crate) fn from_recovered_parts(
        disk: DiskManager,
        frames: usize,
        catalog: Catalog,
    ) -> Database {
        Database {
            pool: BufferPool::new(disk, frames, EvictionPolicy::Lru),
            catalog,
            current_timestamp: 0,
            sort_budget_override: None,
            plan_cache: PlanCache::default(),
        }
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DbResult<ResultSet> {
        let stmt = parse_statement(sql)?;
        self.run(&stmt)
    }

    /// Execute a `;`-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> DbResult<ResultSet> {
        let stmts = parse_script(sql)?;
        let mut last = ResultSet::default();
        for stmt in &stmts {
            last = self.run(stmt)?;
        }
        Ok(last)
    }

    /// Execute a **SELECT** (or `EXPLAIN <select>`) through shared
    /// borrows only — the read path monitors use so observing a crawl
    /// never blocks it. Plans through the staged pipeline and caches the
    /// plan; equivalent to `query_with(sql, &[])`. Returns
    /// [`DbError::ReadOnly`] for any other statement kind; route DDL/DML
    /// through [`Database::execute`], which is exclusive.
    pub fn query(&self, sql: &str) -> DbResult<ResultSet> {
        self.query_with(sql, &[])
    }

    /// [`Database::query`] with positional `?` parameter bindings.
    /// The plan is prepared (or fetched from the cache) and executed with
    /// `params` substituted — no SQL string formatting, no re-planning on
    /// repeat queries.
    pub fn query_with(&self, sql: &str, params: &[Value]) -> DbResult<ResultSet> {
        let plan = self.prepare(sql)?;
        self.query_prepared(&plan, params)
    }

    /// Prepare a SELECT / `EXPLAIN <select>` into a cached, reusable
    /// plan. Cache hits are allocation-free: a read-lock, a map probe on
    /// the trimmed SQL text, and an [`Arc`] bump. The cache is
    /// invalidated by DDL and replica catalog swaps, never by DML —
    /// plans read table data at execution time.
    pub fn prepare(&self, sql: &str) -> DbResult<Prepared> {
        let key = sql.trim();
        if let Some(p) = self.plan_cache.plans.read().get(key) {
            self.plan_cache.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(p));
        }
        self.plan_cache.misses.fetch_add(1, Ordering::Relaxed);
        let stmt = parse_statement(sql)?;
        let (sel, explain_only) = match &stmt {
            Statement::Select(q) => (q.as_ref(), false),
            Statement::Explain(q) => (q.as_ref(), true),
            _ => {
                return Err(DbError::ReadOnly(format!(
                    "query() accepts SELECT only (got {})",
                    sql.split_whitespace().next().unwrap_or("")
                )))
            }
        };
        let plan = Arc::new(prepare_plan(&self.catalog, sel, explain_only)?);
        self.plan_cache
            .plans
            .write()
            .insert(key.to_owned(), Arc::clone(&plan));
        Ok(plan)
    }

    /// Execute a prepared plan with `params` bound to its `?`
    /// placeholders. Shared-borrow: runs concurrently with other readers.
    pub fn query_prepared(&self, plan: &Prepared, params: &[Value]) -> DbResult<ResultSet> {
        let rows = execute_plan(
            &self.pool,
            &self.catalog,
            plan,
            params,
            self.current_timestamp,
            self.sort_budget_rows(),
        )?;
        Ok(Self::plan_result(plan, rows))
    }

    /// `(hits, misses)` of the prepared-plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (
            self.plan_cache.hits.load(Ordering::Relaxed),
            self.plan_cache.misses.load(Ordering::Relaxed),
        )
    }

    fn invalidate_plans(&self) {
        self.plan_cache.plans.write().clear();
    }

    fn plan_result(plan: &ExecPlan, rows: Vec<Row>) -> ResultSet {
        ResultSet {
            columns: if plan.explain_only {
                vec!["plan".to_owned()]
            } else {
                plan.columns.clone()
            },
            rows,
            affected: 0,
        }
    }

    fn run(&mut self, stmt: &crate::sql::Statement) -> DbResult<ResultSet> {
        let budget = self.sort_budget_rows();
        match stmt {
            // SELECT/EXPLAIN go through the planner (uncached: `execute`
            // is the one-shot path; repeat queries belong on `query`).
            Statement::Select(q) => {
                let plan = prepare_plan(&self.catalog, q, false)?;
                let rows = execute_plan(
                    &self.pool,
                    &self.catalog,
                    &plan,
                    &[],
                    self.current_timestamp,
                    budget,
                )?;
                Ok(Self::plan_result(&plan, rows))
            }
            Statement::Explain(q) => {
                let plan = prepare_plan(&self.catalog, q, true)?;
                let rows = execute_plan(
                    &self.pool,
                    &self.catalog,
                    &plan,
                    &[],
                    self.current_timestamp,
                    budget,
                )?;
                Ok(Self::plan_result(&plan, rows))
            }
            _ => {
                let res = run_statement(
                    &self.pool,
                    &mut self.catalog,
                    self.current_timestamp,
                    budget,
                    stmt,
                )?;
                match res {
                    StmtResult::Rows(rel) => Ok(ResultSet {
                        columns: rel.cols.into_iter().map(|c| c.name).collect(),
                        rows: rel.rows,
                        affected: 0,
                    }),
                    StmtResult::Affected(n) => Ok(ResultSet {
                        affected: n,
                        ..Default::default()
                    }),
                    StmtResult::Done => {
                        // DDL changed the catalog out from under any
                        // cached plans.
                        self.invalidate_plans();
                        Ok(ResultSet::default())
                    }
                }
            }
        }
    }

    /// Set the session clock used by `current timestamp` (seconds).
    pub fn set_current_timestamp(&mut self, secs: i64) {
        self.current_timestamp = secs;
    }

    /// Session clock.
    pub fn current_timestamp(&self) -> i64 {
        self.current_timestamp
    }

    /// External-sort memory budget (rows). Defaults to a value proportional
    /// to the buffer pool so that shrinking the pool also shrinks sort
    /// memory — the coupling the Figure 8(b) sweep depends on.
    pub fn sort_budget_rows(&self) -> usize {
        self.sort_budget_override
            .unwrap_or_else(|| (self.pool.capacity() * PAGE_SIZE / 48).max(64))
    }

    /// Override the sort budget (None restores the pool-derived default).
    pub fn set_sort_budget_rows(&mut self, rows: Option<usize>) {
        self.sort_budget_override = rows;
    }

    /// I/O counters of the buffer pool (atomic; callable concurrently
    /// with readers and writers).
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Resize the buffer pool (flushes first).
    pub fn set_pool_frames(&mut self, frames: usize) -> DbResult<()> {
        self.pool.set_capacity(frames)
    }

    /// Buffer pool frame count.
    pub fn pool_frames(&self) -> usize {
        self.pool.capacity()
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.catalog.table_id(name)
    }

    /// Row count of a table.
    pub fn table_len(&self, name: &str) -> DbResult<u64> {
        Ok(self.catalog.table(self.catalog.table_id(name)?).heap.len())
    }

    /// Borrow the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Split borrows for direct-operator code paths (classifier/distiller
    /// hot loops; the paper's CLI routines). The pool comes back shared —
    /// it is interior-mutable — while the catalog borrow is exclusive,
    /// so heap/index mutations stay single-writer.
    pub fn parts_mut(&mut self) -> (&BufferPool, &mut Catalog) {
        (&self.pool, &mut self.catalog)
    }

    /// Shared split borrows for read-only operator paths (index probes,
    /// scans) that can run concurrently with other readers.
    pub fn parts(&self) -> (&BufferPool, &Catalog) {
        (&self.pool, &self.catalog)
    }

    /// Insert a row through the typed API (faster than SQL for bulk loads).
    pub fn insert(&mut self, table: TableId, row: Row) -> DbResult<()> {
        self.catalog.insert_row(&self.pool, table, row)?;
        Ok(())
    }

    /// Insert many rows in one batch: each secondary index is
    /// maintained with a single sorted pass instead of one descent per
    /// row (the §3.1 batch-oriented access path, write side).
    pub fn insert_many(&mut self, table: TableId, rows: Vec<Row>) -> DbResult<()> {
        self.catalog.insert_many(&self.pool, table, rows)?;
        Ok(())
    }

    /// Query helper asserting a single row.
    pub fn query_row(&mut self, sql: &str) -> DbResult<Row> {
        let rs = self.execute(sql)?;
        match rs.rows.len() {
            1 => Ok(rs.rows.into_iter().next().expect("len checked")),
            n => Err(DbError::Eval(format!("expected exactly 1 row, got {n}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::in_memory()
    }

    #[test]
    fn end_to_end_create_insert_select() {
        let mut db = db();
        db.execute("create table crawl (oid int, url text, relevance float, numtries int)")
            .unwrap();
        db.execute(
            "insert into crawl values (1, 'http://a', 0.9, 0), (2, 'http://b', 0.2, 3), (3, 'http://c', 0.7, 0)",
        )
        .unwrap();
        let rs = db
            .execute(
                "select url, relevance from crawl where relevance > 0.5 order by relevance desc",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["url", "relevance"]);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("http://a".into()));
        assert_eq!(rs.rows[1][0], Value::Str("http://c".into()));
    }

    #[test]
    fn group_by_having_shape_of_monitoring_query() {
        let mut db = db();
        db.execute("create table crawl (oid int, relevance float, lastvisited int)")
            .unwrap();
        for i in 0..120 {
            db.execute(&format!(
                "insert into crawl values ({i}, {}, {})",
                if i % 2 == 0 { "0.0" } else { "-2.0" },
                i * 30 // two rows per minute
            ))
            .unwrap();
        }
        db.set_current_timestamp(3600);
        let rs = db
            .execute(
                "select minute(lastvisited), avg(exp(relevance)) from crawl \
                 where lastvisited + 1 hour > current timestamp \
                 group by minute(lastvisited) order by minute(lastvisited)",
            )
            .unwrap();
        // lastvisited ranges 0..3570; cutoff lastvisited > 0 → 119 rows,
        // 60 minutes worth of groups.
        assert_eq!(rs.rows.len(), 60);
        // avg(exp(0)) and avg(exp(-2)) mix: strictly between exp(-2) and 1.
        for row in &rs.rows {
            let v = row[1].as_f64().unwrap();
            assert!(v > 0.13 && v <= 1.0);
        }
    }

    #[test]
    fn update_with_scalar_subquery_normalizes() {
        let mut db = db();
        db.execute("create table hubs (oid int, score float)")
            .unwrap();
        db.execute("insert into hubs values (1, 2.0), (2, 6.0)")
            .unwrap();
        db.execute("update hubs set (score) = score / (select sum(score) from hubs)")
            .unwrap();
        let rs = db.execute("select sum(score) from hubs").unwrap();
        assert!((rs.scalar_f64().unwrap() - 1.0).abs() < 1e-12);
        let rs = db.execute("select score from hubs where oid = 2").unwrap();
        assert!((rs.scalar_f64().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn figure4_hub_update_runs() {
        let mut db = db();
        db.execute("create table auth (oid int, score float)")
            .unwrap();
        db.execute("create table hubs (oid int, score float)")
            .unwrap();
        db.execute(
            "create table link (oid_src int, sid_src int, oid_dst int, sid_dst int, wgt_fwd float, wgt_rev float)",
        )
        .unwrap();
        // Two servers; a nepotistic self-server edge must be ignored.
        db.execute("insert into auth values (10, 0.5), (11, 0.5)")
            .unwrap();
        db.execute(
            "insert into link values \
             (1, 100, 10, 200, 1.0, 0.8), \
             (1, 100, 11, 200, 1.0, 0.6), \
             (2, 100, 10, 100, 1.0, 0.9)", // same server: filtered
        )
        .unwrap();
        db.execute(
            "insert into hubs(oid, score) \
             (select oid_src, sum(score * wgt_rev) from auth, link \
              where sid_src <> sid_dst and oid = oid_dst group by oid_src)",
        )
        .unwrap();
        let rs = db
            .execute("select oid, score from hubs order by oid")
            .unwrap();
        assert_eq!(rs.rows.len(), 1); // only hub 1 (hub 2's edge was nepotistic)
        assert_eq!(rs.rows[0][0], Value::Int(1));
        assert!((rs.rows[0][1].as_f64().unwrap() - (0.5 * 0.8 + 0.5 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn figure3_bulkprobe_shape_runs() {
        let mut db = db();
        db.execute("create table stat_c0 (kcid int, tid int, logtheta float)")
            .unwrap();
        db.execute("create table document (did int, tid int, freq int)")
            .unwrap();
        db.execute("create table taxonomy (pcid int, kcid int, logprior float, logdenom float)")
            .unwrap();
        // Taxonomy: parent 0 with kids 1, 2.
        db.execute("insert into taxonomy values (0, 1, -0.69, -3.0), (0, 2, -0.69, -2.0)")
            .unwrap();
        // Features: term 7 known to both kids; term 8 only kid 1.
        db.execute("insert into stat_c0 values (1, 7, -1.0), (2, 7, -2.0), (1, 8, -1.5)")
            .unwrap();
        // Document 100 mentions term 7 twice and unknown term 9 once.
        db.execute("insert into document values (100, 7, 2), (100, 9, 1)")
            .unwrap();
        let rs = db
            .execute(
                "with
                 partial(did, kcid, lpr1) as
                  (select did, taxonomy.kcid, sum(freq * (logtheta + logdenom))
                   from stat_c0, document, taxonomy
                   where taxonomy.pcid = 0
                     and stat_c0.tid = document.tid
                     and stat_c0.kcid = taxonomy.kcid
                   group by did, taxonomy.kcid),
                 doclen(did, len) as
                  (select did, sum(freq) from document
                   where tid in (select tid from stat_c0) group by did),
                 complete(did, kcid, lpr2) as
                  (select did, kcid, - len * logdenom
                   from doclen, taxonomy where pcid = 0)
                 select c.did, c.kcid, lpr2 + coalesce(lpr1, 0)
                 from complete as c left outer join partial as p
                   on c.did = p.did and c.kcid = p.kcid
                 order by c.kcid",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        // Only term 7 is a feature present in the doc: len = 2.
        // kid 1: lpr2 = -2*(-3) = 6; lpr1 = 2*(-1 + -3) = -8; total -2.
        // kid 2: lpr2 = -2*(-2) = 4; lpr1 = 2*(-2 + -2) = -8; total -4.
        assert_eq!(rs.rows[0][1], Value::Int(1));
        assert!((rs.rows[0][2].as_f64().unwrap() - -2.0).abs() < 1e-9);
        assert_eq!(rs.rows[1][1], Value::Int(2));
        assert!((rs.rows[1][2].as_f64().unwrap() - -4.0).abs() < 1e-9);
    }

    #[test]
    fn census_query_with_cte_and_join() {
        let mut db = db();
        db.execute("create table crawl (oid int, kcid int)")
            .unwrap();
        db.execute("create table taxonomy (kcid int, name text)")
            .unwrap();
        db.execute("insert into taxonomy values (1, 'cycling'), (2, 'investing')")
            .unwrap();
        for i in 0..10 {
            db.execute(&format!(
                "insert into crawl values ({i}, {})",
                if i < 7 { 1 } else { 2 }
            ))
            .unwrap();
        }
        let rs = db
            .execute(
                "with census(kcid, cnt) as
                   (select kcid, count(oid) from crawl group by kcid)
                 select census.kcid, cnt, name from census, taxonomy
                 where census.kcid = taxonomy.kcid order by cnt",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][2], Value::Str("investing".into()));
        assert_eq!(rs.rows[0][1], Value::Int(3));
        assert_eq!(rs.rows[1][1], Value::Int(7));
    }

    #[test]
    fn nested_in_subqueries() {
        let mut db = db();
        db.execute("create table crawl (oid int, url text, relevance float, numtries int)")
            .unwrap();
        db.execute("create table hubs (oid int, score float)")
            .unwrap();
        db.execute("create table link (oid_src int, sid_src int, oid_dst int, sid_dst int)")
            .unwrap();
        db.execute("insert into hubs values (1, 0.9), (2, 0.001)")
            .unwrap();
        db.execute("insert into link values (1, 10, 5, 20), (2, 10, 6, 20), (1, 10, 7, 10)")
            .unwrap();
        db.execute(
            "insert into crawl values (5, 'u5', 0.0, 0), (6, 'u6', 0.0, 0), (7, 'u7', 0.0, 0)",
        )
        .unwrap();
        let rs = db
            .execute(
                "select url, relevance from crawl where oid in
                   (select oid_dst from link
                    where oid_src in (select oid from hubs where score > 0.5)
                      and sid_src <> sid_dst)
                 and numtries = 0",
            )
            .unwrap();
        // Hub 1 → dst 5 (cross-server) and dst 7 (same server, filtered).
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Str("u5".into()));
    }

    #[test]
    fn delete_and_affected_counts() {
        let mut db = db();
        db.execute("create table t (a int)").unwrap();
        let rs = db.execute("insert into t values (1), (2), (3)").unwrap();
        assert_eq!(rs.affected, 3);
        let rs = db.execute("delete from t where a >= 2").unwrap();
        assert_eq!(rs.affected, 2);
        let rs = db.execute("select count(*) from t").unwrap();
        assert_eq!(rs.scalar_i64(), Some(1));
        let rs = db.execute("delete from t").unwrap();
        assert_eq!(rs.affected, 1);
    }

    #[test]
    fn distinct_and_limit() {
        let mut db = db();
        db.execute("create table t (a int)").unwrap();
        db.execute("insert into t values (1), (1), (2), (2), (3)")
            .unwrap();
        let rs = db.execute("select distinct a from t order by a").unwrap();
        assert_eq!(rs.rows.len(), 3);
        let rs = db
            .execute("select a from t order by a desc limit 2")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn select_star_and_qualified_star_join() {
        let mut db = db();
        db.execute("create table a (x int)").unwrap();
        db.execute("create table b (x int, y int)").unwrap();
        db.execute("insert into a values (1), (2)").unwrap();
        db.execute("insert into b values (1, 10), (3, 30)").unwrap();
        let rs = db.execute("select * from a join b on a.x = b.x").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(
            rs.rows[0],
            vec![Value::Int(1), Value::Int(1), Value::Int(10)]
        );
        let rs = db
            .execute("select a.x, b.y from a left outer join b on a.x = b.x order by a.x")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.rows[1][1].is_null());
    }

    #[test]
    fn binding_errors_are_descriptive() {
        let mut db = db();
        db.execute("create table t (a int)").unwrap();
        let e = db.execute("select nope from t").unwrap_err();
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("t.a"), "{e}");
        assert!(db.execute("select * from missing").is_err());
        assert!(db.execute("select sum(a), a from t").is_err()); // a not grouped
    }

    #[test]
    fn io_stats_move_under_sql() {
        let mut db = Database::in_memory_with_frames(4);
        db.execute("create table t (a int, b text)").unwrap();
        for i in 0..5000 {
            db.insert(
                db.table_id("t").unwrap(),
                vec![Value::Int(i), Value::Str(format!("row-{i}"))],
            )
            .unwrap();
        }
        db.reset_io_stats();
        db.execute("select count(*) from t").unwrap();
        let s = db.io_stats();
        assert!(s.logical_reads > 0);
        assert!(
            s.physical_reads > 0,
            "4-frame pool must miss on a multi-page scan"
        );
    }

    #[test]
    fn result_set_table_rendering() {
        let mut db = db();
        db.execute("create table t (name text, score float)")
            .unwrap();
        db.execute("insert into t values ('alpha', 0.5)").unwrap();
        let rs = db.execute("select name, score from t").unwrap();
        let table = rs.to_table();
        assert!(table.contains("name"));
        assert!(table.contains("alpha"));
        assert!(table.contains("0.5000"));
    }
}
