//! Result containers, paper-style printing, and JSON dumps.

use serde::{Deserialize, Serialize};

/// A named (x, y) series — one curve of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `"Avg over 100"`).
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from any point iterator.
    pub fn new(name: impl Into<String>, points: impl IntoIterator<Item = (f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points: points.into_iter().collect(),
        }
    }

    /// Last y value (steady state of a converging curve).
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of y over the final `frac` (0..1] of points.
    pub fn tail_mean(&self, frac: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let n = self.points.len();
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let tail = &self.points[n - k..];
        tail.iter().map(|&(_, y)| y).sum::<f64>() / k as f64
    }

    /// Downsample to at most `n` evenly spaced points (for printing).
    pub fn downsample(&self, n: usize) -> Series {
        if self.points.len() <= n || n == 0 {
            return self.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        let pts = (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect();
        Series {
            name: self.name.clone(),
            points: pts,
        }
    }

    /// Render as a fixed-width ASCII chart (y rescaled to `[0, ymax]`).
    pub fn ascii_chart(&self, width: usize, height: usize) -> String {
        if self.points.is_empty() {
            return format!("{}: (empty)\n", self.name);
        }
        let s = self.downsample(width);
        let ymax = s
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let mut grid = vec![vec![b' '; s.points.len()]; height];
        for (x, &(_, y)) in s.points.iter().enumerate() {
            let row = (((y / ymax) * (height - 1) as f64).round() as usize).min(height - 1);
            grid[height - 1 - row][x] = b'*';
        }
        let mut out = format!("{} (ymax = {ymax:.3})\n", self.name);
        for row in grid {
            out.push('|');
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(s.points.len()));
        out.push('\n');
        out
    }
}

/// Print an aligned two-column table of labeled values.
pub fn print_kv_table(title: &str, rows: &[(String, String)]) {
    println!("== {title} ==");
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<w$}  {v}");
    }
}

/// A paper-vs-measured comparison row for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Experiment id (e.g. "Fig 5b").
    pub experiment: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measures.
    pub measured: String,
    /// Does the shape hold?
    pub holds: bool,
}

/// Print comparisons as a markdown table (pasteable into EXPERIMENTS.md).
pub fn print_comparisons(rows: &[Comparison]) {
    println!("| experiment | paper | measured | shape holds |");
    println!("|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} |",
            r.experiment,
            r.paper,
            r.measured,
            if r.holds { "yes" } else { "NO" }
        );
    }
}

/// Dump any serializable result to `results/<name>.json` under the
/// workspace root (best effort; ignored if the directory is unwritable).
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(dir.join(format!("{name}.json")), s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_helpers() {
        let s = Series::new("t", (0..100).map(|i| (i as f64, i as f64)));
        assert_eq!(s.last_y(), Some(99.0));
        assert!(s.tail_mean(0.1) > 90.0);
        assert_eq!(s.downsample(10).points.len(), 10);
        let chart = s.ascii_chart(40, 8);
        assert!(chart.contains('*'));
        assert!(chart.lines().count() >= 9);
    }

    #[test]
    fn empty_series() {
        let s = Series::new("e", []);
        assert_eq!(s.last_y(), None);
        assert_eq!(s.tail_mean(0.5), 0.0);
        assert!(s.ascii_chart(10, 4).contains("empty"));
    }
}
