//! Figure 8(b) — memory scaling: running time vs buffer-pool size.
//!
//! The paper plots relative time per document as the DB2 buffer pool is
//! swept from 128 to 928 4 KB frames: `SingleProbe` "shows continual
//! reduction in running time as buffer pool is increased" (no locality),
//! while `BulkProbe`'s "running time steeply drops and stabilizes" once
//! sort memory suffices. We sweep minirel's pool; sort memory is derived
//! from it, exactly the coupling the paper describes.

use crate::common::Scale;
use crate::fig8a_classifier::setup;
use crate::report::Series;
use focus_classifier::bulk_probe::bulk_posterior;
use focus_classifier::single_probe::SingleProbeBlob;
use focus_types::ClassId;
use serde::Serialize;
use std::time::Instant;

/// Figure 8(b) output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8b {
    /// (frames, µs/doc) for SingleProbe.
    pub single: Series,
    /// (frames, µs/doc) for BulkProbe.
    pub bulk: Series,
    /// (frames, physical reads) for SingleProbe.
    pub single_io: Series,
    /// (frames, physical reads) for BulkProbe.
    pub bulk_io: Series,
}

/// Sweep the buffer pool.
pub fn run(scale: Scale) -> Fig8b {
    let sweeps: Vec<usize> = match scale {
        Scale::Tiny => vec![16, 32, 64, 128],
        Scale::Small => vec![16, 32, 64, 128, 256, 512],
        Scale::Full => vec![32, 64, 128, 228, 328, 528, 728, 928],
    };
    let mut single = Vec::new();
    let mut bulk = Vec::new();
    let mut single_io = Vec::new();
    let mut bulk_io = Vec::new();
    for &frames in &sweeps {
        let (mut db, tables, batch) = setup(scale, frames);
        let n = batch.len() as f64;

        db.reset_io_stats();
        let t = Instant::now();
        let sp = SingleProbeBlob { tables: &tables };
        for d in &batch {
            sp.posterior(&mut db, ClassId::ROOT, &d.terms)
                .expect("probe");
        }
        single.push((frames as f64, t.elapsed().as_micros() as f64 / n));
        single_io.push((frames as f64, db.io_stats().physical_reads as f64));

        db.reset_io_stats();
        let t = Instant::now();
        bulk_posterior(&mut db, &tables, ClassId::ROOT).expect("bulk");
        bulk.push((frames as f64, t.elapsed().as_micros() as f64 / n));
        bulk_io.push((frames as f64, db.io_stats().physical_reads as f64));
    }
    Fig8b {
        single: Series::new("SingleProbe us/doc", single),
        bulk: Series::new("BulkProbe us/doc", bulk),
        single_io: Series::new("SingleProbe physical reads", single_io),
        bulk_io: Series::new("BulkProbe physical reads", bulk_io),
    }
}

/// Print the sweep.
pub fn print(f: &Fig8b) {
    println!("--- Figure 8(b): memory scaling (buffer pool x 4kB) ---");
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>14}",
        "frames", "single us/doc", "bulk us/doc", "single phys", "bulk phys"
    );
    for i in 0..f.single.points.len() {
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>14} {:>14}",
            f.single.points[i].0,
            f.single.points[i].1,
            f.bulk.points[i].1,
            f.single_io.points[i].1,
            f.bulk_io.points[i].1
        );
    }
    println!(
        "paper: SingleProbe improves continually (no locality); \
         BulkProbe steeply drops then stabilizes"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let f = run(Scale::Tiny);
        let s = &f.single_io.points;
        let b = &f.bulk_io.points;
        // SingleProbe: physical reads keep falling across the whole sweep.
        assert!(
            s.first().unwrap().1 > s.last().unwrap().1,
            "single-probe I/O should fall with more frames: {s:?}"
        );
        // BulkProbe: stabilizes — the last two sweep points are close
        // (within 25% or 200 reads), while the first point is the worst.
        let n = b.len();
        let last = b[n - 1].1;
        let prev = b[n - 2].1;
        assert!(
            (last - prev).abs() <= (prev * 0.25).max(200.0),
            "bulk should have stabilized: {b:?}"
        );
        assert!(
            b[0].1 >= last,
            "bulk I/O at the smallest pool should be the worst: {b:?}"
        );
    }
}
