//! §2 — empirical verification of the radius-1 / radius-2 rules on the
//! generated web (the paper verified them on Yahoo!-cataloged pages and
//! patents; "a page that points to a given first level topic of Yahoo!
//! has about a 45% chance of having another link to the same topic").

use crate::common::Scale;
use focus_webgraph::stats::{radius1, radius2};
use focus_webgraph::{WebConfig, WebGraph};
use serde::Serialize;

/// Per-topic radius-rule measurements.
#[derive(Debug, Clone, Serialize)]
pub struct TopicRadius {
    /// Topic name.
    pub topic: String,
    /// P(target same topic | source on topic).
    pub r1_on: f64,
    /// P(target same topic | source off topic).
    pub r1_off: f64,
    /// Radius-1 lift.
    pub r1_lift: f64,
    /// P(≥1 link to topic).
    pub r2_any: f64,
    /// P(≥2 | ≥1) — the paper's "≈45%".
    pub r2_second: f64,
    /// Radius-2 inflation.
    pub r2_inflation: f64,
}

/// Measure both rules for the experiment topics.
pub fn run(scale: Scale) -> Vec<TopicRadius> {
    let graph = WebGraph::generate(match scale {
        Scale::Tiny => WebConfig::tiny(55),
        _ => WebConfig {
            seed: 55,
            ..WebConfig::default()
        },
    });
    let mut out = Vec::new();
    for name in [
        "recreation/cycling",
        "business/investing/mutual-funds",
        "health/hiv",
        "home/gardening",
    ] {
        let Some(topic) = graph.taxonomy().find(name) else {
            continue;
        };
        let r1 = radius1(&graph, topic);
        let r2 = radius2(&graph, topic);
        out.push(TopicRadius {
            topic: name.to_owned(),
            r1_on: r1.p_same_given_relevant,
            r1_off: r1.p_same_given_irrelevant,
            r1_lift: r1.lift(),
            r2_any: r2.p_any,
            r2_second: r2.p_second_given_first,
            r2_inflation: r2.inflation(),
        });
    }
    out
}

/// Print the measurement table.
pub fn print(rows: &[TopicRadius]) {
    println!("--- Radius rules (§2) on the generated web ---");
    println!(
        "{:<34} {:>8} {:>8} {:>7} {:>8} {:>10} {:>10}",
        "topic", "r1 on", "r1 off", "lift", "P(any)", "P(2nd|1st)", "inflation"
    );
    for r in rows {
        println!(
            "{:<34} {:>8.3} {:>8.4} {:>7.1} {:>8.3} {:>10.3} {:>10.1}",
            r.topic, r.r1_on, r.r1_off, r.r1_lift, r.r2_any, r.r2_second, r.r2_inflation
        );
    }
    println!("paper: P(2nd|1st) ≈ 0.45 for Yahoo! first-level topics");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_rules_hold_for_all_experiment_topics() {
        let rows = run(Scale::Tiny);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.r1_lift > 5.0, "{}: radius-1 lift {}", r.topic, r.r1_lift);
            assert!(
                r.r2_second > 0.25 && r.r2_second < 0.9,
                "{}: P(2nd|1st) = {}",
                r.topic,
                r.r2_second
            );
            assert!(
                r.r2_inflation > 2.0,
                "{}: inflation {}",
                r.topic,
                r.r2_inflation
            );
        }
    }
}
