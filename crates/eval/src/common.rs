//! Shared experiment setup: generate a web, mark a good topic, train the
//! classifier — the "administration" every figure starts from.

use focus_classifier::compiled::CompiledModel;
use focus_classifier::model::TrainedModel;
use focus_classifier::train::{train, TrainConfig};
use focus_types::{ClassId, Document, Taxonomy};
use focus_webgraph::{SimFetcher, WebConfig, WebGraph};
use std::sync::Arc;

/// Experiment scale. Tiny keeps CI fast; Full is what EXPERIMENTS.md
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds).
    Tiny,
    /// Example scale (tens of seconds).
    Small,
    /// Paper-comparable scale (minutes).
    Full,
}

impl Scale {
    /// Parse from CLI arg.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// From `std::env::args`, defaulting to Small.
    pub fn from_args() -> Scale {
        std::env::args()
            .skip(1)
            .find_map(|a| Scale::parse(&a))
            .unwrap_or(Scale::Small)
    }

    /// Web-generator config for this scale. The fetch budget (below) is
    /// kept well under the good-topic population — the paper's Web had
    /// far more cycling pages than its 6000-fetch crawls could exhaust,
    /// and sustained harvest is only meaningful under that condition.
    pub fn web_config(self, seed: u64) -> WebConfig {
        match self {
            Scale::Tiny => WebConfig {
                seed,
                pages_per_topic: 120,
                hubs_per_topic: 4,
                servers_per_topic: 6,
                universal_sites: 8,
                doc_len: 120,
                ..WebConfig::default()
            },
            Scale::Small => WebConfig {
                seed,
                pages_per_topic: 250,
                hubs_per_topic: 6,
                servers_per_topic: 8,
                universal_sites: 12,
                doc_len: 160,
                ..WebConfig::default()
            },
            Scale::Full => WebConfig {
                seed,
                pages_per_topic: 1200,
                hubs_per_topic: 12,
                servers_per_topic: 12,
                doc_len: 200,
                ..WebConfig::default()
            },
        }
    }

    /// Crawl fetch budget (≈ half the good-topic cluster size).
    pub fn fetch_budget(self) -> u64 {
        match self {
            Scale::Tiny => 250,
            Scale::Small => 600,
            Scale::Full => 3000,
        }
    }

    /// Example documents per topic for training.
    pub fn examples_per_topic(self) -> usize {
        match self {
            Scale::Tiny => 6,
            Scale::Small => 12,
            Scale::Full => 20,
        }
    }
}

/// A generated world plus a trained classifier for one good topic.
pub struct World {
    /// The synthetic web.
    pub graph: Arc<WebGraph>,
    /// Taxonomy with the good topic marked.
    pub taxonomy: Taxonomy,
    /// The good topic.
    pub topic: ClassId,
    /// Trained hierarchical classifier (reference path).
    pub model: TrainedModel,
    /// The same classifier compiled for the zero-alloc hot path; what
    /// the crawl and throughput-sensitive experiments evaluate with.
    pub compiled: CompiledModel,
    /// Scale used.
    pub scale: Scale,
}

impl World {
    /// Build the standard cycling world (the paper's running example).
    pub fn cycling(scale: Scale, seed: u64) -> World {
        World::for_topic("recreation/cycling", scale, seed)
    }

    /// Build a world with `topic_name` marked good.
    pub fn for_topic(topic_name: &str, scale: Scale, seed: u64) -> World {
        let graph = Arc::new(WebGraph::generate(scale.web_config(seed)));
        let mut taxonomy = graph.taxonomy().clone();
        let topic = taxonomy
            .find(topic_name)
            .unwrap_or_else(|| panic!("no topic {topic_name}"));
        taxonomy.mark_good(topic).expect("markable");
        let model = train_model(&graph, &taxonomy, scale, seed);
        let compiled = CompiledModel::compile(&model);
        World {
            graph,
            taxonomy,
            topic,
            model,
            compiled,
            scale,
        }
    }

    /// A fetcher over this world.
    pub fn fetcher(&self) -> Arc<SimFetcher> {
        Arc::new(SimFetcher::new(Arc::clone(&self.graph), None))
    }

    /// Keyword-search start set for the good topic.
    pub fn start_set(&self, k: usize) -> Vec<focus_types::Oid> {
        focus_webgraph::search::topic_start_set(&self.graph, self.topic, k)
    }
}

/// Train a model from generated example documents for every topic.
pub fn train_model(graph: &WebGraph, taxonomy: &Taxonomy, scale: Scale, seed: u64) -> TrainedModel {
    let mut examples: Vec<(ClassId, Document)> = Vec::new();
    for c in taxonomy.all() {
        if c == ClassId::ROOT {
            continue;
        }
        for d in graph.example_docs(c, scale.examples_per_topic(), seed ^ 0x5eed) {
            examples.push((c, d));
        }
    }
    train(taxonomy, &examples, &TrainConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_classifies() {
        let w = World::cycling(Scale::Tiny, 5);
        assert!(w.model.num_nodes() > 0);
        assert!(!w.start_set(10).is_empty());
        // A cycling page from the web classifies as relevant.
        let page = w
            .graph
            .pages_of_topic(w.topic)
            .iter()
            .find_map(|&o| w.graph.page(o))
            .expect("cycling pages exist");
        let r = w.model.evaluate(&page.terms).relevance;
        assert!(r > 0.3, "cycling page scored only {r}");
        // The compiled engine agrees with the reference path.
        let mut scratch = w.compiled.scratch();
        let rc = w
            .compiled
            .evaluate_into(&page.terms, &mut scratch)
            .relevance;
        assert!((r - rc).abs() < 1e-9, "compiled {rc} vs reference {r}");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("FULL"), Some(Scale::Full));
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("x"), None);
    }
}
