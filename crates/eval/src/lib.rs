//! # focus-eval
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation section (§3), each exposing a `run(scale)` function that
//! returns structured results and can print them in the paper's format.
//! The same functions back the `focus-bench` criterion benches, the
//! repository examples, and the integration tests — tiny scales for CI,
//! full scales for the recorded EXPERIMENTS.md numbers.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod citation_sociology;
pub mod common;
pub mod fig5_harvest;
pub mod fig6_coverage;
pub mod fig7_distance;
pub mod fig8a_classifier;
pub mod fig8b_memory;
pub mod fig8c_output;
pub mod fig8d_distiller;
pub mod radius_rules;
pub mod report;
pub mod scaling;

pub use common::{Scale, World};
pub use report::Series;
