//! Figure 6 — coverage/robustness (§3.5): a *reference* crawl from start
//! set S1 and a disjoint *test* crawl from S2; how fast does the test
//! crawl re-find the reference crawl's relevant URLs (a) and servers (b)?
//! The paper reaches ≈83% URL and ≈90% server coverage within an hour.

use crate::common::{Scale, World};
use crate::report::Series;
use focus_crawler::session::{CrawlConfig, CrawlSession, CrawlStats};
use focus_crawler::{host_server_id, CrawlPolicy};
use focus_types::hash::FxHashSet;
use focus_types::{Oid, ServerId};
use focus_webgraph::search::disjoint_start_sets;
use serde::Serialize;

/// Figure 6 output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// Fraction of the reference crawl's relevant URLs visited, by #URLs
    /// crawled (Fig 6a).
    pub url_coverage: Series,
    /// Fraction of the reference crawl's servers visited (Fig 6b).
    pub server_coverage: Series,
    /// Final URL coverage.
    pub final_url_coverage: f64,
    /// Final server coverage.
    pub final_server_coverage: f64,
}

fn crawl(world: &World, seeds: &[Oid], budget: u64) -> CrawlStats {
    let session = std::sync::Arc::new(
        CrawlSession::new(
            world.fetcher(),
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 4,
                max_fetches: budget,
                distill_every: Some(400),
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(seeds).expect("seed");
    session.run().expect("crawl")
}

/// Run the coverage experiment. Relevance cut: the paper's
/// `log R(u) > −1`, i.e. `R > e^{-1}`.
pub fn run(scale: Scale) -> Fig6 {
    let world = World::cycling(scale, 77);
    let (s1, s2) = disjoint_start_sets(&world.graph, world.topic, 15);
    let budget = scale.fetch_budget();
    let cut = (-1.0f64).exp();

    let reference = crawl(&world, &s1, budget);
    let ref_relevant: FxHashSet<Oid> = reference
        .completion_order
        .iter()
        .filter(|&&(_, r)| r > cut)
        .map(|&(o, _)| o)
        .collect();
    let ref_servers: FxHashSet<ServerId> = ref_relevant
        .iter()
        .filter_map(|&o| world.graph.page(o))
        .map(|p| host_server_id(&p.url))
        .collect();

    let test = crawl(&world, &s2, budget);
    let mut seen_urls: FxHashSet<Oid> = FxHashSet::default();
    let mut seen_servers: FxHashSet<ServerId> = FxHashSet::default();
    let mut url_pts = Vec::new();
    let mut srv_pts = Vec::new();
    let mut url_hits = 0usize;
    let mut srv_hits = 0usize;
    for (i, &(oid, _)) in test.completion_order.iter().enumerate() {
        if ref_relevant.contains(&oid) && seen_urls.insert(oid) {
            url_hits += 1;
        }
        if let Some(p) = world.graph.page(oid) {
            let s = host_server_id(&p.url);
            if ref_servers.contains(&s) && seen_servers.insert(s) {
                srv_hits += 1;
            }
        }
        let x = (i + 1) as f64;
        url_pts.push((x, url_hits as f64 / ref_relevant.len().max(1) as f64));
        srv_pts.push((x, srv_hits as f64 / ref_servers.len().max(1) as f64));
    }
    let url_coverage = Series::new("URL coverage", url_pts);
    let server_coverage = Series::new("Server coverage", srv_pts);
    Fig6 {
        final_url_coverage: url_coverage.last_y().unwrap_or(0.0),
        final_server_coverage: server_coverage.last_y().unwrap_or(0.0),
        url_coverage,
        server_coverage,
    }
}

/// Print in the paper's terms.
pub fn print(f: &Fig6) {
    println!("--- Figure 6: coverage from a disjoint start set ---");
    print!("{}", f.url_coverage.ascii_chart(64, 10));
    print!("{}", f.server_coverage.ascii_chart(64, 10));
    println!(
        "final coverage: URLs {:.2}  servers {:.2}   (paper: ~0.83 URLs, ~0.90 servers)",
        f.final_url_coverage, f.final_server_coverage
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_reaches_majority() {
        let f = run(Scale::Tiny);
        assert!(
            f.final_url_coverage > 0.4,
            "URL coverage only {}",
            f.final_url_coverage
        );
        assert!(
            f.final_server_coverage > 0.5,
            "server coverage only {}",
            f.final_server_coverage
        );
        assert!(
            f.final_server_coverage >= f.final_url_coverage * 0.8,
            "server coverage should not lag URL coverage badly"
        );
    }
}
