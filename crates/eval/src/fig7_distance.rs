//! Figure 7 — evidence of large-radius exploration (§3.6): after a
//! focused crawl, how far (in links) are the top-100 authorities from the
//! start set? If they were all 1–2 links out, keyword search + bounded
//! distillation would suffice; the paper finds "excellent resources as
//! far as 12–15 links from the start set". Also prints the top hub list
//! (the paper's cycling hot-list).

use crate::common::{Scale, World};
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::CrawlPolicy;
use focus_types::Oid;
use serde::Serialize;

/// Figure 7 output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// Histogram: distance (links) → #top-authorities at that distance.
    pub histogram: Vec<(u32, usize)>,
    /// Top hub URLs with scores.
    pub top_hubs: Vec<(String, f64)>,
    /// Max distance at which a top authority was found.
    pub max_distance: u32,
    /// Fraction of top authorities more than 2 links out.
    pub frac_beyond_2: f64,
}

/// Run the experiment: focused crawl → final distillation → BFS distances
/// on the true graph.
pub fn run(scale: Scale) -> Fig7 {
    let world = World::cycling(scale, 101);
    let seeds = world.start_set(20);
    let session = std::sync::Arc::new(
        CrawlSession::new(
            world.fetcher(),
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 4,
                max_fetches: scale.fetch_budget(),
                distill_every: Some(400),
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&seeds).expect("seed");
    session.run().expect("crawl");
    let distill = session.distill_now().expect("distill");

    let dist = world.graph.shortest_distances(&seeds);
    let top_auths: Vec<Oid> = distill.top_auths(100).iter().map(|&(o, _)| o).collect();
    let mut hist: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    let mut max_d = 0;
    let mut beyond = 0usize;
    for &a in &top_auths {
        if let Some(&d) = dist.get(&a) {
            *hist.entry(d).or_insert(0) += 1;
            max_d = max_d.max(d);
            if d > 2 {
                beyond += 1;
            }
        }
    }
    let top_hubs = distill
        .top_hubs(16)
        .iter()
        .map(|&(o, s)| {
            let url = world
                .graph
                .page(o)
                .map(|p| p.url.clone())
                .unwrap_or_else(|| format!("{o}"));
            (url, s)
        })
        .collect();
    Fig7 {
        histogram: hist.into_iter().collect(),
        top_hubs,
        max_distance: max_d,
        frac_beyond_2: beyond as f64 / top_auths.len().max(1) as f64,
    }
}

/// Print in the paper's format (histogram + hub list).
pub fn print(f: &Fig7) {
    println!("--- Figure 7: distance to top authorities ---");
    println!("shortest distance (#links)  frequency");
    for &(d, n) in &f.histogram {
        println!("  {d:>2}  {}", "#".repeat(n.min(60)));
    }
    println!(
        "max distance: {}; fraction beyond 2 links: {:.2}",
        f.max_distance, f.frac_beyond_2
    );
    println!("top hubs (cycling):");
    for (url, s) in &f.top_hubs {
        println!("  {s:.5}  {url}");
    }
    println!("paper: \"excellent resources were found as far as 12-15 links from the start set\"");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authorities_found_beyond_the_start_neighborhood() {
        let f = run(Scale::Tiny);
        assert!(!f.histogram.is_empty(), "no authorities measured");
        assert!(
            f.max_distance >= 2,
            "all authorities within {} links — no exploration evidence",
            f.max_distance
        );
        assert!(!f.top_hubs.is_empty());
        // Hubs should mostly be cycling link pages (URL carries the topic).
        let cycling_hubs = f
            .top_hubs
            .iter()
            .filter(|(u, _)| u.contains("cycling"))
            .count();
        assert!(
            cycling_hubs * 2 >= f.top_hubs.len(),
            "only {cycling_hubs}/{} hubs are cycling-hosted",
            f.top_hubs.len()
        );
    }
}
