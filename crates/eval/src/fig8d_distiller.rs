//! Figure 8(d) — distillation running time: naive sequential edge-walk
//! (scan + per-edge index lookups + per-edge updates) vs the join-based
//! Figure 4 plan. "The join approach is a factor of three faster."

use crate::common::{Scale, World};
use focus_distiller::db::{
    create_crawl_stub, create_tables, init_auth_uniform, join_iteration, load_links,
    naive_iteration,
};
use focus_distiller::memory::edges_from_links;
use focus_distiller::{DistillConfig, LinkEdge};
use focus_types::hash::FxHashMap;
use focus_types::Oid;
use minirel::Database;
use serde::Serialize;
use std::time::Instant;

/// Figure 8(d) output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8d {
    /// Edges in the crawl graph.
    pub num_edges: usize,
    /// Naive iteration total, µs.
    pub naive_us: f64,
    /// Breakdown of the naive iteration (scan, lookup, update) in µs.
    pub naive_breakdown: (f64, f64, f64),
    /// Join iteration total, µs.
    pub join_us: f64,
    /// naive / join speed ratio.
    pub ratio: f64,
    /// Physical reads: naive vs join.
    pub physical_reads: (u64, u64),
}

/// Build a topical crawl graph from the simulator's ground truth plus the
/// trained classifier's relevance scores (what a real crawl would hold in
/// `CRAWL`/`LINK` after a session).
pub fn build_graph(scale: Scale) -> (Vec<LinkEdge>, FxHashMap<Oid, f64>) {
    let world = World::cycling(scale, 31);
    let n_pages = match scale {
        Scale::Tiny => 600,
        Scale::Small => 2000,
        Scale::Full => 6000,
    };
    // Prefer topical pages (like a focused crawl would), then pad with
    // whatever follows.
    let mut pages: Vec<&focus_webgraph::SimPage> = world
        .graph
        .pages()
        .iter()
        .filter(|p| {
            world.taxonomy.is_ancestor(focus_types::ClassId(1), p.topic) || p.topic == world.topic
        })
        .collect();
    for p in world.graph.pages() {
        if pages.len() >= n_pages {
            break;
        }
        if !pages.iter().any(|q| q.oid == p.oid) {
            pages.push(p);
        }
    }
    pages.truncate(n_pages);
    let in_set: std::collections::HashSet<Oid> = pages.iter().map(|p| p.oid).collect();
    let mut relevance: FxHashMap<Oid, f64> = FxHashMap::default();
    let mut scratch = world.compiled.scratch();
    for p in &pages {
        relevance.insert(
            p.oid,
            world
                .compiled
                .evaluate_into(&p.terms, &mut scratch)
                .relevance,
        );
    }
    let mut raw = Vec::new();
    for p in &pages {
        for &dst in &p.outlinks {
            if in_set.contains(&dst) {
                let sid_dst = world.graph.page(dst).map(|q| q.server.raw()).unwrap_or(0);
                raw.push((p.oid, p.server.raw(), dst, sid_dst));
            }
        }
    }
    (edges_from_links(&raw, &relevance), relevance)
}

/// Run the comparison: one full iteration per plan on identical state.
pub fn run(scale: Scale) -> Fig8d {
    let (edges, relevance) = build_graph(scale);
    let frames = 192;
    let cfg = DistillConfig::default();

    let mk_db = |edges: &[LinkEdge], rel: &FxHashMap<Oid, f64>| -> Database {
        let mut db = Database::in_memory_with_frames(frames);
        create_tables(&mut db).expect("tables");
        create_crawl_stub(&mut db, rel).expect("crawl");
        load_links(&mut db, edges).expect("links");
        init_auth_uniform(&mut db).expect("auth init");
        db
    };

    let mut db = mk_db(&edges, &relevance);
    db.reset_io_stats();
    let t = Instant::now();
    let timing = naive_iteration(&mut db, &cfg).expect("naive");
    let naive_us = t.elapsed().as_micros() as f64;
    let naive_reads = db.io_stats().physical_reads;

    let mut db = mk_db(&edges, &relevance);
    db.reset_io_stats();
    let t = Instant::now();
    join_iteration(&mut db, &cfg).expect("join");
    let join_us = t.elapsed().as_micros() as f64;
    let join_reads = db.io_stats().physical_reads;

    Fig8d {
        num_edges: edges.len(),
        naive_us,
        naive_breakdown: (
            timing.scan.as_micros() as f64,
            timing.lookup.as_micros() as f64,
            timing.update.as_micros() as f64,
        ),
        join_us,
        ratio: naive_us / join_us.max(1.0),
        physical_reads: (naive_reads, join_reads),
    }
}

/// Print the comparison.
pub fn print(f: &Fig8d) {
    println!(
        "--- Figure 8(d): distillation running time ({} edges) ---",
        f.num_edges
    );
    let (scan, lookup, update) = f.naive_breakdown;
    println!(
        "naive (index): {:.0} us  [scan {:.0} | lookup {:.0} | update {:.0}]  phys reads {}",
        f.naive_us, scan, lookup, update, f.physical_reads.0
    );
    println!(
        "join:          {:.0} us  phys reads {}",
        f.join_us, f.physical_reads.1
    );
    println!(
        "ratio naive/join = {:.1}x   (paper: \"a factor of three faster\")",
        f.ratio
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_faster_and_lookup_dominates_naive() {
        let f = run(Scale::Tiny);
        assert!(f.num_edges > 200, "graph too small: {}", f.num_edges);
        assert!(
            f.ratio > 1.5,
            "join should clearly beat naive; ratio {} ({} vs {} us)",
            f.ratio,
            f.naive_us,
            f.join_us
        );
        let (scan, lookup, update) = f.naive_breakdown;
        assert!(
            lookup + update > scan,
            "per-edge work should dominate the sequential scan: {:?}",
            f.naive_breakdown
        );
    }
}
