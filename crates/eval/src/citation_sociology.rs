//! §1's opening example — *citation sociology*: "Find a topic (other than
//! bicycling) within one link of bicycling pages that is much more
//! frequent than on the web at large. The answer found by the system
//! described in this paper is **first aid**."
//!
//! After a focused cycling crawl we compare the topic distribution of
//! pages within one link of relevant pages against the global topic
//! distribution; the lift ranking should put `health/first-aid` on top
//! among unrelated topics.

use crate::common::{Scale, World};
use focus_crawler::session::{CrawlConfig, CrawlSession};
use focus_crawler::CrawlPolicy;
use focus_types::hash::FxHashMap;
use focus_types::ClassId;
use serde::Serialize;

/// One topic's lift.
#[derive(Debug, Clone, Serialize)]
pub struct TopicLift {
    /// Topic name.
    pub topic: String,
    /// Frequency among 1-link neighbours of relevant pages.
    pub near_freq: f64,
    /// Frequency on the web at large.
    pub global_freq: f64,
    /// Ratio.
    pub lift: f64,
}

/// Run the query. Returns lifts sorted descending, excluding the good
/// topic itself and its taxonomic relatives (the paper's "other than
/// bicycling").
pub fn run(scale: Scale) -> Vec<TopicLift> {
    let world = World::cycling(scale, 202);
    let session = std::sync::Arc::new(
        CrawlSession::new(
            world.fetcher(),
            world.model.clone(),
            CrawlConfig {
                policy: CrawlPolicy::SoftFocus,
                threads: 4,
                max_fetches: scale.fetch_budget() / 2,
                distill_every: None,
                ..CrawlConfig::default()
            },
        )
        .expect("session"),
    );
    session.seed(&world.start_set(15)).expect("seed");
    session.run().expect("crawl");

    // Pages within one link of *relevant* crawled pages.
    let rel = session.relevance_map();
    let cut = (-1.0f64).exp();
    let mut near_counts: FxHashMap<ClassId, u64> = FxHashMap::default();
    let mut near_total = 0u64;
    for (src, _, dst, _) in session.links() {
        if rel.get(&src).copied().unwrap_or(0.0) <= cut {
            continue;
        }
        if let Some(t) = world.graph.topic_of(dst) {
            if t != ClassId::ROOT {
                *near_counts.entry(t).or_insert(0) += 1;
                near_total += 1;
            }
        }
    }
    // Global topic distribution (the web at large).
    let mut global_counts: FxHashMap<ClassId, u64> = FxHashMap::default();
    let mut global_total = 0u64;
    for p in world.graph.pages() {
        if p.topic != ClassId::ROOT {
            *global_counts.entry(p.topic).or_insert(0) += 1;
            global_total += 1;
        }
    }

    // Exclude the good topic and its ancestors/descendants/siblings.
    let excluded: Vec<ClassId> = {
        let mut v = world.taxonomy.subtree(world.topic);
        v.extend(world.taxonomy.ancestors(world.topic));
        if let Some(parent) = world.taxonomy.parent(world.topic) {
            v.extend(world.taxonomy.children(parent).iter().copied());
        }
        v
    };

    let mut lifts: Vec<TopicLift> = near_counts
        .iter()
        .filter(|(c, _)| !excluded.contains(c))
        .map(|(&c, &n)| {
            let near = n as f64 / near_total.max(1) as f64;
            let global =
                global_counts.get(&c).copied().unwrap_or(0) as f64 / global_total.max(1) as f64;
            TopicLift {
                topic: world.taxonomy.name(c).to_owned(),
                near_freq: near,
                global_freq: global,
                lift: if global > 0.0 { near / global } else { 0.0 },
            }
        })
        .collect();
    lifts.sort_by(|a, b| b.lift.total_cmp(&a.lift));
    lifts
}

/// Print the lift table.
pub fn print(lifts: &[TopicLift]) {
    println!("--- Citation sociology: topics within one link of cycling ---");
    println!(
        "{:<34} {:>10} {:>10} {:>7}",
        "topic", "near freq", "global", "lift"
    );
    for l in lifts.iter().take(8) {
        println!(
            "{:<34} {:>10.4} {:>10.4} {:>7.2}",
            l.topic, l.near_freq, l.global_freq, l.lift
        );
    }
    println!("paper: the answer is first aid");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_aid_tops_the_lift_ranking() {
        let lifts = run(Scale::Tiny);
        assert!(!lifts.is_empty());
        assert_eq!(
            lifts[0].topic,
            "health/first-aid",
            "expected first aid on top, got {:?}",
            lifts.iter().take(3).map(|l| &l.topic).collect::<Vec<_>>()
        );
        assert!(lifts[0].lift > 1.5, "lift {}", lifts[0].lift);
    }
}
